//! Structured events: stage-boundary log lines in text or JSON form.
//!
//! Events complement metrics: a counter says *how many*, an event says
//! *when and with what context*. The emitter writes to stderr (never
//! stdout — command output stays machine-parseable) and is **off by
//! default**; the CLI turns it on when `--log-format` is passed, so
//! existing pipelines see no new output.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::snapshot::{json_number, json_string};

/// How (and whether) events are emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// No event output (the default).
    Off,
    /// One human-readable line per event.
    Text,
    /// One JSON object per line (JSON-lines).
    Json,
}

impl LogFormat {
    /// Parses a `--log-format` value.
    ///
    /// # Errors
    ///
    /// Returns the offending value when it is neither `text` nor `json`
    /// (nor `off`).
    pub fn parse(s: &str) -> Result<LogFormat, String> {
        match s {
            "off" => Ok(LogFormat::Off),
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!(
                "unknown log format `{other}` (expected text or json)"
            )),
        }
    }
}

static FORMAT: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide event format ([`LogFormat::Off`] silences).
pub fn set_log_format(format: LogFormat) {
    let v = match format {
        LogFormat::Off => 0,
        LogFormat::Text => 1,
        LogFormat::Json => 2,
    };
    FORMAT.store(v, Ordering::Relaxed);
}

/// The current process-wide event format.
pub fn log_format() -> LogFormat {
    match FORMAT.load(Ordering::Relaxed) {
        1 => LogFormat::Text,
        2 => LogFormat::Json,
        _ => LogFormat::Off,
    }
}

/// One event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum EventField {
    /// An unsigned count.
    U64(u64),
    /// A measurement.
    F64(f64),
    /// Free text.
    Str(String),
}

impl From<u64> for EventField {
    fn from(v: u64) -> Self {
        EventField::U64(v)
    }
}

impl From<usize> for EventField {
    fn from(v: usize) -> Self {
        EventField::U64(v as u64)
    }
}

impl From<f64> for EventField {
    fn from(v: f64) -> Self {
        EventField::F64(v)
    }
}

impl From<&str> for EventField {
    fn from(v: &str) -> Self {
        EventField::Str(v.to_string())
    }
}

impl From<String> for EventField {
    fn from(v: String) -> Self {
        EventField::Str(v)
    }
}

impl fmt::Display for EventField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventField::U64(v) => write!(f, "{v}"),
            EventField::F64(v) => write!(f, "{v}"),
            EventField::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Emits one event to stderr in the process-wide format (a no-op while
/// the format is [`LogFormat::Off`]).
///
/// `stage` is the dotted pipeline stage (`profile`, `simulate`, ...),
/// `message` a short verb phrase, `fields` extra key/value context.
pub fn event(stage: &str, message: &str, fields: &[(&str, EventField)]) {
    let format = log_format();
    if format == LogFormat::Off {
        return;
    }
    eprintln!("{}", format_event(format, stage, message, fields));
}

/// Renders an event line without emitting it (the testable core of
/// [`event`]; `format` must not be [`LogFormat::Off`]).
pub fn format_event(
    format: LogFormat,
    stage: &str,
    message: &str,
    fields: &[(&str, EventField)],
) -> String {
    match format {
        LogFormat::Off | LogFormat::Text => {
            let mut line = format!("tempo[{stage}] {message}");
            for (k, v) in fields {
                use fmt::Write as _;
                let _ = write!(line, " {k}={v}");
            }
            line
        }
        LogFormat::Json => {
            let mut line = String::from("{");
            use fmt::Write as _;
            let _ = write!(line, "\"ts_ms\": {}", now_ms());
            let _ = write!(line, ", \"stage\": {}", json_string(stage));
            let _ = write!(line, ", \"event\": {}", json_string(message));
            for (k, v) in fields {
                let rendered = match v {
                    EventField::U64(n) => n.to_string(),
                    EventField::F64(n) => json_number(*n),
                    EventField::Str(s) => json_string(s),
                };
                let _ = write!(line, ", {}: {rendered}", json_string(k));
            }
            line.push('}');
            line
        }
    }
}

/// Milliseconds since the Unix epoch (0 when the clock is unreadable).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| {
            #[allow(clippy::cast_possible_truncation)]
            // Milliseconds since 1970 fit u64 for ~585 million years.
            {
                d.as_millis() as u64
            }
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::json;

    #[test]
    fn text_event_format() {
        let line = format_event(
            LogFormat::Text,
            "profile",
            "pass complete",
            &[("records", 100u64.into()), ("pass", "qpass".into())],
        );
        assert_eq!(line, "tempo[profile] pass complete records=100 pass=qpass");
    }

    #[test]
    fn json_event_parses_as_json() {
        let line = format_event(
            LogFormat::Json,
            "simulate",
            "done",
            &[
                ("misses", 7u64.into()),
                ("rate", 0.25f64.into()),
                ("layout", "gbsc \"x\"".into()),
            ],
        );
        let parsed = json::parse(&line).unwrap();
        let obj = parsed.as_object().unwrap();
        let get = |k: &str| obj.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone());
        assert_eq!(get("stage"), Some(json::Value::String("simulate".into())));
        assert_eq!(get("misses"), Some(json::Value::Number(7.0)));
        assert_eq!(
            get("layout"),
            Some(json::Value::String("gbsc \"x\"".into()))
        );
    }

    #[test]
    fn format_flag_roundtrip() {
        assert_eq!(LogFormat::parse("text"), Ok(LogFormat::Text));
        assert_eq!(LogFormat::parse("json"), Ok(LogFormat::Json));
        assert!(LogFormat::parse("yaml").is_err());
        set_log_format(LogFormat::Json);
        assert_eq!(log_format(), LogFormat::Json);
        set_log_format(LogFormat::Off);
        assert_eq!(log_format(), LogFormat::Off);
    }
}
