//! The metric registry: a named, process-wide home for every counter,
//! gauge, and histogram.
//!
//! Lookup takes a short mutex; the returned `Arc` handles are lock-free
//! to update, so hot loops fetch their counter once and update it
//! directly. Names are dotted (`stage.metric`) and snapshots iterate in
//! sorted name order, which keeps every rendering deterministic.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{MetricValue, Snapshot};
use crate::span::Span;

#[derive(Debug, Clone)]
enum Entry {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A set of named metrics. Most callers want the process-wide [`global`]
/// registry; tests build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Entry>> {
        match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// If `name` is already registered as a different kind, an
    /// unregistered counter is returned instead (updates to it are
    /// dropped from snapshots): observability must never panic the
    /// pipeline over a vocabulary clash.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut entries = self.lock();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::Counter(Arc::new(Counter::new())))
        {
            Entry::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::new()),
        }
    }

    /// The gauge named `name`, registering it on first use (kind clashes
    /// behave as in [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut entries = self.lock();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::Gauge(Arc::new(Gauge::new())))
        {
            Entry::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// The histogram named `name`, registering it on first use (kind
    /// clashes behave as in [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut entries = self.lock();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::Histogram(Arc::new(Histogram::new())))
        {
            Entry::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Starts a scoped timer: dropping the returned [`Span`] records the
    /// elapsed milliseconds into histogram `name`.
    pub fn span(&self, name: &str) -> Span {
        Span::new(self.histogram(name))
    }

    /// A point-in-time snapshot of every registered metric, in sorted
    /// name order.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.lock();
        Snapshot {
            entries: entries
                .iter()
                .map(|(name, e)| {
                    let value = match e {
                        Entry::Counter(c) => MetricValue::Counter(c.get()),
                        Entry::Gauge(g) => MetricValue::Gauge(g.get()),
                        Entry::Histogram(h) => MetricValue::Histogram(h.summary()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }

    /// Drops every registered metric (test isolation; production code
    /// never resets).
    pub fn reset(&self) {
        self.lock().clear();
    }
}

/// The process-wide registry every pipeline stage records into — unless
/// the recording thread is inside a [`scoped`] registry, which the free
/// functions ([`crate::counter`] etc.) prefer.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

thread_local! {
    /// Innermost-last stack of scoped registries for this thread.
    static SCOPES: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// Routes this thread's metric recording into `registry` until the
/// returned guard drops.
///
/// Scopes nest (innermost wins) and are strictly per-thread: the guard is
/// `!Send`, other threads keep recording into their own scope or the
/// [`global`] registry, and a long-running server can give each tenant
/// worker its own registry without the tenants' `engine.*` counters
/// bleeding into one another.
pub fn scoped(registry: Arc<Registry>) -> ScopeGuard {
    SCOPES.with(|s| s.borrow_mut().push(registry));
    ScopeGuard {
        _not_send: PhantomData,
    }
}

/// Calls `f` with the registry currently in effect on this thread: the
/// innermost [`scoped`] registry, or [`global`] outside any scope.
pub fn with_current<R>(f: impl FnOnce(&Registry) -> R) -> R {
    // Clone out of the borrow so `f` may itself enter/exit scopes.
    let scope = SCOPES.with(|s| s.borrow().last().cloned());
    match scope {
        Some(r) => f(&r),
        None => f(global()),
    }
}

/// Keeps a [`scoped`] registry in effect; dropping it restores the
/// previous scope (or the global registry).
#[must_use = "dropping the guard immediately ends the scope"]
#[derive(Debug)]
pub struct ScopeGuard {
    /// Scopes are thread-local; sending the guard elsewhere would pop the
    /// wrong stack.
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_counter() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").get(), 5);
    }

    #[test]
    fn kind_clash_returns_orphan() {
        let r = Registry::new();
        r.counter("x").add(1);
        let g = r.gauge("x");
        g.set(9.0);
        // The registered entry is still the counter; the orphan gauge's
        // write is invisible to snapshots.
        let snap = r.snapshot();
        assert_eq!(snap.get("x"), Some(&MetricValue::Counter(1)));
    }

    #[test]
    fn snapshot_is_sorted() {
        let r = Registry::new();
        r.counter("z.last").incr();
        r.counter("a.first").incr();
        r.gauge("m.mid").set(1.0);
        let names: Vec<_> = r
            .snapshot()
            .entries
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn span_records_into_histogram() {
        let r = Registry::new();
        {
            let _s = r.span("stage.test");
        }
        let summary = r.histogram("stage.test").summary();
        assert_eq!(summary.count, 1);
        assert!(summary.sum >= 0.0);
    }

    #[test]
    fn reset_clears() {
        let r = Registry::new();
        r.counter("a").incr();
        r.reset();
        assert!(r.snapshot().entries.is_empty());
    }

    #[test]
    fn scoped_registry_captures_free_functions() {
        let tenant = Arc::new(Registry::new());
        {
            let _guard = scoped(Arc::clone(&tenant));
            crate::counter("scope.test.hits").add(3);
        }
        // After the guard drops, recording falls back to global.
        crate::counter("scope.test.hits").add(4);
        assert_eq!(tenant.counter("scope.test.hits").get(), 3);
        assert_eq!(global().counter("scope.test.hits").get(), 4);
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        let _o = scoped(Arc::clone(&outer));
        {
            let _i = scoped(Arc::clone(&inner));
            crate::counter("scope.nest").incr();
        }
        crate::counter("scope.nest").incr();
        assert_eq!(inner.counter("scope.nest").get(), 1);
        assert_eq!(outer.counter("scope.nest").get(), 1);
    }

    #[test]
    fn scopes_are_per_thread() {
        let tenant = Arc::new(Registry::new());
        let _guard = scoped(Arc::clone(&tenant));
        std::thread::spawn(|| {
            crate::counter("scope.thread").add(7);
        })
        .join()
        .unwrap();
        // The spawned thread had no scope: its write went global.
        assert_eq!(tenant.counter("scope.thread").get(), 0);
        assert_eq!(global().counter("scope.thread").get(), 7);
    }
}
