//! The three metric primitives: counters, gauges, histograms.
//!
//! Counters and gauges are single atomics (lock-free, safe to hammer from
//! pool workers); histograms take a short mutex per sample so the `f64`
//! sum stays exact. All three are cheap enough to leave enabled
//! unconditionally — instrumented and uninstrumented pipelines must
//! produce identical results, differing only in what they report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log2 buckets a [`Histogram`] keeps (values `>= 2^31` share
/// the last bucket).
pub(crate) const BUCKETS: usize = 32;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the count.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the count.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins measurement (stored as `f64` bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at `0.0`.
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0.0_f64.to_bits()))
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water-mark use).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self
                .0
                .compare_exchange(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKETS],
}

/// A distribution of non-negative samples (stage latencies in
/// milliseconds, mostly): exact count/sum/min/max plus log2 buckets.
#[derive(Debug)]
pub struct Histogram(Mutex<HistState>);

/// The rendered form of a [`Histogram`]: what a [`crate::Snapshot`]
/// carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`0.0` when empty).
    pub min: f64,
    /// Largest sample (`0.0` when empty).
    pub max: f64,
}

impl HistogramSummary {
    /// Mean sample, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram(Mutex::new(HistState {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }))
    }

    /// Records one sample (negative samples clamp to zero).
    pub fn record(&self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        let bucket = bucket_index(v);
        let mut s = lock_unpoisoned(&self.0);
        s.count += 1;
        s.sum += v;
        s.min = s.min.min(v);
        s.max = s.max.max(v);
        s.buckets[bucket] += 1;
    }

    /// The exact summary statistics.
    pub fn summary(&self) -> HistogramSummary {
        let s = lock_unpoisoned(&self.0);
        HistogramSummary {
            count: s.count,
            sum: s.sum,
            min: if s.count == 0 { 0.0 } else { s.min },
            max: if s.count == 0 { 0.0 } else { s.max },
        }
    }

    /// The log2 bucket counts (bucket `i` holds samples in
    /// `[2^(i-1), 2^i)`, bucket 0 holds samples below `1.0`).
    pub fn buckets(&self) -> [u64; BUCKETS] {
        lock_unpoisoned(&self.0).buckets
    }
}

/// Maps a non-negative sample to its log2 bucket.
// The f64 -> u64 cast is saturating by construction: `v` is clamped to
// `u64::MAX as f64` first, and any value past the cap lands in the last
// bucket anyway.
#[allow(clippy::cast_possible_truncation)]
fn bucket_index(v: f64) -> usize {
    if v < 1.0 {
        0
    } else {
        // floor(log2(v)) + 1, capped at the last bucket: [1,2) -> 1,
        // [2,4) -> 2, [4,8) -> 3, ...
        let bits = 64 - (v.min(u64::MAX as f64) as u64).leading_zeros() as usize;
        bits.min(BUCKETS - 1)
    }
}

/// Locks a mutex, recovering the data from a poisoned lock: metric state
/// stays valid even when a panicking thread held the lock mid-update
/// (worst case one sample is half-applied, which observability accepts).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_last_write_and_high_water() {
        let g = Gauge::new();
        g.set(3.5);
        assert_eq!(g.get(), 3.5);
        g.set_max(2.0);
        assert_eq!(g.get(), 3.5);
        g.set_max(7.25);
        assert_eq!(g.get(), 7.25);
    }

    #[test]
    fn histogram_summary_is_exact() {
        let h = Histogram::new();
        for v in [1.0, 2.0, 4.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 7.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty_summary_is_zeroed() {
        let s = Histogram::new().summary();
        assert_eq!(
            s,
            HistogramSummary {
                count: 0,
                sum: 0.0,
                min: 0.0,
                max: 0.0
            }
        );
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn histogram_handles_hostile_samples() {
        let h = Histogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(0.5), 0);
        assert_eq!(bucket_index(1.0), 1);
        assert_eq!(bucket_index(1.5), 1);
        assert_eq!(bucket_index(2.0), 2);
        assert_eq!(bucket_index(3.0), 2);
        assert_eq!(bucket_index(4.0), 3);
        assert_eq!(bucket_index(1e30), BUCKETS - 1);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
