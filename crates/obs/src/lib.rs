//! Dependency-free observability for the tempo pipeline.
//!
//! Every long-running stage of the toolkit — trace ingestion, Q-set
//! profiling, placement, cache simulation — is instrumented against this
//! crate so that a multi-hour paper-scale run (17M–146M records, §5 of
//! Gloy et al.) is not a black box while it executes. The crate provides
//! four primitives and deliberately nothing else:
//!
//! * [`Counter`] — monotonically increasing `u64` (records read, Q-set
//!   evictions, cache misses, ...).
//! * [`Gauge`] — last-write-wins `f64` (peak RSS, live Q-set bytes).
//! * [`Histogram`] — count/sum/min/max plus log2 buckets of recorded
//!   samples (stage latencies).
//! * [`Span`] — a scoped timer guard; dropping it records the elapsed
//!   milliseconds into a histogram of the same name.
//!
//! Metrics live in a process-wide [`Registry`] (see [`global`]) keyed by
//! a dotted vocabulary (`trace.records_read`, `profile.qset_evictions`,
//! `sim.misses`; the full map to paper quantities is DESIGN.md §11). A
//! [`Snapshot`] of the registry renders to deterministic text or JSON and
//! parses back, which is what backs `--metrics-out` and `tempo stats`.
//! Long-running servers scope recording per tenant with [`scoped`]: a
//! thread that holds a scope guard routes every free-function metric into
//! its own [`Registry`] instead of the global one (DESIGN.md §16).
//!
//! Structured events ([`event`]) are separate from metrics: they are
//! emitted to stderr as they happen, in text or JSON-lines form, and are
//! silenced by default (see [`set_log_format`]).
//!
//! Instrumentation is counters-only at the simulation level: recording a
//! metric never changes a simulated result, so instrumented and
//! uninstrumented runs produce byte-identical miss counts.

// In the test build, `unwrap` IS the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod event;
mod metrics;
mod registry;
mod snapshot;
mod span;

pub use event::{event, format_event, set_log_format, EventField, LogFormat};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary};
pub use registry::{global, scoped, with_current, Registry, ScopeGuard};
pub use snapshot::{MetricValue, Snapshot};
pub use span::Span;

use std::sync::Arc;

/// The current counter named `name` (registering it on first use).
///
/// "Current" is the innermost [`scoped`] registry on this thread, or the
/// [`global`] registry outside any scope — so library code instrumented
/// with these free functions records per-tenant when a daemon worker
/// holds a scope, and process-wide everywhere else.
pub fn counter(name: &str) -> Arc<Counter> {
    with_current(|r| r.counter(name))
}

/// The current gauge named `name` (registering it on first use; scope
/// resolution as in [`counter`]).
pub fn gauge(name: &str) -> Arc<Gauge> {
    with_current(|r| r.gauge(name))
}

/// The current histogram named `name` (registering it on first use;
/// scope resolution as in [`counter`]).
pub fn histogram(name: &str) -> Arc<Histogram> {
    with_current(|r| r.histogram(name))
}

/// Starts a scoped timer on the current registry; dropping the returned
/// [`Span`] records the elapsed milliseconds into histogram `name`
/// (scope resolution as in [`counter`]).
pub fn span(name: &str) -> Span {
    with_current(|r| r.span(name))
}

/// A point-in-time snapshot of the current registry, in sorted name
/// order (scope resolution as in [`counter`]).
pub fn snapshot() -> Snapshot {
    with_current(Registry::snapshot)
}
