//! Dependency-free observability for the tempo pipeline.
//!
//! Every long-running stage of the toolkit — trace ingestion, Q-set
//! profiling, placement, cache simulation — is instrumented against this
//! crate so that a multi-hour paper-scale run (17M–146M records, §5 of
//! Gloy et al.) is not a black box while it executes. The crate provides
//! four primitives and deliberately nothing else:
//!
//! * [`Counter`] — monotonically increasing `u64` (records read, Q-set
//!   evictions, cache misses, ...).
//! * [`Gauge`] — last-write-wins `f64` (peak RSS, live Q-set bytes).
//! * [`Histogram`] — count/sum/min/max plus log2 buckets of recorded
//!   samples (stage latencies).
//! * [`Span`] — a scoped timer guard; dropping it records the elapsed
//!   milliseconds into a histogram of the same name.
//!
//! Metrics live in a process-wide [`Registry`] (see [`global`]) keyed by
//! a dotted vocabulary (`trace.records_read`, `profile.qset_evictions`,
//! `sim.misses`; the full map to paper quantities is DESIGN.md §11). A
//! [`Snapshot`] of the registry renders to deterministic text or JSON and
//! parses back, which is what backs `--metrics-out` and `tempo stats`.
//!
//! Structured events ([`event`]) are separate from metrics: they are
//! emitted to stderr as they happen, in text or JSON-lines form, and are
//! silenced by default (see [`set_log_format`]).
//!
//! Instrumentation is counters-only at the simulation level: recording a
//! metric never changes a simulated result, so instrumented and
//! uninstrumented runs produce byte-identical miss counts.

// In the test build, `unwrap` IS the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod event;
mod metrics;
mod registry;
mod snapshot;
mod span;

pub use event::{event, format_event, set_log_format, EventField, LogFormat};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary};
pub use registry::{global, Registry};
pub use snapshot::{MetricValue, Snapshot};
pub use span::Span;

use std::sync::Arc;

/// The global counter named `name` (registering it on first use).
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// The global gauge named `name` (registering it on first use).
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// The global histogram named `name` (registering it on first use).
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Starts a scoped timer on the global registry; dropping the returned
/// [`Span`] records the elapsed milliseconds into histogram `name`.
pub fn span(name: &str) -> Span {
    global().span(name)
}

/// A point-in-time snapshot of the global registry, in sorted name order.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}
