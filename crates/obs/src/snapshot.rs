//! Point-in-time registry snapshots: deterministic rendering (text and
//! JSON) plus the matching parser.
//!
//! The JSON form is what `--metrics-out` writes and `tempo stats` reads,
//! so this module carries its own minimal JSON reader — tempo-obs sits
//! below every other crate and stays dependency-free.

use std::fmt::Write as _;

use crate::metrics::HistogramSummary;

/// The snapshot file format version.
pub const SCHEMA: u32 = 1;

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(f64),
    /// A histogram summary.
    Histogram(HistogramSummary),
}

/// A point-in-time copy of a registry, in sorted name order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// A counter's reading, or `None` if absent or not a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Counter increases since `before`: for every counter in `self`,
    /// its reading minus `before`'s (0 when absent), keeping only
    /// counters that moved. Sorted by name, like the snapshot itself.
    pub fn counter_deltas(&self, before: &Snapshot) -> Vec<(String, u64)> {
        self.entries
            .iter()
            .filter_map(|(name, value)| match value {
                MetricValue::Counter(now) => {
                    let was = before.counter(name).unwrap_or(0);
                    let delta = now.saturating_sub(was);
                    (delta > 0).then(|| (name.clone(), delta))
                }
                _ => None,
            })
            .collect()
    }

    /// The human-readable rendering (`tempo stats`, text `--metrics-out`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name:<width$}  {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name:<width$}  {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name:<width$}  count={} sum={:.3} min={:.3} max={:.3} mean={:.3}",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.mean()
                    );
                }
            }
        }
        out
    }

    /// The machine-readable rendering (JSON, schema-versioned).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {SCHEMA},");
        out.push_str("  \"metrics\": {\n");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "    {}: {{\"type\": \"counter\", \"value\": {v}}}{comma}",
                        json_string(name)
                    );
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "    {}: {{\"type\": \"gauge\", \"value\": {}}}{comma}",
                        json_string(name),
                        json_number(*v)
                    );
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "    {}: {{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}{comma}",
                        json_string(name),
                        h.count,
                        json_number(h.sum),
                        json_number(h.min),
                        json_number(h.max)
                    );
                }
            }
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a snapshot back from its [`Snapshot::render_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON or does not
    /// follow the snapshot schema.
    pub fn parse_json(text: &str) -> Result<Snapshot, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("snapshot root must be an object")?;
        let metrics = obj
            .iter()
            .find(|(k, _)| k == "metrics")
            .map(|(_, v)| v)
            .ok_or("snapshot missing `metrics` object")?;
        let metrics = metrics.as_object().ok_or("`metrics` must be an object")?;
        let mut entries = Vec::with_capacity(metrics.len());
        for (name, m) in metrics {
            let fields = m
                .as_object()
                .ok_or_else(|| format!("metric `{name}` must be an object"))?;
            let field = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let num = |key: &str| {
                field(key)
                    .and_then(json::Value::as_f64)
                    .ok_or_else(|| format!("metric `{name}` missing number `{key}`"))
            };
            let kind = field("type")
                .and_then(json::Value::as_str)
                .ok_or_else(|| format!("metric `{name}` missing `type`"))?;
            let value = match kind {
                "counter" => {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    // Counters are emitted as integral u64 well below 2^53.
                    MetricValue::Counter(num("value")?.max(0.0) as u64)
                }
                "gauge" => MetricValue::Gauge(num("value")?),
                "histogram" => MetricValue::Histogram(HistogramSummary {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    // Sample counts are emitted as integral u64 below 2^53.
                    count: num("count")?.max(0.0) as u64,
                    sum: num("sum")?,
                    min: num("min")?,
                    max: num("max")?,
                }),
                other => return Err(format!("metric `{name}` has unknown type `{other}`")),
            };
            entries.push((name.clone(), value));
        }
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Ok(Snapshot { entries })
    }
}

/// Renders a finite `f64` without scientific notation surprises; NaN and
/// infinities become `0` (JSON has no spelling for them).
pub(crate) fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// JSON-escapes and quotes a string.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON reader, just wide enough for snapshot files.
pub(crate) mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true`/`false`.
        Bool(bool),
        /// Any number (always carried as `f64`).
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, in source order.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The object's fields, if this is an object.
        pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
            match self {
                Value::Object(fields) => Some(fields),
                _ => None,
            }
        }

        /// The number, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The string, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if *pos < bytes.len() && bytes[*pos] == b {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid).
                    let rest = &bytes[*pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("trace.records_read").add(1_000_000);
        r.counter("sim.misses").add(42);
        r.gauge("proc.peak_rss_kb").set(12_345.0);
        r.histogram("stage.profile").record(12.5);
        r.histogram("stage.profile").record(7.5);
        r.snapshot()
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let snap = sample();
        let parsed = Snapshot::parse_json(&snap.render_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn text_rendering_lists_each_metric() {
        let text = sample().render_text();
        assert!(text.contains("trace.records_read"));
        assert!(text.contains("1000000"));
        assert!(text.contains("count=2 sum=20.000"));
    }

    #[test]
    fn counter_deltas_ignore_unmoved() {
        let r = Registry::new();
        r.counter("a").add(5);
        r.counter("b").add(1);
        let before = r.snapshot();
        r.counter("a").add(7);
        r.counter("c").add(3);
        let after = r.snapshot();
        assert_eq!(
            after.counter_deltas(&before),
            vec![("a".to_string(), 7), ("c".to_string(), 3)]
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Snapshot::parse_json("{").is_err());
        assert!(Snapshot::parse_json("{}").is_err());
        assert!(Snapshot::parse_json("{\"metrics\": 3}").is_err());
        assert!(Snapshot::parse_json("{\"metrics\": {\"x\": {\"type\": \"mystery\"}}}").is_err());
    }

    #[test]
    fn parse_accepts_hand_written_json() {
        let text = r#"{
            "schema": 1,
            "metrics": {
                "b": {"type": "gauge", "value": -2.5},
                "a": {"type": "counter", "value": 9}
            }
        }"#;
        let snap = Snapshot::parse_json(text).unwrap();
        assert_eq!(snap.counter("a"), Some(9));
        assert_eq!(snap.get("b"), Some(&MetricValue::Gauge(-2.5)));
        // Entries re-sort on parse.
        assert_eq!(snap.entries[0].0, "a");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_number_renders_integers_plainly() {
        assert_eq!(json_number(5.0), "5");
        assert_eq!(json_number(5.25), "5.25");
        assert_eq!(json_number(f64::NAN), "0");
    }
}
