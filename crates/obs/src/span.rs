//! Scoped stage timers.

use std::sync::Arc;
use std::time::Instant;

use crate::metrics::Histogram;

/// A scoped timer: created by [`Registry::span`](crate::Registry::span),
/// it records the elapsed wall-clock milliseconds into its histogram when
/// dropped.
///
/// ```
/// let registry = tempo_obs::Registry::new();
/// {
///     let _timer = registry.span("stage.profile");
///     // ... the work being timed ...
/// }
/// assert_eq!(registry.histogram("stage.profile").summary().count, 1);
/// ```
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
    recorded: bool,
}

impl Span {
    pub(crate) fn new(hist: Arc<Histogram>) -> Span {
        Span {
            hist,
            start: Instant::now(),
            recorded: false,
        }
    }

    /// Milliseconds elapsed since the span started.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Ends the span now, recording its duration (equivalent to dropping
    /// it, but reads better at explicit stage boundaries).
    pub fn finish(mut self) -> f64 {
        let ms = self.elapsed_ms();
        self.hist.record(ms);
        self.recorded = true;
        ms
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recorded {
            self.hist.record(self.elapsed_ms());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let h = Arc::new(Histogram::new());
        {
            let _s = Span::new(Arc::clone(&h));
        }
        assert_eq!(h.summary().count, 1);
    }

    #[test]
    fn finish_records_once() {
        let h = Arc::new(Histogram::new());
        let s = Span::new(Arc::clone(&h));
        let ms = s.finish();
        assert!(ms >= 0.0);
        assert_eq!(h.summary().count, 1);
    }
}
