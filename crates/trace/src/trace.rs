//! Trace representation.

use std::collections::HashMap;
use std::fmt;

use tempo_program::{ProcId, Program};

/// One control-flow transition into a procedure.
///
/// A record says "execution entered `proc` (by call, return, or fall-through)
/// and ran `bytes` bytes of it before the next transition". For a call the
/// extent typically covers the code up to the call site; for a return it
/// covers the code after the call site. The paper's algorithms only consume
/// the *sequence of procedure identifiers*; the byte extents additionally let
/// the cache simulator touch the right lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// The procedure entered.
    pub proc: ProcId,
    /// Bytes of the procedure executed, starting from its entry point,
    /// before the next transition. Always `>= 1` and `<=` the procedure
    /// size for traces built through [`TraceBuilder`].
    pub bytes: u32,
}

impl TraceRecord {
    /// Creates a record.
    pub fn new(proc: ProcId, bytes: u32) -> Self {
        TraceRecord { proc, bytes }
    }
}

/// An in-memory procedure-grain execution trace.
///
/// Build one with [`TraceBuilder`] (validating) or from raw records.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Wraps raw records without validation.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Trace { records }
    }

    /// Builds a trace where each referenced procedure executes its full
    /// size — convenient for tests and small examples.
    pub fn from_full_records<I>(program: &Program, procs: I) -> Self
    where
        I: IntoIterator<Item = ProcId>,
    {
        Trace {
            records: procs
                .into_iter()
                .map(|p| TraceRecord::new(p, program.size_of(p)))
                .collect(),
        }
    }

    /// The records, in execution order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records (control-flow transitions).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Per-procedure dynamic reference counts (number of records naming each
    /// procedure). This is the popularity signal of §4 of the paper.
    ///
    /// Records naming procedures outside the program are ignored, so this is
    /// safe to call on unvalidated traces.
    pub fn reference_counts(&self, program: &Program) -> Vec<u64> {
        let mut counts = vec![0u64; program.len()];
        for r in &self.records {
            if let Some(c) = counts.get_mut(r.proc.as_usize()) {
                *c += 1;
            }
        }
        counts
    }

    /// Summary statistics for reporting (Table 1 style).
    ///
    /// Purely trace-derived — no [`Program`] is needed. Use
    /// [`crate::source::StatsSink`] to compute the same statistics from a
    /// stream without materializing the trace.
    pub fn stats(&self) -> TraceStats {
        let mut counts: HashMap<ProcId, u64> = HashMap::new();
        let mut total_bytes = 0u64;
        for r in &self.records {
            *counts.entry(r.proc).or_insert(0) += 1;
            total_bytes += u64::from(r.bytes);
        }
        TraceStats {
            records: self.records.len() as u64,
            distinct_procs: counts.len() as u64,
            executed_bytes: total_bytes,
        }
    }

    /// Checks every record against the program: known procedure, extent
    /// within bounds, extent nonzero.
    ///
    /// Returns the index of the first invalid record, or `Ok(())`.
    ///
    /// # Errors
    ///
    /// The error value is the index of the offending record.
    pub fn validate(&self, program: &Program) -> Result<(), usize> {
        for (i, r) in self.records.iter().enumerate() {
            if r.proc.as_usize() >= program.len()
                || r.bytes == 0
                || r.bytes > program.size_of(r.proc)
            {
                return Err(i);
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Trace({} records)", self.records.len())
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of records (control-flow transitions).
    pub records: u64,
    /// Number of distinct procedures referenced.
    pub distinct_procs: u64,
    /// Total bytes executed across all records.
    pub executed_bytes: u64,
}

/// Validating builder for traces: clamps extents to procedure bounds and
/// rejects unknown procedures at push time.
#[derive(Debug)]
pub struct TraceBuilder<'p> {
    program: &'p Program,
    records: Vec<TraceRecord>,
}

impl<'p> TraceBuilder<'p> {
    /// Creates a builder for traces over `program`.
    pub fn new(program: &'p Program) -> Self {
        TraceBuilder {
            program,
            records: Vec::new(),
        }
    }

    /// Creates a builder with capacity for `n` records.
    ///
    /// The requested capacity is a hint: it is clamped to the same
    /// preallocation ceiling the trace readers apply to untrusted header
    /// counts, so a caller-supplied length (a CLI flag, a workload spec)
    /// cannot turn into an allocation abort. The vector still grows
    /// normally past the ceiling.
    pub fn with_capacity(program: &'p Program, n: usize) -> Self {
        let ceiling = usize::try_from(crate::io::PREALLOC_CAP).unwrap_or(usize::MAX);
        TraceBuilder {
            program,
            records: Vec::with_capacity(n.min(ceiling)),
        }
    }

    /// Records a transition into `proc` executing `bytes` bytes. The extent
    /// is clamped into `1..=size_of(proc)`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` does not belong to the program.
    pub fn transition(&mut self, proc: ProcId, bytes: u32) -> &mut Self {
        let size = self.program.size_of(proc); // panics on bad id
        self.records
            .push(TraceRecord::new(proc, bytes.clamp(1, size)));
        self
    }

    /// Records a transition into `proc` executing its full size.
    pub fn full(&mut self, proc: ProcId) -> &mut Self {
        let size = self.program.size_of(proc);
        self.records.push(TraceRecord::new(proc, size));
        self
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no records have been added.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Finishes the trace.
    pub fn build(self) -> Trace {
        Trace {
            records: self.records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog() -> Program {
        Program::builder()
            .procedure("m", 100)
            .procedure("x", 50)
            .procedure("y", 60)
            .build()
            .unwrap()
    }

    #[test]
    fn from_full_records_uses_sizes() {
        let p = prog();
        let t = Trace::from_full_records(&p, [ProcId::new(0), ProcId::new(1)]);
        assert_eq!(t.records()[0].bytes, 100);
        assert_eq!(t.records()[1].bytes, 50);
        t.validate(&p).unwrap();
    }

    #[test]
    fn builder_clamps_extents() {
        let p = prog();
        let mut b = TraceBuilder::new(&p);
        b.transition(ProcId::new(0), 0);
        b.transition(ProcId::new(0), 10_000);
        b.full(ProcId::new(2));
        let t = b.build();
        assert_eq!(t.records()[0].bytes, 1);
        assert_eq!(t.records()[1].bytes, 100);
        assert_eq!(t.records()[2].bytes, 60);
        t.validate(&p).unwrap();
    }

    #[test]
    fn validate_flags_bad_records() {
        let p = prog();
        let t = Trace::from_records(vec![
            TraceRecord::new(ProcId::new(0), 10),
            TraceRecord::new(ProcId::new(9), 10),
        ]);
        assert_eq!(t.validate(&p), Err(1));
        let t = Trace::from_records(vec![TraceRecord::new(ProcId::new(0), 0)]);
        assert_eq!(t.validate(&p), Err(0));
        let t = Trace::from_records(vec![TraceRecord::new(ProcId::new(1), 51)]);
        assert_eq!(t.validate(&p), Err(0));
    }

    #[test]
    fn reference_counts_count_records() {
        let p = prog();
        let t = Trace::from_full_records(
            &p,
            [
                ProcId::new(0),
                ProcId::new(1),
                ProcId::new(0),
                ProcId::new(0),
            ],
        );
        assert_eq!(t.reference_counts(&p), vec![3, 1, 0]);
    }

    #[test]
    fn stats_summarize() {
        let p = prog();
        let t = Trace::from_full_records(&p, [ProcId::new(0), ProcId::new(1)]);
        let s = t.stats();
        assert_eq!(s.records, 2);
        assert_eq!(s.distinct_procs, 2);
        assert_eq!(s.executed_bytes, 150);
    }

    #[test]
    fn collect_and_extend() {
        let recs = [
            TraceRecord::new(ProcId::new(0), 5),
            TraceRecord::new(ProcId::new(1), 6),
        ];
        let mut t: Trace = recs.iter().copied().collect();
        assert_eq!(t.len(), 2);
        t.extend([TraceRecord::new(ProcId::new(2), 7)]);
        assert_eq!(t.len(), 3);
        let back: Vec<TraceRecord> = t.clone().into_iter().collect();
        assert_eq!(back.len(), 3);
        assert_eq!((&t).into_iter().count(), 3);
    }

    #[test]
    fn empty_trace_behaves() {
        let p = prog();
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        t.validate(&p).unwrap();
        let s = t.stats();
        assert_eq!(s.records, 0);
        assert_eq!(s.distinct_procs, 0);
    }
}
