//! Trace analysis: reuse distances and working-set profiles.
//!
//! These are the quantities the paper's §3 reasons about informally
//! ("which other code blocks are referenced temporally nearby", "a
//! sufficiently large amount of unique code has been executed since"):
//!
//! * [`reuse_distances`] — for every re-reference to a procedure, the
//!   number of **bytes of distinct other procedures** referenced since its
//!   previous occurrence. A re-reference with reuse distance below the
//!   cache size is a conflict-miss candidate that placement can save; one
//!   above it is doomed regardless (capacity). The Q-set bound of twice
//!   the cache size is exactly a cutoff on this distribution.
//! * [`working_set_sizes`] — Denning working sets: distinct procedure
//!   bytes touched per fixed-length window, the footprint a phase presents
//!   to the cache.

use std::collections::HashMap;

use tempo_program::Program;

use crate::Trace;

/// Histogram-style summary of a sample of `u64` values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DistanceSummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample (0 if empty).
    pub max: u64,
    /// Median sample (0 if empty).
    pub median: u64,
    /// Samples at or below each probe point, parallel to the probes given
    /// to [`reuse_distances`].
    pub at_or_below: Vec<u64>,
}

/// Computes the byte reuse-distance distribution of a trace.
///
/// For each record whose procedure occurred before, the distance is the
/// total size of *distinct* other procedures referenced in between.
/// `probes` are cutoffs (in bytes) for the returned cumulative counts —
/// pass `[cache, 2 * cache]` to see how many reuses a cache-sized reach
/// and the paper's 2x Q bound would capture.
pub fn reuse_distances(program: &Program, trace: &Trace, probes: &[u64]) -> DistanceSummary {
    // Timestamped last-occurrence per procedure plus an ordered list of
    // (time, proc, size) to measure distinct bytes in a window. A BTreeMap
    // keyed by time gives O(log n + k) window scans.
    use std::collections::BTreeMap;
    let mut last_seen: HashMap<u32, u64> = HashMap::new();
    let mut live: BTreeMap<u64, u32> = BTreeMap::new(); // time -> proc
    let mut time_of: HashMap<u32, u64> = HashMap::new();
    let mut samples: Vec<u64> = Vec::new();
    for (t, r) in trace.iter().enumerate() {
        let t = t as u64;
        let p = r.proc.index();
        if let Some(&prev) = last_seen.get(&p) {
            // Distinct procedures with last occurrence strictly after prev.
            let mut dist = 0u64;
            for (_, &q) in live.range((prev + 1)..) {
                if q != p {
                    dist += u64::from(program.size_of(tempo_program::ProcId::new(q)));
                }
            }
            samples.push(dist);
        }
        // Update the live index: move p to time t.
        if let Some(&old) = time_of.get(&p) {
            live.remove(&old);
        }
        live.insert(t, p);
        time_of.insert(p, t);
        last_seen.insert(p, t);
    }
    summarize(samples, probes)
}

fn summarize(mut samples: Vec<u64>, probes: &[u64]) -> DistanceSummary {
    if samples.is_empty() {
        return DistanceSummary {
            at_or_below: vec![0; probes.len()],
            ..DistanceSummary::default()
        };
    }
    samples.sort_unstable();
    let at_or_below = probes
        .iter()
        .map(|&p| samples.partition_point(|&s| s <= p) as u64)
        .collect();
    DistanceSummary {
        count: samples.len() as u64,
        min: samples[0],
        max: *samples.last().expect("non-empty"),
        median: samples[samples.len() / 2],
        at_or_below,
    }
}

/// Distinct procedure bytes touched in each consecutive window of
/// `window` records (the final partial window is included if at least
/// half full). Returns one footprint per window.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn working_set_sizes(program: &Program, trace: &Trace, window: usize) -> Vec<u64> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::new();
    let mut seen: HashMap<u32, ()> = HashMap::new();
    let mut bytes = 0u64;
    let mut filled = 0usize;
    for r in trace.iter() {
        if seen.insert(r.proc.index(), ()).is_none() {
            bytes += u64::from(program.size_of(r.proc));
        }
        filled += 1;
        if filled == window {
            out.push(bytes);
            seen.clear();
            bytes = 0;
            filled = 0;
        }
    }
    if filled * 2 >= window {
        out.push(bytes);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_program::ProcId;

    fn program() -> Program {
        Program::builder()
            .procedure("a", 100)
            .procedure("b", 200)
            .procedure("c", 400)
            .build()
            .unwrap()
    }

    #[test]
    fn reuse_distance_counts_distinct_bytes_between() {
        let p = program();
        let ids: Vec<ProcId> = p.ids().collect();
        // a b c a : a's reuse distance = size(b) + size(c) = 600.
        let t = Trace::from_full_records(&p, [ids[0], ids[1], ids[2], ids[0]]);
        let s = reuse_distances(&p, &t, &[100, 600, 1000]);
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 600);
        assert_eq!(s.max, 600);
        assert_eq!(s.median, 600);
        assert_eq!(s.at_or_below, vec![0, 1, 1]);
    }

    #[test]
    fn duplicate_intervenors_count_once() {
        let p = program();
        let ids: Vec<ProcId> = p.ids().collect();
        // a b b b a : only one distinct intervenor.
        let t = Trace::from_full_records(&p, [ids[0], ids[1], ids[1], ids[1], ids[0]]);
        let s = reuse_distances(&p, &t, &[]);
        // Samples: b->b (0), b->b (0), a->a (200).
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 200);
    }

    #[test]
    fn immediate_rereference_is_zero_distance() {
        let p = program();
        let ids: Vec<ProcId> = p.ids().collect();
        let t = Trace::from_full_records(&p, [ids[0], ids[0]]);
        let s = reuse_distances(&p, &t, &[0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 0);
        assert_eq!(s.at_or_below, vec![1]);
    }

    #[test]
    fn empty_and_cold_traces() {
        let p = program();
        let s = reuse_distances(&p, &Trace::new(), &[100]);
        assert_eq!(s.count, 0);
        assert_eq!(s.at_or_below, vec![0]);
        let ids: Vec<ProcId> = p.ids().collect();
        let t = Trace::from_full_records(&p, [ids[0], ids[1], ids[2]]);
        let s = reuse_distances(&p, &t, &[100]);
        assert_eq!(s.count, 0, "no re-references");
    }

    #[test]
    fn probes_answered_independently_of_order() {
        let p = program();
        let ids: Vec<ProcId> = p.ids().collect();
        let t = Trace::from_full_records(&p, [ids[0], ids[1], ids[2], ids[0]]);
        let s = reuse_distances(&p, &t, &[1000, 100, 600]);
        assert_eq!(s.at_or_below, vec![1, 0, 1]);
    }

    #[test]
    fn working_sets_per_window() {
        let p = program();
        let ids: Vec<ProcId> = p.ids().collect();
        // Windows of 2: [a b] = 300, [a a] = 100, [c c] = 400.
        let t = Trace::from_full_records(&p, [ids[0], ids[1], ids[0], ids[0], ids[2], ids[2]]);
        assert_eq!(working_set_sizes(&p, &t, 2), vec![300, 100, 400]);
    }

    #[test]
    fn partial_final_window_included_when_half_full() {
        let p = program();
        let ids: Vec<ProcId> = p.ids().collect();
        let t = Trace::from_full_records(&p, [ids[0], ids[1], ids[2]]);
        // Window 4: only 3 records (>= half) -> one partial window.
        assert_eq!(working_set_sizes(&p, &t, 4), vec![700]);
        // Window 100: 3 records < half -> nothing.
        assert!(working_set_sizes(&p, &t, 100).is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let p = program();
        working_set_sizes(&p, &Trace::new(), 0);
    }
}
