//! Streaming trace dataflow: [`TraceSource`] producers and [`TraceSink`]
//! consumers.
//!
//! The materialized [`Trace`] representation caps reproducible workload
//! sizes at available RAM — the paper's ATOM traces run to 146M records,
//! which no `Vec<TraceRecord>` should have to hold. This module defines the
//! single-pass alternative: a source yields records one at a time (with
//! error and warning channels), sinks consume them incrementally, and
//! [`pump`] drives one pass over a source into a sink. [`Tee`] fans a single
//! pass out to several sinks, so the profiler, the cache simulator, and
//! trace statistics can all observe the same stream without a second read.
//!
//! ```
//! use tempo_program::ProcId;
//! use tempo_trace::{Trace, TraceRecord};
//! use tempo_trace::source::{pump, MemorySource, StatsSink, Tee, TraceSink};
//!
//! let trace = Trace::from_records(vec![
//!     TraceRecord::new(ProcId::new(0), 16),
//!     TraceRecord::new(ProcId::new(1), 8),
//! ]);
//! let mut stats = StatsSink::new();
//! let mut copy = Trace::new();
//! {
//!     let mut sinks: [&mut dyn TraceSink; 2] = [&mut stats, &mut copy];
//!     let mut tee = Tee::new(&mut sinks);
//!     pump(&mut MemorySource::new(&trace), &mut tee)?;
//! }
//! assert_eq!(copy, trace);
//! assert_eq!(stats.stats().executed_bytes, 24);
//! # Ok::<(), tempo_trace::io::TraceIoError>(())
//! ```

use std::collections::HashSet;

use tempo_program::ProcId;

use crate::io::{TraceIoError, TraceWarnings};
use crate::{Trace, TraceRecord, TraceStats};

/// A pull-based stream of trace records.
///
/// Sources are single-pass: once [`try_next`](TraceSource::try_next) returns
/// `Ok(None)` the stream is exhausted. Multi-pass algorithms (popularity
/// selection before profiling, for example) re-open the source — see
/// `Session::profile_with` in `tempo-core`.
///
/// Lossy sources repair or skip defective input and tally every repair in
/// [`warnings`](TraceSource::warnings); strict sources surface the first
/// defect as a [`TraceIoError`].
pub trait TraceSource {
    /// Yields the next record, `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Strict sources fail on the first defect; lossy sources fail only on
    /// genuine I/O errors.
    fn try_next(&mut self) -> Result<Option<TraceRecord>, TraceIoError>;

    /// Warnings accumulated so far (only meaningful for lossy sources, and
    /// only complete once the stream is exhausted).
    fn warnings(&self) -> TraceWarnings {
        TraceWarnings::default()
    }

    /// The number of records this source expects to yield, when known
    /// up front (in-memory adapters, bounded generators). Streaming file
    /// readers return `None`.
    fn expected_records(&self) -> Option<u64> {
        None
    }

    /// Fills `block` with up to `max` records in structure-of-arrays form,
    /// returning how many were produced (`0` at end of stream).
    ///
    /// The default implementation loops [`try_next`](TraceSource::try_next);
    /// frame-oriented readers override it to hand out whole decoded frames
    /// without per-record dispatch, which is what lets N simulated layouts
    /// share one decode in `simulate_layouts_streamed`. Both paths must
    /// yield identical record sequences.
    ///
    /// # Errors
    ///
    /// Same contract as [`try_next`](TraceSource::try_next).
    fn try_next_block(
        &mut self,
        block: &mut RecordBlock,
        max: usize,
    ) -> Result<usize, TraceIoError> {
        block.clear();
        while block.len() < max {
            match self.try_next()? {
                Some(r) => block.push(r.proc.index(), r.bytes),
                None => break,
            }
        }
        Ok(block.len())
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        (**self).try_next()
    }
    fn warnings(&self) -> TraceWarnings {
        (**self).warnings()
    }
    fn expected_records(&self) -> Option<u64> {
        (**self).expected_records()
    }
    fn try_next_block(
        &mut self,
        block: &mut RecordBlock,
        max: usize,
    ) -> Result<usize, TraceIoError> {
        (**self).try_next_block(block, max)
    }
}

/// A batch of trace records in structure-of-arrays layout.
///
/// `procs[i]`/`bytes[i]` are the two halves of record `i`. The parallel-array
/// shape is what the batched simulator kernel consumes: the inner loop reads
/// two dense `u32` streams instead of chasing `TraceRecord` structs, and one
/// decoded block feeds every layout in a sweep.
#[derive(Debug, Default, Clone)]
pub struct RecordBlock {
    /// Procedure index of each record.
    pub procs: Vec<u32>,
    /// Byte extent of each record.
    pub bytes: Vec<u32>,
}

impl RecordBlock {
    /// Creates an empty block with room for `cap` records.
    pub fn with_capacity(cap: usize) -> Self {
        RecordBlock {
            procs: Vec::with_capacity(cap),
            bytes: Vec::with_capacity(cap),
        }
    }

    /// Number of records currently in the block.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether the block holds no records.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Removes all records, keeping the allocations.
    pub fn clear(&mut self) {
        self.procs.clear();
        self.bytes.clear();
    }

    /// Appends one record.
    #[inline]
    pub fn push(&mut self, proc: u32, bytes: u32) {
        self.procs.push(proc);
        self.bytes.push(bytes);
    }
}

/// A push-based consumer of trace records.
///
/// Sinks are infallible: a sink that can fail (a file writer, say) records
/// its error internally and surfaces it from its own `finish` method, so a
/// fan-out over many sinks never aborts half-delivered.
pub trait TraceSink {
    /// Consumes one record.
    fn accept(&mut self, record: &TraceRecord);
}

impl<K: TraceSink + ?Sized> TraceSink for &mut K {
    fn accept(&mut self, record: &TraceRecord) {
        (**self).accept(record);
    }
}

/// Collecting sink: materializes the stream into the wrapped [`Trace`].
impl TraceSink for Trace {
    fn accept(&mut self, record: &TraceRecord) {
        self.push(*record);
    }
}

/// Outcome of one [`pump`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpSummary {
    /// Records delivered to the sink.
    pub records: u64,
    /// Warnings the source accumulated over the pass.
    pub warnings: TraceWarnings,
}

/// Drives `source` to exhaustion, delivering every record to `sink`.
///
/// To feed several consumers from the same pass, wrap them in a [`Tee`].
///
/// # Errors
///
/// Propagates the first error the source reports.
pub fn pump<S, K>(source: &mut S, sink: &mut K) -> Result<PumpSummary, TraceIoError>
where
    S: TraceSource + ?Sized,
    K: TraceSink + ?Sized,
{
    let mut records = 0u64;
    while let Some(r) = source.try_next()? {
        sink.accept(&r);
        records += 1;
    }
    let warnings = source.warnings();
    crate::obs::note_read(records, &warnings);
    Ok(PumpSummary { records, warnings })
}

/// Fan-out combinator: one sink that forwards every record to each of a set
/// of sinks, so a single pass over a source feeds them all.
pub struct Tee<'a, 'b> {
    sinks: &'a mut [&'b mut dyn TraceSink],
}

impl<'a, 'b> Tee<'a, 'b> {
    /// Wraps a slice of sinks.
    pub fn new(sinks: &'a mut [&'b mut dyn TraceSink]) -> Self {
        Tee { sinks }
    }
}

impl TraceSink for Tee<'_, '_> {
    fn accept(&mut self, record: &TraceRecord) {
        for sink in self.sinks.iter_mut() {
            sink.accept(record);
        }
    }
}

/// In-memory source over a slice of records (or a whole [`Trace`]).
///
/// Clean by construction: never errors, never warns, and knows its length.
#[derive(Debug)]
pub struct MemorySource<'a> {
    records: std::slice::Iter<'a, TraceRecord>,
    len: u64,
}

impl<'a> MemorySource<'a> {
    /// Streams the records of `trace`.
    pub fn new(trace: &'a Trace) -> Self {
        MemorySource::from_slice(trace.records())
    }

    /// Streams a raw record slice.
    pub fn from_slice(records: &'a [TraceRecord]) -> Self {
        MemorySource {
            records: records.iter(),
            len: records.len() as u64,
        }
    }
}

impl TraceSource for MemorySource<'_> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        Ok(self.records.next().copied())
    }
    fn expected_records(&self) -> Option<u64> {
        Some(self.len)
    }
}

/// Streaming [`TraceStats`] accumulator.
///
/// Memory is bounded by the number of *distinct* procedures, not trace
/// length, so it composes with arbitrarily long sources.
#[derive(Debug, Default)]
pub struct StatsSink {
    records: u64,
    executed_bytes: u64,
    seen: HashSet<ProcId>,
}

impl StatsSink {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StatsSink::default()
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            records: self.records,
            distinct_procs: self.seen.len() as u64,
            executed_bytes: self.executed_bytes,
        }
    }
}

impl TraceSink for StatsSink {
    fn accept(&mut self, record: &TraceRecord) {
        self.records += 1;
        self.executed_bytes += u64::from(record.bytes);
        self.seen.insert(record.proc);
    }
}

/// Streaming per-procedure reference counter — the §4 popularity signal
/// (`Trace::reference_counts`) in O(#procedures) memory.
///
/// Records naming procedures outside `0..nprocs` are ignored, matching the
/// materialized counterpart.
#[derive(Debug)]
pub struct RefCountSink {
    counts: Vec<u64>,
}

impl RefCountSink {
    /// Creates a counter for a program with `nprocs` procedures.
    pub fn new(nprocs: usize) -> Self {
        RefCountSink {
            counts: vec![0; nprocs],
        }
    }

    /// Per-procedure dynamic reference counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Consumes the accumulator, returning the counts.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }
}

impl TraceSink for RefCountSink {
    fn accept(&mut self, record: &TraceRecord) {
        if let Some(c) = self.counts.get_mut(record.proc.as_usize()) {
            *c += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_records(vec![
            TraceRecord::new(ProcId::new(0), 100),
            TraceRecord::new(ProcId::new(2), 32),
            TraceRecord::new(ProcId::new(0), 1),
        ])
    }

    #[test]
    fn memory_source_yields_all_records() {
        let t = sample();
        let mut src = MemorySource::new(&t);
        assert_eq!(src.expected_records(), Some(3));
        let mut out = Trace::new();
        let summary = pump(&mut src, &mut out).unwrap();
        assert_eq!(summary.records, 3);
        assert!(summary.warnings.is_clean());
        assert_eq!(out, t);
    }

    #[test]
    fn tee_fans_out_to_every_sink() {
        let t = sample();
        let mut stats = StatsSink::new();
        let mut counts = RefCountSink::new(3);
        let mut copy = Trace::new();
        {
            let mut sinks: [&mut dyn TraceSink; 3] = [&mut stats, &mut counts, &mut copy];
            let mut tee = Tee::new(&mut sinks);
            pump(&mut MemorySource::new(&t), &mut tee).unwrap();
        }
        assert_eq!(copy, t);
        assert_eq!(stats.stats().records, 3);
        assert_eq!(stats.stats().distinct_procs, 2);
        assert_eq!(stats.stats().executed_bytes, 133);
        assert_eq!(counts.counts(), &[2, 0, 1]);
    }

    #[test]
    fn stats_sink_matches_materialized_stats() {
        let t = sample();
        let mut sink = StatsSink::new();
        pump(&mut MemorySource::new(&t), &mut sink).unwrap();
        assert_eq!(sink.stats(), t.stats());
    }

    #[test]
    fn ref_count_sink_ignores_out_of_range_procs() {
        let t = Trace::from_records(vec![
            TraceRecord::new(ProcId::new(0), 4),
            TraceRecord::new(ProcId::new(99), 4),
        ]);
        let mut counts = RefCountSink::new(2);
        pump(&mut MemorySource::new(&t), &mut counts).unwrap();
        assert_eq!(counts.into_counts(), vec![1, 0]);
    }

    #[test]
    fn mut_ref_blanket_impls_compose() {
        let t = sample();
        let mut src = MemorySource::new(&t);
        let mut sink = StatsSink::new();
        // &mut Source / &mut Sink are themselves sources and sinks.
        let summary = pump(&mut &mut src, &mut &mut sink).unwrap();
        assert_eq!(summary.records, 3);
    }
}
