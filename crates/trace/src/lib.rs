//! Procedure-grain execution traces for the **tempo** toolkit.
//!
//! The paper drives every placement algorithm from a program trace: an
//! ordered record of control-flow transitions between procedures (calls
//! *and* returns). This crate defines:
//!
//! * [`TraceRecord`] / [`Trace`] — the trace representation. Each record is
//!   one control-flow transition *into* a procedure together with the number
//!   of bytes executed before the next transition, which is what a
//!   line-accurate instruction-cache simulation needs.
//! * [`source`] — the streaming dataflow vocabulary: [`TraceSource`]
//!   producers, [`TraceSink`] consumers, the [`pump`] driver loop, and
//!   [`Tee`] fan-out, so pipelines process traces of any length in
//!   constant memory (DESIGN.md §10).
//! * [`io`] — the v1 binary container (fixed records, count up front) plus
//!   a human-readable text format; strict and lossy streaming readers.
//! * [`v2`] — the v2 chunked binary container: CRC-framed blocks of varint
//!   records, streamable and lossy-recoverable frame by frame.
//! * [`mmap`] — whole-buffer zero-copy ingestion of v2 containers with a
//!   size-budgeted automatic fallback to the streaming reader
//!   ([`mmap::open_v2_auto`]).
//! * [`testkit`] — TMP2 fixture builders shared by integration tests and
//!   the bench harness (in-memory containers at a chosen frame
//!   granularity, constant-memory file fixtures from any source).
//! * [`stats`] — the small statistical samplers (normal, lognormal, Zipf)
//!   used by the workload substrate and the profile-perturbation machinery,
//!   implemented in-repo so the only randomness dependency is `rand`.
//! * [`analysis`] — reuse-distance and working-set analysis of traces,
//!   the quantities the paper's Q-set bound reasons about.
//!
//! # Example
//!
//! ```
//! use tempo_program::{Program, ProcId};
//! use tempo_trace::{Trace, TraceRecord};
//!
//! let program = Program::builder()
//!     .procedure("m", 128)
//!     .procedure("x", 64)
//!     .build()?;
//! let m = program.proc_id("m").unwrap();
//! let x = program.proc_id("x").unwrap();
//!
//! // m calls x, x returns to m: three transitions.
//! let trace = Trace::from_full_records(&program, [m, x, m]);
//! assert_eq!(trace.len(), 3);
//! assert_eq!(trace.records()[1].proc, x);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// In the test build, `unwrap` IS the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

pub mod analysis;
pub mod io;
pub mod mmap;
pub mod obs;
pub mod source;
pub mod stats;
pub mod testkit;
mod trace;
pub mod v2;

pub use mmap::{open_v2_auto, open_v2_auto_lossy, MmapSource, ZeroCopySource};
pub use source::{pump, MemorySource, PumpSummary, RecordBlock, Tee, TraceSink, TraceSource};
pub use trace::{Trace, TraceBuilder, TraceRecord, TraceStats};
