//! Zero-copy whole-buffer ingestion of TMP2 traces.
//!
//! [`MmapSource`] holds the entire container in one owned byte buffer and
//! decodes each frame **in place**: the frame header is parsed from a
//! borrowed slice, the CRC runs over the borrowed payload, and the varint
//! decode writes straight into reusable structure-of-arrays columns. The
//! streaming [`V2Source`] by contrast copies every payload out of its
//! `Read` handle into a per-frame allocation before decoding — for traces
//! that fit in memory that copy (and the `Read` dispatch under it) is pure
//! overhead.
//!
//! The workspace forbids `unsafe`, so "mapping" here is a safe
//! `std::fs::read` of the whole file rather than a literal `mmap(2)`; the
//! access pattern — one contiguous buffer, borrowed per-frame slices, no
//! per-frame copies — is the same, and the OS page cache makes the read a
//! near-equivalent for the file sizes the budget admits. What matters for
//! callers is the gate: [`open_v2_auto`] sniffs the file size against a
//! budget ([`DEFAULT_MAP_BUDGET`]) and falls back to the constant-memory
//! streaming reader for anything larger, so a 146M-record ATOM-scale trace
//! never forces a multi-gigabyte buffer. Set `TEMPO_STREAM_INGEST=map` or
//! `=stream` to force a path (CI uses this to assert the two are
//! byte-identical).
//!
//! Both readers share [`decode_frame_soa`](crate::v2), so the decoded
//! record sequence — and therefore every downstream miss count — is
//! identical by construction; an integration test pins this on a Table-1
//! workload.

use std::path::Path;

use tempo_program::{ProcId, Program};

use crate::io::{repair_record, ReadMode, TraceIoError, TraceWarnings};
use crate::source::{RecordBlock, TraceSource};
use crate::v2::{
    crc32, decode_frame_soa, FrameDecodeDefect, V2Source, FRAME_HEADER_LEN, MAGIC_V2,
    MAX_FRAME_PAYLOAD, VERSION_V2,
};
use crate::TraceRecord;

/// Largest file `open_v2_auto` will hold in memory by default: 32 MiB,
/// roughly 10M records at typical varint density. Larger traces stream.
pub const DEFAULT_MAP_BUDGET: u64 = 32 * 1024 * 1024;

/// Whole-buffer TMP2 reader with zero-copy frame decoding.
///
/// Same defect semantics as [`V2Source`] (strict constructors fail on the
/// first corrupt frame, lossy ones skip and tally), same record sequence,
/// no per-frame payload copies. Records are served from
/// structure-of-arrays columns, so [`try_next_block`](TraceSource::try_next_block)
/// degenerates to two `memcpy`s per frame.
#[derive(Debug)]
pub struct MmapSource<'p> {
    buf: Vec<u8>,
    /// Byte offset of the next frame header within `buf`.
    pos: usize,
    mode: ReadMode,
    program: Option<&'p Program>,
    /// Decoded (and, in lossy mode, repaired) records of the current frame.
    procs: Vec<u32>,
    bytes: Vec<u32>,
    /// Next index to yield from the columns.
    cursor: usize,
    frame_index: u64,
    record_index: u64,
    warnings: TraceWarnings,
    done: bool,
}

impl MmapSource<'static> {
    /// Opens `path` strictly, reading the whole file into memory.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, bad magic, or an unsupported version.
    pub fn open(path: &Path) -> Result<Self, TraceIoError> {
        Self::from_bytes(std::fs::read(path)?)
    }

    /// Wraps an in-memory TMP2 container strictly.
    ///
    /// # Errors
    ///
    /// Fails on bad magic, a truncated header, or an unsupported version.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self, TraceIoError> {
        if buf.len() < 4 || buf[0..4] != MAGIC_V2 {
            return Err(TraceIoError::BadMagic);
        }
        if buf.len() < 8 {
            return Err(std::io::Error::from(std::io::ErrorKind::UnexpectedEof).into());
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().expect("slice is 4 bytes"));
        if version != VERSION_V2 {
            return Err(TraceIoError::UnsupportedVersion(version));
        }
        Ok(Self::with_header(
            buf,
            ReadMode::Strict,
            None,
            8,
            TraceWarnings::default(),
            false,
        ))
    }
}

impl<'p> MmapSource<'p> {
    /// Opens `path` lossily: a mangled header is tallied, corrupt frames
    /// are skipped, and per-record defects are repaired against `program`
    /// when given — mirroring [`V2Source::new_lossy`].
    ///
    /// # Errors
    ///
    /// Fails only on genuine I/O errors reading the file.
    pub fn open_lossy(path: &Path, program: Option<&'p Program>) -> Result<Self, TraceIoError> {
        Ok(Self::from_bytes_lossy(std::fs::read(path)?, program))
    }

    /// Wraps an in-memory container lossily. Infallible: every defect is
    /// tallied instead of raised.
    pub fn from_bytes_lossy(buf: Vec<u8>, program: Option<&'p Program>) -> Self {
        let mut warnings = TraceWarnings::default();
        let mut done = false;
        let mut pos = 8usize;
        if buf.len() < 8 {
            if !buf.is_empty() {
                warnings.header_mangled += 1;
            }
            pos = buf.len();
            done = true;
        } else {
            if buf[0..4] != MAGIC_V2 {
                warnings.header_mangled += 1;
            }
            let version = u32::from_le_bytes(buf[4..8].try_into().expect("slice is 4 bytes"));
            if version != VERSION_V2 && buf[0..4] == MAGIC_V2 {
                warnings.header_mangled += 1;
            }
        }
        Self::with_header(buf, ReadMode::Lossy, program, pos, warnings, done)
    }

    fn with_header(
        buf: Vec<u8>,
        mode: ReadMode,
        program: Option<&'p Program>,
        pos: usize,
        warnings: TraceWarnings,
        done: bool,
    ) -> Self {
        MmapSource {
            buf,
            pos,
            mode,
            program,
            procs: Vec::new(),
            bytes: Vec::new(),
            cursor: 0,
            frame_index: 0,
            record_index: 0,
            warnings,
            done,
        }
    }

    /// Size of the held buffer in bytes.
    pub fn buffer_len(&self) -> usize {
        self.buf.len()
    }

    /// Decodes the next frame into the SoA columns. Returns `false` at
    /// clean end of input; lossy mode leaves the columns empty on a skipped
    /// frame and the caller loops.
    fn load_frame(&mut self) -> Result<bool, TraceIoError> {
        self.procs.clear();
        self.bytes.clear();
        self.cursor = 0;
        let index = self.frame_index;

        let remaining = self.buf.len() - self.pos;
        if remaining == 0 {
            self.done = true;
            return Ok(false);
        }
        if remaining < FRAME_HEADER_LEN {
            return self.frame_defect(index, /* skippable */ false);
        }
        let h = self.pos;
        let payload_len =
            u32::from_le_bytes(self.buf[h..h + 4].try_into().expect("slice is 4 bytes"));
        let record_count =
            u32::from_le_bytes(self.buf[h + 4..h + 8].try_into().expect("slice is 4 bytes"));
        let crc = u32::from_le_bytes(
            self.buf[h + 8..h + 12]
                .try_into()
                .expect("slice is 4 bytes"),
        );
        if payload_len > MAX_FRAME_PAYLOAD {
            return self.frame_defect(index, false);
        }
        let start = h + FRAME_HEADER_LEN;
        let Some(end) = start
            .checked_add(payload_len as usize)
            .filter(|&e| e <= self.buf.len())
        else {
            return self.frame_defect(index, false);
        };
        self.pos = end;
        self.frame_index += 1;
        // The payload stays a borrowed slice of the file buffer end to end:
        // CRC and varint decode read it in place, no copy.
        if crc32(&self.buf[start..end]) != crc {
            return self.frame_defect(index, true);
        }
        if u64::from(record_count) * 2 > u64::from(payload_len) {
            return self.frame_defect(index, true);
        }
        if let Err(defect) = decode_frame_soa(
            &self.buf[start..end],
            record_count as usize,
            &mut self.procs,
            &mut self.bytes,
        ) {
            if self.mode == ReadMode::Lossy && defect == FrameDecodeDefect::Varint {
                self.warnings.varint_defects += 1;
            }
            return self.frame_defect(index, true);
        }
        match self.mode {
            ReadMode::Strict => {
                for (i, &b) in self.bytes.iter().enumerate() {
                    if b == 0 {
                        self.done = true;
                        return Err(TraceIoError::ZeroExtent {
                            index: self.record_index + i as u64,
                        });
                    }
                }
            }
            ReadMode::Lossy => {
                // Repair in place, compacting dropped records out of the
                // columns so the cursor walk below never re-checks.
                let mut keep = 0usize;
                for i in 0..self.procs.len() {
                    if let Some(r) = repair_record(
                        self.procs[i],
                        self.bytes[i],
                        self.program,
                        &mut self.warnings,
                    ) {
                        self.procs[keep] = r.proc.index();
                        self.bytes[keep] = r.bytes;
                        keep += 1;
                    }
                }
                self.procs.truncate(keep);
                self.bytes.truncate(keep);
            }
        }
        Ok(true)
    }

    /// Same strict/lossy split as `V2Source::frame_defect`.
    fn frame_defect(&mut self, index: u64, skippable: bool) -> Result<bool, TraceIoError> {
        if self.mode == ReadMode::Strict {
            self.done = true;
            return Err(TraceIoError::CorruptFrame { frame: index });
        }
        self.warnings.bad_frames += 1;
        if !skippable {
            self.done = true;
        }
        Ok(!self.done)
    }
}

impl TraceSource for MmapSource<'_> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        loop {
            if self.cursor < self.procs.len() {
                let r = TraceRecord::new(
                    ProcId::new(self.procs[self.cursor]),
                    self.bytes[self.cursor],
                );
                self.cursor += 1;
                self.record_index += 1;
                return Ok(Some(r));
            }
            if self.done {
                return Ok(None);
            }
            self.load_frame()?;
        }
    }

    fn warnings(&self) -> TraceWarnings {
        self.warnings
    }

    fn try_next_block(
        &mut self,
        block: &mut RecordBlock,
        max: usize,
    ) -> Result<usize, TraceIoError> {
        block.clear();
        if max == 0 {
            return Ok(0);
        }
        loop {
            let avail = self.procs.len() - self.cursor;
            if avail > 0 {
                let take = avail.min(max - block.len());
                block
                    .procs
                    .extend_from_slice(&self.procs[self.cursor..self.cursor + take]);
                block
                    .bytes
                    .extend_from_slice(&self.bytes[self.cursor..self.cursor + take]);
                self.cursor += take;
                self.record_index += take as u64;
            }
            // Frame-granular, like the V2Source override: a drained frame
            // ends the block even short of `max`.
            if !block.is_empty() || self.done {
                return Ok(block.len());
            }
            self.load_frame()?;
        }
    }
}

// ---------------------------------------------------------------------
// Auto-gated opener
// ---------------------------------------------------------------------

/// A TMP2 reader that is either mapped whole or streamed, chosen by
/// [`open_v2_auto`]. Implements [`TraceSource`] by delegation, so callers
/// are agnostic to the path taken.
#[derive(Debug)]
pub enum ZeroCopySource<'p> {
    /// Whole file held in memory, frames decoded zero-copy.
    Mapped(MmapSource<'p>),
    /// Constant-memory streaming reader (one frame at a time).
    Streamed(V2Source<'p, std::io::BufReader<std::fs::File>>),
}

impl ZeroCopySource<'_> {
    /// Whether the mapped (whole-buffer) path was chosen.
    pub fn is_mapped(&self) -> bool {
        matches!(self, ZeroCopySource::Mapped(_))
    }
}

impl TraceSource for ZeroCopySource<'_> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        match self {
            ZeroCopySource::Mapped(s) => s.try_next(),
            ZeroCopySource::Streamed(s) => s.try_next(),
        }
    }
    fn warnings(&self) -> TraceWarnings {
        match self {
            ZeroCopySource::Mapped(s) => s.warnings(),
            ZeroCopySource::Streamed(s) => s.warnings(),
        }
    }
    fn expected_records(&self) -> Option<u64> {
        match self {
            ZeroCopySource::Mapped(s) => s.expected_records(),
            ZeroCopySource::Streamed(s) => s.expected_records(),
        }
    }
    fn try_next_block(
        &mut self,
        block: &mut RecordBlock,
        max: usize,
    ) -> Result<usize, TraceIoError> {
        match self {
            ZeroCopySource::Mapped(s) => s.try_next_block(block, max),
            ZeroCopySource::Streamed(s) => s.try_next_block(block, max),
        }
    }
}

/// Parses one `TEMPO_STREAM_INGEST` value: `Some(true)` forces the
/// whole-buffer path, `Some(false)` the streaming path, `None` is
/// unrecognized.
fn parse_ingest_override(value: &str) -> Option<bool> {
    match value {
        "map" | "mmap" => Some(true),
        "stream" | "read" => Some(false),
        _ => None,
    }
}

/// Accepted `TEMPO_STREAM_INGEST` values, for the invalid-value warning.
const INGEST_VALUES: &str = "map, mmap, stream, read";

/// `TEMPO_STREAM_INGEST` override: `map` forces the whole-buffer path,
/// `stream` forces the streaming path, unset defers to the size budget.
/// An *invalid* value also defers to the budget, but loudly: a forced
/// ingestion path that silently stops forcing is exactly the kind of CI
/// config rot the override exists to catch, so the fallback bumps the
/// `trace.ingest_override_invalid` counter and emits a structured event
/// naming the accepted values. The warning deliberately has no
/// once-per-process latch: in a long-running daemon a process-global
/// `Once` would let the first tenant's session consume the warning for
/// every later one, so the event fires on every affected open and any
/// rate limiting is the log consumer's job.
fn ingest_override() -> Option<bool> {
    let value = std::env::var("TEMPO_STREAM_INGEST").ok()?;
    let parsed = parse_ingest_override(&value);
    if parsed.is_none() {
        tempo_obs::counter("trace.ingest_override_invalid").incr();
        tempo_obs::event(
            "trace.ingest",
            "invalid TEMPO_STREAM_INGEST value ignored; deferring to size budget",
            &[
                ("value", value.as_str().into()),
                ("accepted", INGEST_VALUES.into()),
            ],
        );
    }
    parsed
}

fn should_map(path: &Path, budget: Option<u64>) -> Result<bool, TraceIoError> {
    if let Some(forced) = ingest_override() {
        return Ok(forced);
    }
    Ok(std::fs::metadata(path)?.len() <= budget.unwrap_or(DEFAULT_MAP_BUDGET))
}

/// Opens a TMP2 file strictly, mapping it whole when it fits the budget
/// (default [`DEFAULT_MAP_BUDGET`]) and streaming it otherwise. The
/// `TEMPO_STREAM_INGEST` environment variable (`map` / `stream`) forces a
/// path regardless of size — CI uses this to check the two agree.
///
/// # Errors
///
/// Fails on I/O errors, bad magic, or an unsupported version.
pub fn open_v2_auto(
    path: &Path,
    budget: Option<u64>,
) -> Result<ZeroCopySource<'static>, TraceIoError> {
    if should_map(path, budget)? {
        Ok(ZeroCopySource::Mapped(MmapSource::open(path)?))
    } else {
        let f = std::fs::File::open(path)?;
        Ok(ZeroCopySource::Streamed(V2Source::new(
            std::io::BufReader::new(f),
        )?))
    }
}

/// Lossy counterpart of [`open_v2_auto`]: defects are repaired against
/// `program` and tallied instead of raised.
///
/// # Errors
///
/// Fails only on genuine I/O errors.
pub fn open_v2_auto_lossy<'p>(
    path: &Path,
    program: Option<&'p Program>,
    budget: Option<u64>,
) -> Result<ZeroCopySource<'p>, TraceIoError> {
    if should_map(path, budget)? {
        Ok(ZeroCopySource::Mapped(MmapSource::open_lossy(
            path, program,
        )?))
    } else {
        let f = std::fs::File::open(path)?;
        Ok(ZeroCopySource::Streamed(V2Source::new_lossy(
            std::io::BufReader::new(f),
            program,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::v2::{write_binary_v2, V2Writer};
    use crate::Trace;

    fn sample_trace() -> Trace {
        Trace::from_records(
            (0..5_000u32)
                .map(|i| TraceRecord::new(ProcId::new(i % 97), (i % 1000) + 1))
                .collect(),
        )
    }

    fn encode(trace: &Trace, per_frame: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = V2Writer::with_frame_records(&mut buf, per_frame).unwrap();
        for r in trace.iter() {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    fn drain<S: TraceSource>(mut src: S) -> (Vec<TraceRecord>, TraceWarnings) {
        let mut out = Vec::new();
        while let Some(r) = src.try_next().unwrap() {
            out.push(r);
        }
        (out, src.warnings())
    }

    #[test]
    fn ingest_override_parses_accepted_values_only() {
        assert_eq!(parse_ingest_override("map"), Some(true));
        assert_eq!(parse_ingest_override("mmap"), Some(true));
        assert_eq!(parse_ingest_override("stream"), Some(false));
        assert_eq!(parse_ingest_override("read"), Some(false));
        for invalid in ["", "MAP", "Mmap", "auto", "yes", "0"] {
            assert_eq!(parse_ingest_override(invalid), None, "{invalid:?}");
        }
    }

    #[test]
    fn invalid_ingest_override_warns_structurally() {
        // The env-var path itself is covered end-to-end by CI (which sets
        // TEMPO_STREAM_INGEST); here we pin the warning side effects the
        // fallback must produce, via the counter the warning bumps.
        let before = tempo_obs::snapshot()
            .counter("trace.ingest_override_invalid")
            .unwrap_or(0);
        std::env::set_var("TEMPO_STREAM_INGEST", "bogus");
        let forced = ingest_override();
        std::env::remove_var("TEMPO_STREAM_INGEST");
        assert_eq!(forced, None, "invalid value must defer to the budget");
        let after = tempo_obs::snapshot()
            .counter("trace.ingest_override_invalid")
            .unwrap_or(0);
        // >= rather than ==: sibling tests opening traces concurrently
        // also pass through ingest_override while the variable is set.
        assert!(after > before, "invalid override must be counted");
    }

    #[test]
    fn mmap_matches_streaming_reader_record_for_record() {
        let t = sample_trace();
        let buf = encode(&t, 512);
        let (mapped, mw) = drain(MmapSource::from_bytes(buf.clone()).unwrap());
        let (streamed, sw) = drain(V2Source::new(buf.as_slice()).unwrap());
        assert_eq!(mapped, streamed);
        assert_eq!(mapped, t.records());
        assert_eq!(mw, sw);
    }

    #[test]
    fn mmap_block_path_matches_scalar_path() {
        let t = sample_trace();
        let buf = encode(&t, 300);
        let mut src = MmapSource::from_bytes(buf.clone()).unwrap();
        let mut block = RecordBlock::default();
        let mut rebuilt = Vec::new();
        while src.try_next_block(&mut block, 128).unwrap() > 0 {
            assert!(block.len() <= 128);
            for i in 0..block.len() {
                rebuilt.push(TraceRecord::new(
                    ProcId::new(block.procs[i]),
                    block.bytes[i],
                ));
            }
        }
        assert_eq!(rebuilt, t.records());
    }

    #[test]
    fn mmap_rejects_bad_magic_and_version() {
        assert!(matches!(
            MmapSource::from_bytes(b"NOPE\x02\x00\x00\x00".to_vec()).unwrap_err(),
            TraceIoError::BadMagic
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_V2);
        buf.extend_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            MmapSource::from_bytes(buf).unwrap_err(),
            TraceIoError::UnsupportedVersion(9)
        ));
    }

    #[test]
    fn mmap_strict_rejects_corrupt_frame() {
        let t = sample_trace();
        let mut buf = encode(&t, 512);
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let mut src = MmapSource::from_bytes(buf).unwrap();
        let mut err = None;
        loop {
            match src.try_next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(TraceIoError::CorruptFrame { .. })));
    }

    #[test]
    fn mmap_lossy_skips_corrupt_frame_like_v2source() {
        let t = sample_trace();
        let mut buf = encode(&t, 100);
        // Corrupt one payload byte somewhere past the first frame.
        buf[600] ^= 0x55;
        let (mapped, mw) = drain(MmapSource::from_bytes_lossy(buf.clone(), None));
        let (streamed, sw) = drain(V2Source::new_lossy(buf.as_slice(), None).unwrap());
        assert_eq!(mapped, streamed);
        assert_eq!(mw, sw);
        assert_eq!(mw.bad_frames, 1);
    }

    #[test]
    fn mmap_lossy_tallies_varint_defects() {
        // CRC-valid frame whose payload is a single over-long varint.
        let payload = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_V2);
        buf.extend_from_slice(&VERSION_V2.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let (records, w) = drain(MmapSource::from_bytes_lossy(buf.clone(), None));
        assert!(records.is_empty());
        assert_eq!(w.bad_frames, 1);
        assert_eq!(w.varint_defects, 1);
        // varint_defects is a sub-tally: total() counts the frame once.
        assert_eq!(w.total(), 1);
        // The streaming reader agrees.
        let (_, sw) = drain(V2Source::new_lossy(buf.as_slice(), None).unwrap());
        assert_eq!(w, sw);
    }

    #[test]
    fn open_v2_auto_respects_budget() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("tempo_mmap_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("auto_budget.v2");
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &t).unwrap();
        std::fs::write(&path, &buf).unwrap();

        let mapped = open_v2_auto(&path, Some(u64::MAX)).unwrap();
        assert!(mapped.is_mapped());
        let streamed = open_v2_auto(&path, Some(0)).unwrap();
        assert!(!streamed.is_mapped());
        let (a, _) = drain(mapped);
        let (b, _) = drain(streamed);
        assert_eq!(a, b);
        assert_eq!(a, t.records());
    }
}
