//! Observability vocabulary for trace ingestion.
//!
//! Every read pass over a [`TraceSource`](crate::TraceSource) — a pump,
//! a streaming profile pass, a streaming simulation — reports what it
//! pulled to the global [`tempo_obs`] registry under the `trace.*`
//! namespace via [`note_read`]. Counters are cumulative across passes:
//! a two-pass streaming profile of a 1M-record file reads 2M records,
//! and `trace.records_read` says so.

use crate::io::TraceWarnings;

/// Records pulled from trace sources, one count per read pass.
pub const RECORDS_READ: &str = "trace.records_read";
/// Whole v2 frames skipped (truncated, CRC failure, undecodable).
pub const FRAMES_SKIPPED: &str = "trace.frames_skipped";
/// Records dropped during ingestion (bad lines, zero extents, unknown
/// procedures, truncated tails).
pub const RECORDS_DROPPED: &str = "trace.records_dropped";
/// Records repaired by clamping an oversized extent.
pub const RECORDS_CLAMPED: &str = "trace.records_clamped";
/// Container-header defects (mangled magic/version, count mismatches).
pub const HEADERS_MANGLED: &str = "trace.headers_mangled";

/// Reports one completed read pass to the global metric registry:
/// `records` pulled plus every defect tallied in `warnings`.
///
/// Zero-valued defect counters are skipped so clean runs keep a small
/// snapshot; `trace.records_read` is always touched so the metric exists
/// whenever any trace was read.
pub fn note_read(records: u64, warnings: &TraceWarnings) {
    tempo_obs::counter(RECORDS_READ).add(records);
    for (name, count) in [
        (FRAMES_SKIPPED, warnings.bad_frames),
        (
            RECORDS_DROPPED,
            warnings.bad_lines
                + warnings.zero_extent
                + warnings.unknown_proc
                + warnings.truncated_tail,
        ),
        (RECORDS_CLAMPED, warnings.clamped_extent),
        (
            HEADERS_MANGLED,
            warnings.header_mangled + warnings.count_mismatch,
        ),
    ] {
        if count > 0 {
            tempo_obs::counter(name).add(count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_read_accumulates_into_the_global_registry() {
        let before = tempo_obs::snapshot().counter(RECORDS_READ).unwrap_or(0);
        let w = TraceWarnings {
            bad_frames: 2,
            clamped_extent: 1,
            ..TraceWarnings::default()
        };
        note_read(7, &w);
        let after = tempo_obs::snapshot();
        assert_eq!(after.counter(RECORDS_READ).unwrap() - before, 7);
        assert!(after.counter(FRAMES_SKIPPED).unwrap() >= 2);
        assert!(after.counter(RECORDS_CLAMPED).unwrap() >= 1);
    }
}
