//! Chunked binary trace format **v2**: length-delimited frames of
//! varint-encoded records with per-frame CRCs.
//!
//! The v1 format is a single fixed-width record array behind a declared
//! count — simple, but it cannot be validated incrementally and a reader
//! that wants integrity checking must hold the whole trace. Format v2 is
//! built for streaming:
//!
//! ```text
//! +---------------------------------------------------------------+
//! | magic "TMP2" (4) | version u32 LE (= 2)                       |
//! +---------------------------------------------------------------+
//! | frame 0: payload_len u32 | record_count u32 | crc32 u32       |
//! |          payload: record_count × (varint proc, varint bytes)  |
//! +---------------------------------------------------------------+
//! | frame 1: ...                                                  |
//! +---------------------------------------------------------------+
//! | ... until end of input (no trailing count)                    |
//! +---------------------------------------------------------------+
//! ```
//!
//! * **Streamable**: a reader holds one frame (≤ [`MAX_FRAME_PAYLOAD`]
//!   bytes) at a time; end of input at a frame boundary ends the trace, so
//!   no up-front record count is needed and writers can append forever.
//! * **Compact**: records are LEB128 varints, so the common small
//!   procedure-id/extent pairs take 2–4 bytes instead of v1's fixed 8.
//! * **Verifiable and recoverable**: each frame carries a CRC-32 (IEEE) of
//!   its payload. Strict readers fail on the first bad frame
//!   ([`TraceIoError::CorruptFrame`]); lossy readers skip exactly that
//!   frame — the length prefix bounds the damage — and tally it in
//!   [`TraceWarnings::bad_frames`].
//!
//! ```
//! use tempo_program::ProcId;
//! use tempo_trace::{Trace, TraceRecord, TraceSource};
//! use tempo_trace::v2::{read_binary_v2, write_binary_v2, V2Source};
//!
//! let trace = Trace::from_records(vec![TraceRecord::new(ProcId::new(3), 40)]);
//! let mut buf = Vec::new();
//! write_binary_v2(&mut buf, &trace)?;
//! assert_eq!(read_binary_v2(buf.as_slice())?, trace);
//!
//! // Or stream it, one record at a time:
//! let mut src = V2Source::new(buf.as_slice())?;
//! assert_eq!(src.try_next()?, Some(TraceRecord::new(ProcId::new(3), 40)));
//! assert_eq!(src.try_next()?, None);
//! # Ok::<(), tempo_trace::io::TraceIoError>(())
//! ```

use std::io::{Read, Write};

use tempo_program::Program;

use crate::io::{repair_record, ReadMode, TraceIoError, TraceWarnings};
use crate::source::{RecordBlock, TraceSink, TraceSource};
use crate::{Trace, TraceRecord};

/// Magic bytes opening the v2 binary trace format.
pub const MAGIC_V2: [u8; 4] = *b"TMP2";
/// Format version recorded in the v2 header.
pub const VERSION_V2: u32 = 2;
/// Frame header size: `payload_len` + `record_count` + `crc32`.
pub const FRAME_HEADER_LEN: usize = 12;
/// Records per frame the writer targets. Worst-case varint payload is
/// 10 bytes per record, so frames stay under 64 KiB.
pub const DEFAULT_FRAME_RECORDS: usize = 6000;
/// Upper bound on a frame's declared payload length. The length prefix is
/// untrusted input; anything larger is treated as corruption rather than
/// allocated.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 24;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320)
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        #[allow(clippy::cast_possible_truncation)] // i < 256
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data` — the checksum protecting each v2 frame.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// LEB128 varints
// ---------------------------------------------------------------------

fn push_varint(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes one LEB128 u32 from `buf` starting at `*pos`, advancing `*pos`.
/// Returns `None` on truncation or overflow (more than 5 bytes / high bits
/// set past 32).
///
/// The 1- and 2-byte cases — procedure ids and executed extents are almost
/// always small — are unrolled so the common path costs two bounds checks
/// and no loop-carried shift state.
#[inline]
fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let p = *pos;
    let b0 = *buf.get(p)?;
    if b0 & 0x80 == 0 {
        *pos = p + 1;
        return Some(u32::from(b0));
    }
    let b1 = *buf.get(p + 1)?;
    if b1 & 0x80 == 0 {
        *pos = p + 2;
        return Some(u32::from(b0 & 0x7F) | (u32::from(b1) << 7));
    }
    read_varint_long(buf, pos)
}

/// Cold continuation of [`read_varint`] for 3–5-byte encodings. Encodings
/// longer than 5 bytes or carrying bits past 32 are rejected (`None`), never
/// wrapped — a hostile payload must fail the frame, not alias a record.
#[cold]
fn read_varint_long(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let mut value = 0u32;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let low = u32::from(byte & 0x7F);
        if shift == 28 && low > 0x0F {
            return None; // would overflow 32 bits
        }
        if shift > 28 {
            return None; // more than 5 bytes
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Why a CRC-valid frame payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameDecodeDefect {
    /// A record varint was truncated, over-long, or overflowed 32 bits
    /// (also the symptom of a declared record count exceeding the payload).
    Varint,
    /// Payload bytes remained after the declared record count was decoded.
    TrailingBytes,
}

/// Decodes a frame payload of `record_count` varint pairs into parallel
/// `procs`/`bytes` columns (cleared first) — the shared SoA decoder behind
/// both the streaming [`V2Source`] and the zero-copy
/// [`MmapSource`](crate::mmap::MmapSource), so the two paths cannot drift.
pub(crate) fn decode_frame_soa(
    payload: &[u8],
    record_count: usize,
    procs: &mut Vec<u32>,
    bytes: &mut Vec<u32>,
) -> Result<(), FrameDecodeDefect> {
    procs.clear();
    bytes.clear();
    // The preallocation must not trust the header: cap the reservation by
    // what the payload can physically hold (two bytes per record minimum),
    // so a hostile count can never turn into a huge allocation.
    let cap = record_count.min(payload.len() / 2);
    procs.reserve(cap);
    bytes.reserve(cap);
    let mut pos = 0usize;
    for _ in 0..record_count {
        let (Some(proc), Some(extent)) = (
            read_varint(payload, &mut pos),
            read_varint(payload, &mut pos),
        ) else {
            return Err(FrameDecodeDefect::Varint);
        };
        procs.push(proc);
        bytes.push(extent);
    }
    if pos != payload.len() {
        return Err(FrameDecodeDefect::TrailingBytes);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Streaming v2 writer.
///
/// Writes the header on construction, buffers records into frames of
/// [`DEFAULT_FRAME_RECORDS`], and emits each frame with its CRC as it
/// fills. As a [`TraceSink`] it is infallible per the sink contract: I/O
/// errors are latched and surfaced by [`finish`](V2Writer::finish), which
/// must be called to flush the final partial frame.
pub struct V2Writer<W: Write> {
    writer: W,
    payload: Vec<u8>,
    frame_records: u32,
    records_per_frame: usize,
    records: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> V2Writer<W> {
    /// Starts a v2 stream, writing the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn new(w: W) -> Result<Self, TraceIoError> {
        V2Writer::with_frame_records(w, DEFAULT_FRAME_RECORDS)
    }

    /// Starts a v2 stream with a custom frame granularity (min 1 record).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn with_frame_records(mut w: W, records_per_frame: usize) -> Result<Self, TraceIoError> {
        w.write_all(&MAGIC_V2)?;
        w.write_all(&VERSION_V2.to_le_bytes())?;
        Ok(V2Writer {
            writer: w,
            payload: Vec::new(),
            frame_records: 0,
            records_per_frame: records_per_frame.max(1),
            records: 0,
            error: None,
        })
    }

    /// Appends one record, flushing a frame when it fills.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn push(&mut self, record: &TraceRecord) -> Result<(), TraceIoError> {
        push_varint(&mut self.payload, record.proc.index());
        push_varint(&mut self.payload, record.bytes);
        self.frame_records += 1;
        self.records += 1;
        if self.frame_records as usize >= self.records_per_frame {
            self.flush_frame()?;
        }
        Ok(())
    }

    fn flush_frame(&mut self) -> Result<(), TraceIoError> {
        if self.frame_records == 0 {
            return Ok(());
        }
        let len = u32::try_from(self.payload.len()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "frame payload overflow")
        })?;
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(&self.frame_records.to_le_bytes())?;
        self.writer.write_all(&crc32(&self.payload).to_le_bytes())?;
        self.writer.write_all(&self.payload)?;
        self.payload.clear();
        self.frame_records = 0;
        Ok(())
    }

    /// Flushes the final partial frame and returns the writer, or the
    /// first error latched through the [`TraceSink`] path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        if let Some(e) = self.error.take() {
            return Err(e.into());
        }
        self.flush_frame()?;
        Ok(self.writer)
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

impl<W: Write> TraceSink for V2Writer<W> {
    fn accept(&mut self, record: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        if let Err(TraceIoError::Io(e)) = self.push(record) {
            self.error = Some(e);
        }
    }
}

/// Writes a whole trace in the v2 format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_binary_v2<W: Write>(w: W, trace: &Trace) -> Result<(), TraceIoError> {
    let mut writer = V2Writer::new(w)?;
    for r in trace.iter() {
        writer.push(r)?;
    }
    writer.finish()?;
    Ok(())
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Streaming v2 reader, strict or lossy.
///
/// Holds one frame in memory at a time, so memory use is bounded by
/// [`MAX_FRAME_PAYLOAD`] regardless of trace length. Strict readers fail
/// on the first defective frame; lossy readers skip defective frames
/// (tallying [`TraceWarnings::bad_frames`]) and apply the shared per-record
/// repairs (zero extents dropped, unknown procedures dropped and oversized
/// extents clamped when a [`Program`] is supplied).
#[derive(Debug)]
pub struct V2Source<'p, R> {
    reader: R,
    mode: ReadMode,
    program: Option<&'p Program>,
    /// Decoded records of the current frame, drained front to back.
    frame: Vec<TraceRecord>,
    /// SoA decode scratch, reused across frames (see [`decode_frame_soa`]).
    soa_procs: Vec<u32>,
    soa_bytes: Vec<u32>,
    /// Next index to yield from `frame`.
    cursor: usize,
    /// 0-based index of the next frame to read.
    frame_index: u64,
    /// Global index of the next record (strict error reporting).
    record_index: u64,
    warnings: TraceWarnings,
    done: bool,
}

impl<R: Read> V2Source<'static, R> {
    /// Opens a strict streaming reader, validating the header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, bad magic, or an unsupported version.
    pub fn new(mut r: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != MAGIC_V2 {
            return Err(TraceIoError::BadMagic);
        }
        let mut word = [0u8; 4];
        r.read_exact(&mut word)?;
        let version = u32::from_le_bytes(word);
        if version != VERSION_V2 {
            return Err(TraceIoError::UnsupportedVersion(version));
        }
        Ok(V2Source {
            reader: r,
            mode: ReadMode::Strict,
            program: None,
            frame: Vec::new(),
            soa_procs: Vec::new(),
            soa_bytes: Vec::new(),
            cursor: 0,
            frame_index: 0,
            record_index: 0,
            warnings: TraceWarnings::default(),
            done: false,
        })
    }
}

impl<'p, R: Read> V2Source<'p, R> {
    /// Opens a lossy streaming reader: a mangled header is tallied, corrupt
    /// frames are skipped, and per-record defects are repaired against
    /// `program` when given.
    ///
    /// # Errors
    ///
    /// Fails only on genuine I/O errors from the reader.
    pub fn new_lossy(mut r: R, program: Option<&'p Program>) -> Result<Self, TraceIoError> {
        let mut warnings = TraceWarnings::default();
        let mut header = [0u8; 8];
        let filled = crate::io::read_fully(&mut r, &mut header)?;
        let mut done = false;
        if filled < header.len() {
            if filled > 0 {
                warnings.header_mangled += 1;
            }
            done = true;
        } else {
            if header[0..4] != MAGIC_V2 {
                warnings.header_mangled += 1;
            }
            let version = u32::from_le_bytes(header[4..8].try_into().expect("slice is 4 bytes"));
            if version != VERSION_V2 && header[0..4] == MAGIC_V2 {
                warnings.header_mangled += 1;
            }
        }
        Ok(V2Source {
            reader: r,
            mode: ReadMode::Lossy,
            program,
            frame: Vec::new(),
            soa_procs: Vec::new(),
            soa_bytes: Vec::new(),
            cursor: 0,
            frame_index: 0,
            record_index: 0,
            warnings,
            done,
        })
    }

    /// Reads and decodes the next frame into `self.frame`. Returns `false`
    /// at clean end of input. Lossy mode skips corrupt frames (leaving
    /// `self.frame` empty) and reports them via warnings; the caller loops.
    fn load_frame(&mut self) -> Result<bool, TraceIoError> {
        self.frame.clear();
        self.cursor = 0;
        let index = self.frame_index;

        let mut header = [0u8; FRAME_HEADER_LEN];
        let filled = crate::io::read_fully(&mut self.reader, &mut header)?;
        if filled == 0 {
            self.done = true;
            return Ok(false);
        }
        if filled < header.len() {
            return self.frame_defect(index, /* skippable */ false);
        }
        let payload_len = u32::from_le_bytes(header[0..4].try_into().expect("slice is 4 bytes"));
        let record_count = u32::from_le_bytes(header[4..8].try_into().expect("slice is 4 bytes"));
        let crc = u32::from_le_bytes(header[8..12].try_into().expect("slice is 4 bytes"));
        if payload_len > MAX_FRAME_PAYLOAD {
            // The length prefix itself is untrustworthy: resync is
            // impossible, so even lossy readers stop here.
            return self.frame_defect(index, false);
        }
        let mut payload = vec![0u8; payload_len as usize];
        let filled = crate::io::read_fully(&mut self.reader, &mut payload)?;
        if filled < payload.len() {
            return self.frame_defect(index, false);
        }
        self.frame_index += 1;
        if crc32(&payload) != crc {
            return self.frame_defect(index, true);
        }
        // The declared record count is untrusted too: every record takes at
        // least two payload bytes, so a count the payload cannot hold is
        // corruption, not an allocation request.
        if u64::from(record_count) * 2 > payload_len as u64 {
            return self.frame_defect(index, true);
        }

        // Decode the whole frame up front so a malformed record invalidates
        // the frame atomically (the CRC passed, so this only fires on
        // writer bugs or collisions).
        if let Err(defect) = decode_frame_soa(
            &payload,
            record_count as usize,
            &mut self.soa_procs,
            &mut self.soa_bytes,
        ) {
            if self.mode == ReadMode::Lossy && defect == FrameDecodeDefect::Varint {
                self.warnings.varint_defects += 1;
            }
            return self.frame_defect(index, true);
        }
        for i in 0..self.soa_procs.len() {
            let (proc, bytes) = (self.soa_procs[i], self.soa_bytes[i]);
            match self.mode {
                ReadMode::Strict => {
                    if bytes == 0 {
                        self.done = true;
                        return Err(TraceIoError::ZeroExtent {
                            index: self.record_index + self.frame.len() as u64,
                        });
                    }
                    self.frame
                        .push(TraceRecord::new(tempo_program::ProcId::new(proc), bytes));
                }
                ReadMode::Lossy => {
                    if let Some(r) = repair_record(proc, bytes, self.program, &mut self.warnings) {
                        self.frame.push(r);
                    } else {
                        // Dropped records still advance the strict record
                        // index space; they are counted per-defect instead.
                    }
                }
            }
        }
        Ok(true)
    }

    /// Handles a defective frame: strict fails, lossy tallies. `skippable`
    /// frames were fully consumed (bad CRC / bad decode) so the stream can
    /// continue; unskippable ones (truncation, absurd length) end it.
    fn frame_defect(&mut self, index: u64, skippable: bool) -> Result<bool, TraceIoError> {
        if self.mode == ReadMode::Strict {
            self.done = true;
            return Err(TraceIoError::CorruptFrame { frame: index });
        }
        self.warnings.bad_frames += 1;
        if !skippable {
            self.done = true;
        }
        Ok(!self.done)
    }
}

impl<R: Read> TraceSource for V2Source<'_, R> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        loop {
            if let Some(r) = self.frame.get(self.cursor) {
                self.cursor += 1;
                self.record_index += 1;
                return Ok(Some(*r));
            }
            if self.done {
                return Ok(None);
            }
            // Loop: a lossy skip yields an empty frame buffer.
            self.load_frame()?;
        }
    }

    fn warnings(&self) -> TraceWarnings {
        self.warnings
    }

    fn try_next_block(
        &mut self,
        block: &mut RecordBlock,
        max: usize,
    ) -> Result<usize, TraceIoError> {
        block.clear();
        if max == 0 {
            return Ok(0);
        }
        loop {
            while block.len() < max {
                let Some(r) = self.frame.get(self.cursor) else {
                    break;
                };
                self.cursor += 1;
                self.record_index += 1;
                block.push(r.proc.index(), r.bytes);
            }
            // Frame-granular: a drained frame ends the block even short of
            // `max`, so blocks line up with decode units.
            if !block.is_empty() || self.done {
                return Ok(block.len());
            }
            self.load_frame()?;
        }
    }
}

/// Reads a whole v2 trace strictly.
///
/// # Errors
///
/// Fails on I/O errors, bad magic, unsupported versions, corrupt frames,
/// or zero-extent records.
pub fn read_binary_v2<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let mut source = V2Source::new(r)?;
    let mut trace = Trace::new();
    while let Some(rec) = source.try_next()? {
        trace.push(rec);
    }
    Ok(trace)
}

// ---------------------------------------------------------------------
// Standalone frame decode (daemon ingestion)
// ---------------------------------------------------------------------

/// Why [`decode_frame`] rejected a standalone frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDefect {
    /// Shorter than a frame header, or the payload falls short of the
    /// declared length.
    Truncated,
    /// Bytes remain past the declared payload length.
    TrailingBytes,
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized,
    /// The payload does not match the frame's CRC-32.
    Checksum,
    /// A CRC-valid payload that does not decode: a record count the
    /// payload cannot hold, defective varints, leftover payload bytes, or
    /// a zero-extent record (which the strict readers also reject).
    Malformed,
}

impl std::fmt::Display for FrameDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            FrameDefect::Truncated => "frame truncated",
            FrameDefect::TrailingBytes => "bytes past the declared payload",
            FrameDefect::Oversized => "declared payload over the frame bound",
            FrameDefect::Checksum => "frame CRC mismatch",
            FrameDefect::Malformed => "frame payload does not decode",
        };
        f.write_str(what)
    }
}

impl std::error::Error for FrameDefect {}

/// Decodes one self-contained v2 frame — the 12-byte header plus payload,
/// exactly as [`V2Writer`] emits it — applying every validation the
/// streaming readers apply: length bounds, CRC, record-count
/// plausibility, varint integrity, and the strict zero-extent rule.
///
/// This is the ingestion primitive for socket peers (the `tempod`
/// daemon): a client ships whole frames, each frame is accepted or
/// rejected as a unit, and a defective frame cannot poison the session —
/// the caller tallies it and moves on, exactly like a lossy reader
/// skipping a bad frame. Records decoded from accepted frames are
/// byte-equivalent to what [`V2Source`] yields for the same stream.
///
/// # Errors
///
/// Returns the [`FrameDefect`] describing the first validation failure.
pub fn decode_frame(frame: &[u8]) -> Result<Vec<TraceRecord>, FrameDefect> {
    if frame.len() < FRAME_HEADER_LEN {
        return Err(FrameDefect::Truncated);
    }
    let payload_len = u32::from_le_bytes(frame[0..4].try_into().expect("slice is 4 bytes"));
    let record_count = u32::from_le_bytes(frame[4..8].try_into().expect("slice is 4 bytes"));
    let crc = u32::from_le_bytes(frame[8..12].try_into().expect("slice is 4 bytes"));
    if payload_len > MAX_FRAME_PAYLOAD {
        return Err(FrameDefect::Oversized);
    }
    let body = &frame[FRAME_HEADER_LEN..];
    let declared = payload_len as usize;
    if body.len() < declared {
        return Err(FrameDefect::Truncated);
    }
    if body.len() > declared {
        return Err(FrameDefect::TrailingBytes);
    }
    if crc32(body) != crc {
        return Err(FrameDefect::Checksum);
    }
    if u64::from(record_count) * 2 > u64::from(payload_len) {
        return Err(FrameDefect::Malformed);
    }
    let mut procs = Vec::new();
    let mut bytes = Vec::new();
    decode_frame_soa(body, record_count as usize, &mut procs, &mut bytes)
        .map_err(|_| FrameDefect::Malformed)?;
    let mut records = Vec::with_capacity(procs.len());
    for (&proc, &extent) in procs.iter().zip(&bytes) {
        if extent == 0 {
            return Err(FrameDefect::Malformed);
        }
        records.push(TraceRecord::new(tempo_program::ProcId::new(proc), extent));
    }
    Ok(records)
}

// ---------------------------------------------------------------------
// Frame scan (shard planning)
// ---------------------------------------------------------------------

/// One frame's position and size as reported by [`scan_frames`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameEntry {
    /// Byte offset of the frame header from the start of the stream
    /// (the first frame sits right after the 8-byte file header).
    pub offset: u64,
    /// Declared payload length in bytes.
    pub payload_len: u32,
    /// Declared record count.
    pub records: u32,
}

/// Scans a v2 stream's frame structure without decoding any records.
///
/// Reads each 12-byte frame header and discards the payload, yielding one
/// [`FrameEntry`] per frame. Sharded profiling uses this to split a trace
/// into record ranges aligned to frame boundaries. The scan is strict about
/// structure (magic, version, payload bounds, truncation) but does **not**
/// verify CRCs or decode varints — a later reading pass still validates
/// frame contents.
///
/// # Errors
///
/// Fails on I/O errors, bad magic, an unsupported version, a declared
/// payload over [`MAX_FRAME_PAYLOAD`], or a truncated frame.
pub fn scan_frames<R: Read>(mut r: R) -> Result<Vec<FrameEntry>, TraceIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC_V2 {
        return Err(TraceIoError::BadMagic);
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != VERSION_V2 {
        return Err(TraceIoError::UnsupportedVersion(version));
    }

    let mut frames = Vec::new();
    let mut offset = 8u64;
    let mut scratch = vec![0u8; 64 * 1024];
    loop {
        let frame_index = frames.len() as u64;
        let mut header = [0u8; FRAME_HEADER_LEN];
        let filled = crate::io::read_fully(&mut r, &mut header)?;
        if filled == 0 {
            return Ok(frames); // clean end of input at a frame boundary
        }
        if filled < header.len() {
            return Err(TraceIoError::CorruptFrame { frame: frame_index });
        }
        let payload_len = u32::from_le_bytes(header[0..4].try_into().expect("slice is 4 bytes"));
        let records = u32::from_le_bytes(header[4..8].try_into().expect("slice is 4 bytes"));
        if payload_len > MAX_FRAME_PAYLOAD || u64::from(records) * 2 > u64::from(payload_len) {
            return Err(TraceIoError::CorruptFrame { frame: frame_index });
        }
        // Skip the payload without holding it: plain `Read` has no seek,
        // so drain through a bounded scratch buffer.
        let mut remaining = payload_len as usize;
        while remaining > 0 {
            let want = remaining.min(scratch.len());
            let got = crate::io::read_fully(&mut r, &mut scratch[..want])?;
            if got == 0 {
                return Err(TraceIoError::CorruptFrame { frame: frame_index });
            }
            remaining -= got;
        }
        frames.push(FrameEntry {
            offset,
            payload_len,
            records,
        });
        offset += FRAME_HEADER_LEN as u64 + u64::from(payload_len);
    }
}

/// Reads a whole v2 trace, recovering from corruption instead of failing.
///
/// # Errors
///
/// Fails only on genuine I/O errors from the reader.
pub fn read_binary_v2_lossy<R: Read>(
    r: R,
    program: Option<&Program>,
) -> Result<(Trace, TraceWarnings), TraceIoError> {
    let mut source = V2Source::new_lossy(r, program)?;
    let mut trace = Trace::new();
    while let Some(rec) = source.try_next()? {
        trace.push(rec);
    }
    Ok((trace, source.warnings()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_program::ProcId;

    fn sample_trace() -> Trace {
        Trace::from_records(vec![
            TraceRecord::new(ProcId::new(0), 100),
            TraceRecord::new(ProcId::new(5), 32),
            TraceRecord::new(ProcId::new(0), 1),
            TraceRecord::new(ProcId::new(1_000_000), u32::MAX),
        ])
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_roundtrips() {
        for v in [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v), "value {v}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 6-byte varint: too long for u32.
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut pos),
            None
        );
        // 5th byte with bits above 32.
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80, 0x80, 0x80, 0x80, 0x7F], &mut pos), None);
        // Truncated continuation.
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None);
    }

    #[test]
    fn v2_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &t).unwrap();
        assert_eq!(&buf[0..4], b"TMP2");
        assert_eq!(read_binary_v2(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn v2_roundtrip_empty() {
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &Trace::new()).unwrap();
        assert_eq!(buf.len(), 8); // header only, no frames
        assert!(read_binary_v2(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn v2_roundtrip_across_many_frames() {
        let records: Vec<_> = (0..20_000)
            .map(|i| TraceRecord::new(ProcId::new(i % 97), (i % 1000) + 1))
            .collect();
        let t = Trace::from_records(records);
        let mut buf = Vec::new();
        let mut w = V2Writer::with_frame_records(&mut buf, 512).unwrap();
        for r in t.iter() {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        assert_eq!(read_binary_v2(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn v2_is_denser_than_v1_for_small_ids() {
        let records: Vec<_> = (0..10_000)
            .map(|i| TraceRecord::new(ProcId::new(i % 50), (i % 200) + 1))
            .collect();
        let t = Trace::from_records(records);
        let mut v1 = Vec::new();
        crate::io::write_binary(&mut v1, &t).unwrap();
        let mut v2 = Vec::new();
        write_binary_v2(&mut v2, &t).unwrap();
        assert!(
            v2.len() * 2 < v1.len(),
            "v2 ({}) should be well under half of v1 ({})",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn v2_rejects_bad_magic_and_version() {
        assert!(matches!(
            V2Source::new(&b"NOPE\x02\x00\x00\x00"[..]).unwrap_err(),
            TraceIoError::BadMagic
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_V2);
        buf.extend_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            V2Source::new(buf.as_slice()).unwrap_err(),
            TraceIoError::UnsupportedVersion(9)
        ));
    }

    #[test]
    fn v2_strict_rejects_corrupt_frame() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &t).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF; // flip payload bits -> CRC mismatch
        assert!(matches!(
            read_binary_v2(buf.as_slice()).unwrap_err(),
            TraceIoError::CorruptFrame { frame: 0 }
        ));
    }

    #[test]
    fn v2_strict_rejects_truncated_payload() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_binary_v2(buf.as_slice()).unwrap_err(),
            TraceIoError::CorruptFrame { frame: 0 }
        ));
    }

    #[test]
    fn v2_lossy_skips_corrupt_frame_and_keeps_the_rest() {
        // Three single-record frames; corrupt the middle one.
        let t = Trace::from_records(vec![
            TraceRecord::new(ProcId::new(1), 10),
            TraceRecord::new(ProcId::new(2), 20),
            TraceRecord::new(ProcId::new(3), 30),
        ]);
        let mut buf = Vec::new();
        let mut w = V2Writer::with_frame_records(&mut buf, 1).unwrap();
        for r in t.iter() {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        // Frame layout: header(8) + 3 × (12-byte frame header + 2-byte payload).
        let mid_payload = 8 + 14 + 12; // first byte of frame 1's payload
        buf[mid_payload] ^= 0x55;
        let (back, w) = read_binary_v2_lossy(buf.as_slice(), None).unwrap();
        assert_eq!(w.bad_frames, 1);
        assert_eq!(
            back.records(),
            &[
                TraceRecord::new(ProcId::new(1), 10),
                TraceRecord::new(ProcId::new(3), 30),
            ]
        );
    }

    #[test]
    fn v2_lossy_stops_at_truncated_tail() {
        let t = sample_trace();
        let mut buf = Vec::new();
        let mut w = V2Writer::with_frame_records(&mut buf, 2).unwrap();
        for r in t.iter() {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        buf.truncate(buf.len() - 1); // clip the final frame's payload
        let (back, w) = read_binary_v2_lossy(buf.as_slice(), None).unwrap();
        assert_eq!(w.bad_frames, 1);
        assert_eq!(back.records(), &t.records()[..2]);
    }

    #[test]
    fn v2_lossy_tolerates_mangled_header() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &t).unwrap();
        buf[0] = b'X';
        let (back, w) = read_binary_v2_lossy(buf.as_slice(), None).unwrap();
        assert_eq!(w.header_mangled, 1);
        assert_eq!(back, t);
    }

    #[test]
    fn v2_lossy_repairs_records_against_program() {
        let p = Program::builder()
            .procedure("a", 64)
            .procedure("b", 32)
            .build()
            .unwrap();
        let t = Trace::from_records(vec![
            TraceRecord::new(ProcId::new(0), 10),
            TraceRecord::new(ProcId::new(99), 10),  // unknown
            TraceRecord::new(ProcId::new(1), 5000), // oversized
        ]);
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &t).unwrap();
        let (back, w) = read_binary_v2_lossy(buf.as_slice(), Some(&p)).unwrap();
        assert_eq!(w.unknown_proc, 1);
        assert_eq!(w.clamped_extent, 1);
        assert_eq!(back.len(), 2);
        back.validate(&p).unwrap();
    }

    #[test]
    fn v2_strict_rejects_zero_extent() {
        // Hand-build a frame with a zero-extent record (writer can't).
        let mut payload = Vec::new();
        push_varint(&mut payload, 7);
        push_varint(&mut payload, 0);
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_V2);
        buf.extend_from_slice(&VERSION_V2.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        assert!(matches!(
            read_binary_v2(buf.as_slice()).unwrap_err(),
            TraceIoError::ZeroExtent { index: 0 }
        ));
        // Lossy drops it instead.
        let (back, w) = read_binary_v2_lossy(buf.as_slice(), None).unwrap();
        assert!(back.is_empty());
        assert_eq!(w.zero_extent, 1);
    }

    #[test]
    fn v2_hostile_record_count_cannot_force_allocation() {
        // A frame whose header declares ~4 billion records over a tiny
        // (CRC-valid) payload. The count check rejects it, and the decode
        // preallocation is clamped by payload size — a hostile header must
        // never become a multi-gigabyte `Vec::with_capacity`. Regression
        // test for the unclamped `with_capacity(record_count)` bug.
        let mut payload = Vec::new();
        push_varint(&mut payload, 7);
        push_varint(&mut payload, 1);
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_V2);
        buf.extend_from_slice(&VERSION_V2.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile count
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        // Strict: the frame is corrupt.
        assert!(matches!(
            read_binary_v2(buf.as_slice()).unwrap_err(),
            TraceIoError::CorruptFrame { frame: 0 }
        ));
        // Lossy: the frame is skipped (it was fully consumed), and a
        // valid frame after it still decodes.
        let mut good = Vec::new();
        push_varint(&mut good, 3);
        push_varint(&mut good, 42);
        buf.extend_from_slice(&(good.len() as u32).to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&crc32(&good).to_le_bytes());
        buf.extend_from_slice(&good);
        let (back, w) = read_binary_v2_lossy(buf.as_slice(), None).unwrap();
        assert_eq!(w.bad_frames, 1);
        assert_eq!(
            back,
            Trace::from_records(vec![TraceRecord::new(ProcId::new(3), 42)])
        );
    }

    #[test]
    fn v2_overdeclared_count_within_bound_is_a_frame_defect() {
        // record_count passes the `count * 2 <= payload_len` sanity check
        // but exceeds what the payload actually holds: decode must fail
        // the frame, not read out of bounds or trust the reservation.
        let mut payload = Vec::new();
        push_varint(&mut payload, 1);
        push_varint(&mut payload, 10);
        push_varint(&mut payload, 2);
        push_varint(&mut payload, 20); // 2 real records, 8 bytes
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_V2);
        buf.extend_from_slice(&VERSION_V2.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&4u32.to_le_bytes()); // declares 4 records
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        assert!(matches!(
            read_binary_v2(buf.as_slice()).unwrap_err(),
            TraceIoError::CorruptFrame { frame: 0 }
        ));
        let (back, w) = read_binary_v2_lossy(buf.as_slice(), None).unwrap();
        assert!(back.is_empty());
        assert_eq!(w.bad_frames, 1);
    }

    #[test]
    fn v2_lossy_rejects_absurd_payload_length() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_V2);
        buf.extend_from_slice(&VERSION_V2.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // payload_len
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let (back, w) = read_binary_v2_lossy(buf.as_slice(), None).unwrap();
        assert!(back.is_empty());
        assert_eq!(w.bad_frames, 1);
        assert!(matches!(
            read_binary_v2(&buf[..]).unwrap_err(),
            TraceIoError::CorruptFrame { frame: 0 }
        ));
    }

    #[test]
    fn decode_frame_roundtrips_writer_frames() {
        let t = sample_trace();
        let mut buf = Vec::new();
        let mut w = V2Writer::with_frame_records(&mut buf, 2).unwrap();
        for r in t.iter() {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        // Slice each frame out via the scan and decode it standalone.
        let frames = scan_frames(buf.as_slice()).unwrap();
        let mut back = Vec::new();
        for f in &frames {
            let start = usize::try_from(f.offset).unwrap();
            let end = start + FRAME_HEADER_LEN + f.payload_len as usize;
            back.extend(decode_frame(&buf[start..end]).unwrap());
        }
        assert_eq!(back, t.records());
    }

    #[test]
    fn decode_frame_rejects_every_defect_class() {
        let mut payload = Vec::new();
        push_varint(&mut payload, 7);
        push_varint(&mut payload, 9);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&1u32.to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert!(decode_frame(&frame).is_ok());

        assert_eq!(decode_frame(&frame[..8]), Err(FrameDefect::Truncated));
        assert_eq!(
            decode_frame(&frame[..frame.len() - 1]),
            Err(FrameDefect::Truncated)
        );
        let mut long = frame.clone();
        long.push(0);
        assert_eq!(decode_frame(&long), Err(FrameDefect::TrailingBytes));

        let mut oversized = frame.clone();
        oversized[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&oversized), Err(FrameDefect::Oversized));

        let mut flipped = frame.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(decode_frame(&flipped), Err(FrameDefect::Checksum));

        // Hostile record count over a valid payload.
        let mut hostile = frame.clone();
        hostile[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&hostile), Err(FrameDefect::Malformed));

        // Zero-extent record (CRC-valid): rejected like the strict reader.
        let mut zpayload = Vec::new();
        push_varint(&mut zpayload, 7);
        push_varint(&mut zpayload, 0);
        let mut zframe = Vec::new();
        zframe.extend_from_slice(&(zpayload.len() as u32).to_le_bytes());
        zframe.extend_from_slice(&1u32.to_le_bytes());
        zframe.extend_from_slice(&crc32(&zpayload).to_le_bytes());
        zframe.extend_from_slice(&zpayload);
        assert_eq!(decode_frame(&zframe), Err(FrameDefect::Malformed));
    }

    #[test]
    fn scan_frames_reports_offsets_and_record_counts() {
        let records: Vec<_> = (0..25)
            .map(|i| TraceRecord::new(ProcId::new(i % 5), i + 1))
            .collect();
        let t = Trace::from_records(records);
        let mut buf = Vec::new();
        let mut w = V2Writer::with_frame_records(&mut buf, 10).unwrap();
        for r in t.iter() {
            w.push(r).unwrap();
        }
        w.finish().unwrap();

        let frames = scan_frames(buf.as_slice()).unwrap();
        assert_eq!(frames.len(), 3); // 10 + 10 + 5
        assert_eq!(frames[0].offset, 8);
        assert_eq!(frames.iter().map(|f| u64::from(f.records)).sum::<u64>(), 25);
        assert_eq!(frames[2].records, 5);
        // Offsets chain: each frame starts where the previous one ended.
        for pair in frames.windows(2) {
            assert_eq!(
                pair[1].offset,
                pair[0].offset + FRAME_HEADER_LEN as u64 + u64::from(pair[0].payload_len)
            );
        }
        // Total structure accounts for every byte of the stream.
        let last = frames.last().unwrap();
        assert_eq!(
            last.offset + FRAME_HEADER_LEN as u64 + u64::from(last.payload_len),
            buf.len() as u64
        );
    }

    #[test]
    fn scan_frames_empty_trace_yields_no_frames() {
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &Trace::new()).unwrap();
        assert!(scan_frames(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn scan_frames_rejects_structural_damage() {
        assert!(matches!(
            scan_frames(&b"NOPE\x02\x00\x00\x00"[..]).unwrap_err(),
            TraceIoError::BadMagic
        ));

        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &t).unwrap();
        // Truncated payload.
        let mut clipped = buf.clone();
        clipped.truncate(clipped.len() - 2);
        assert!(matches!(
            scan_frames(clipped.as_slice()).unwrap_err(),
            TraceIoError::CorruptFrame { frame: 0 }
        ));
        // Absurd declared payload length.
        let mut hostile = buf.clone();
        hostile[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            scan_frames(hostile.as_slice()).unwrap_err(),
            TraceIoError::CorruptFrame { frame: 0 }
        ));
    }

    #[test]
    fn v2_writer_as_sink_latches_errors() {
        /// Writer that fails after a fixed byte budget.
        struct Failing(usize);
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 < buf.len() {
                    return Err(std::io::Error::other("disk full"));
                }
                self.0 -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = V2Writer::with_frame_records(Failing(16), 1).unwrap();
        for _ in 0..4 {
            TraceSink::accept(&mut w, &TraceRecord::new(ProcId::new(1), 1));
        }
        assert!(w.finish().is_err());
    }
}
