//! TMP2 fixture builders shared by integration tests and the bench
//! harness.
//!
//! Several consumers need the same two moves: freeze a [`Trace`] into an
//! in-memory v2 container at a chosen frame granularity (so corruption
//! and framing tests control where frame boundaries fall), or drain a
//! [`TraceSource`] into a v2 file on disk without materializing it (so
//! scale experiments can build multi-gigabyte fixtures in constant
//! memory). Each used to hand-roll the `V2Writer` + [`pump`] dance;
//! drift between the copies is exactly how a fixture stops matching the
//! format the readers are tested against. This module is compiled
//! unconditionally — not `cfg(test)` — because the bench crate consumes
//! it from ordinary (non-test) experiment code.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::io::TraceIoError;
use crate::source::{pump, MemorySource, TraceSource};
use crate::v2::V2Writer;
use crate::Trace;

/// Serializes `trace` into an in-memory TMP2 container with
/// `frame_records` records per frame.
///
/// # Errors
///
/// Propagates I/O errors from the in-memory writer (allocation-failure
/// territory; callers in tests typically `unwrap`).
pub fn v2_bytes(trace: &Trace, frame_records: usize) -> Result<Vec<u8>, TraceIoError> {
    let mut buf = Vec::new();
    let mut writer = V2Writer::with_frame_records(&mut buf, frame_records)?;
    pump(&mut MemorySource::new(trace), &mut writer)?;
    writer.finish()?;
    Ok(buf)
}

/// Drains `source` into a TMP2 container at `path` (default frame
/// granularity), returning the number of records written. The source is
/// consumed record by record, so nothing is materialized.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file and read
/// errors from the source.
pub fn write_v2_file<S: TraceSource + ?Sized>(
    path: &Path,
    source: &mut S,
) -> Result<u64, TraceIoError> {
    let file = BufWriter::new(File::create(path)?);
    let mut writer = V2Writer::new(file)?;
    let summary = pump(source, &mut writer)?;
    writer.finish()?.flush()?;
    Ok(summary.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::v2::read_binary_v2;
    use crate::TraceRecord;
    use tempo_program::ProcId;

    fn sample() -> Trace {
        Trace::from_records(
            (0..25)
                .map(|i| TraceRecord::new(ProcId::new(i % 4), 16 + i))
                .collect(),
        )
    }

    #[test]
    fn v2_bytes_round_trips() {
        let trace = sample();
        let bytes = v2_bytes(&trace, 7).unwrap();
        assert_eq!(read_binary_v2(bytes.as_slice()).unwrap(), trace);
    }

    #[test]
    fn write_v2_file_round_trips_and_counts() {
        let trace = sample();
        let path = std::env::temp_dir().join(format!("tempo_testkit_{}.v2", std::process::id()));
        let written = write_v2_file(&path, &mut MemorySource::new(&trace)).unwrap();
        assert_eq!(written, trace.len() as u64);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(read_binary_v2(bytes.as_slice()).unwrap(), trace);
    }
}
