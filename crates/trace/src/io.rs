//! Trace serialization.
//!
//! Two formats are provided:
//!
//! * a compact, versioned **binary** format (`TMPO` magic, little-endian
//!   fixed-width records) for large traces, and
//! * a **text** format (one `proc_index bytes` pair per line, `#` comments)
//!   for hand-written fixtures and debugging.
//!
//! Both round-trip exactly.
//!
//! ```
//! use tempo_program::ProcId;
//! use tempo_trace::{Trace, TraceRecord};
//! use tempo_trace::io::{read_binary, write_binary};
//!
//! let trace = Trace::from_records(vec![TraceRecord::new(ProcId::new(3), 40)]);
//! let mut buf = Vec::new();
//! write_binary(&mut buf, &trace)?;
//! let back = read_binary(&mut buf.as_slice())?;
//! assert_eq!(back, trace);
//! # Ok::<(), tempo_trace::io::TraceIoError>(())
//! ```

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Read, Write};

use tempo_program::ProcId;

use crate::{Trace, TraceRecord};

/// Magic bytes opening the binary trace format.
pub const MAGIC: [u8; 4] = *b"TMPO";
/// Current binary format version.
pub const VERSION: u32 = 1;

/// Errors produced while reading or writing traces.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the `TMPO` magic.
    BadMagic,
    /// The input declares an unsupported format version.
    UnsupportedVersion(u32),
    /// The input ended before the declared record count was read.
    Truncated {
        /// Records expected per the header.
        expected: u64,
        /// Records actually read.
        found: u64,
    },
    /// A text-format line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A record carries a zero byte extent, which no valid trace contains.
    ZeroExtent {
        /// 0-based record index.
        index: u64,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadMagic => write!(f, "input is not a tempo binary trace"),
            TraceIoError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceIoError::Truncated { expected, found } => {
                write!(
                    f,
                    "trace truncated: expected {expected} records, found {found}"
                )
            }
            TraceIoError::BadLine { line } => write!(f, "malformed trace text at line {line}"),
            TraceIoError::ZeroExtent { index } => {
                write!(f, "record {index} has a zero byte extent")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace in the binary format.
///
/// A `&mut` reference to any writer can be passed.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_binary<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    // Buffer records in 64 KiB blocks to keep syscall counts low for large
    // traces without requiring the caller to wrap the writer.
    let mut buf = Vec::with_capacity(64 * 1024);
    for r in trace.iter() {
        buf.extend_from_slice(&r.proc.index().to_le_bytes());
        buf.extend_from_slice(&r.bytes.to_le_bytes());
        if buf.len() >= 64 * 1024 - 8 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a trace in the binary format.
///
/// A `&mut` reference to any reader can be passed.
///
/// # Errors
///
/// Fails on I/O errors, bad magic, unsupported versions, truncation, or
/// zero-extent records.
pub fn read_binary<R: Read>(mut r: R) -> Result<Trace, TraceIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != VERSION {
        return Err(TraceIoError::UnsupportedVersion(version));
    }
    let mut dword = [0u8; 8];
    r.read_exact(&mut dword)?;
    let count = u64::from_le_bytes(dword);
    let mut records = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
    let mut rec = [0u8; 8];
    for i in 0..count {
        if let Err(e) = r.read_exact(&mut rec) {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                return Err(TraceIoError::Truncated {
                    expected: count,
                    found: i,
                });
            }
            return Err(e.into());
        }
        let proc = u32::from_le_bytes(rec[0..4].try_into().expect("slice is 4 bytes"));
        let bytes = u32::from_le_bytes(rec[4..8].try_into().expect("slice is 4 bytes"));
        if bytes == 0 {
            return Err(TraceIoError::ZeroExtent { index: i });
        }
        records.push(TraceRecord::new(ProcId::new(proc), bytes));
    }
    Ok(Trace::from_records(records))
}

/// Writes a trace in the text format: one `proc_index bytes` pair per line.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_text<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    for r in trace.iter() {
        writeln!(w, "{} {}", r.proc.index(), r.bytes)?;
    }
    Ok(())
}

/// Reads a trace in the text format. Blank lines and lines starting with `#`
/// are ignored.
///
/// # Errors
///
/// Fails on I/O errors, unparsable lines, or zero byte extents.
pub fn read_text<R: BufRead>(r: R) -> Result<Trace, TraceIoError> {
    let mut records = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(p), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(TraceIoError::BadLine { line: lineno + 1 });
        };
        let proc: u32 = p
            .parse()
            .map_err(|_| TraceIoError::BadLine { line: lineno + 1 })?;
        let bytes: u32 = b
            .parse()
            .map_err(|_| TraceIoError::BadLine { line: lineno + 1 })?;
        if bytes == 0 {
            return Err(TraceIoError::ZeroExtent {
                index: records.len() as u64,
            });
        }
        records.push(TraceRecord::new(ProcId::new(proc), bytes));
    }
    Ok(Trace::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_records(vec![
            TraceRecord::new(ProcId::new(0), 100),
            TraceRecord::new(ProcId::new(5), 32),
            TraceRecord::new(ProcId::new(0), 1),
            TraceRecord::new(ProcId::new(1_000_000), u32::MAX),
        ])
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        assert_eq!(&buf[0..4], b"TMPO");
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_roundtrip_empty() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn binary_large_trace_crosses_buffer_boundary() {
        let records: Vec<_> = (0..20_000)
            .map(|i| TraceRecord::new(ProcId::new(i % 97), (i % 1000) + 1))
            .collect();
        let t = Trace::from_records(records);
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
    }

    #[test]
    fn binary_rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::UnsupportedVersion(99)));
    }

    #[test]
    fn binary_detects_truncation() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 4);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::Truncated {
                expected: 4,
                found: 3
            }
        ));
    }

    #[test]
    fn binary_rejects_zero_extent() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::ZeroExtent { index: 0 }));
    }

    #[test]
    fn text_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_text(&mut buf, &t).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let src = "# header\n\n0 10\n   \n# mid\n1 20\n";
        let t = read_text(src.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1], TraceRecord::new(ProcId::new(1), 20));
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(
            read_text("0 10\nhello world extra\n".as_bytes()).unwrap_err(),
            TraceIoError::BadLine { line: 2 }
        ));
        assert!(matches!(
            read_text("0\n".as_bytes()).unwrap_err(),
            TraceIoError::BadLine { line: 1 }
        ));
        assert!(matches!(
            read_text("0 0\n".as_bytes()).unwrap_err(),
            TraceIoError::ZeroExtent { index: 0 }
        ));
    }

    #[test]
    fn error_display_is_useful() {
        assert!(TraceIoError::BadMagic.to_string().contains("binary trace"));
        assert!(TraceIoError::UnsupportedVersion(3)
            .to_string()
            .contains('3'));
        assert!(TraceIoError::BadLine { line: 9 }.to_string().contains('9'));
    }
}
