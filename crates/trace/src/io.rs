//! Trace serialization.
//!
//! Two formats are provided:
//!
//! * a compact, versioned **binary** format (`TMPO` magic, little-endian
//!   fixed-width records) for large traces, and
//! * a **text** format (one `proc_index bytes` pair per line, `#` comments)
//!   for hand-written fixtures and debugging.
//!
//! Both round-trip exactly.
//!
//! ```
//! use tempo_program::ProcId;
//! use tempo_trace::{Trace, TraceRecord};
//! use tempo_trace::io::{read_binary, write_binary};
//!
//! let trace = Trace::from_records(vec![TraceRecord::new(ProcId::new(3), 40)]);
//! let mut buf = Vec::new();
//! write_binary(&mut buf, &trace)?;
//! let back = read_binary(&mut buf.as_slice())?;
//! assert_eq!(back, trace);
//! # Ok::<(), tempo_trace::io::TraceIoError>(())
//! ```

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Read, Seek, SeekFrom, Write};

use tempo_program::{ProcId, Program};

use crate::source::TraceSource;
use crate::{Trace, TraceRecord};

/// Magic bytes opening the binary trace format.
pub const MAGIC: [u8; 4] = *b"TMPO";
/// Current binary format version.
pub const VERSION: u32 = 1;

/// Preallocation ceiling (records) applied to the header's declared
/// count. The count is untrusted input — a mangled header could declare
/// `u64::MAX` records and turn a 24-byte file into an allocation abort —
/// so readers reserve at most this much up front and let the vector grow
/// normally past it. [`crate::TraceBuilder::with_capacity`] applies the
/// same ceiling to caller-declared lengths.
pub(crate) const PREALLOC_CAP: u64 = 1 << 20;

/// Errors produced while reading or writing traces.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the `TMPO` magic.
    BadMagic,
    /// The input declares an unsupported format version.
    UnsupportedVersion(u32),
    /// The input ended before the declared record count was read.
    Truncated {
        /// Records expected per the header.
        expected: u64,
        /// Records actually read.
        found: u64,
    },
    /// A text-format line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A record carries a zero byte extent, which no valid trace contains.
    ZeroExtent {
        /// 0-based record index.
        index: u64,
    },
    /// A v2 frame failed validation: truncated header or payload, CRC
    /// mismatch, or a record that does not decode.
    CorruptFrame {
        /// 0-based frame index.
        frame: u64,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadMagic => write!(f, "input is not a tempo binary trace"),
            TraceIoError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceIoError::Truncated { expected, found } => {
                write!(
                    f,
                    "trace truncated: expected {expected} records, found {found}"
                )
            }
            TraceIoError::BadLine { line } => write!(f, "malformed trace text at line {line}"),
            TraceIoError::ZeroExtent { index } => {
                write!(f, "record {index} has a zero byte extent")
            }
            TraceIoError::CorruptFrame { frame } => {
                write!(
                    f,
                    "frame {frame} is corrupt (truncated, bad CRC, or undecodable)"
                )
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace in the binary format.
///
/// A `&mut` reference to any writer can be passed.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_binary<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    // Buffer records in 64 KiB blocks to keep syscall counts low for large
    // traces without requiring the caller to wrap the writer.
    let mut buf = Vec::with_capacity(64 * 1024);
    for r in trace.iter() {
        buf.extend_from_slice(&r.proc.index().to_le_bytes());
        buf.extend_from_slice(&r.bytes.to_le_bytes());
        if buf.len() >= 64 * 1024 - 8 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// An incremental v1 writer: streams records to a seekable writer without
/// materializing the trace, patching the header's record count on
/// [`finish`](V1Writer::finish).
///
/// The v1 header carries the record count up front, so a purely sequential
/// writer cannot stream it; this writer emits a zero count, appends records
/// as they arrive, and seeks back once the stream ends. Output is
/// byte-identical to [`write_binary`] of the materialized trace. Use
/// [`crate::v2::V2Writer`] when the destination cannot seek.
///
/// As a [`crate::TraceSink`] it latches the first I/O error and reports it
/// from `finish` (sinks are infallible by contract).
#[derive(Debug)]
pub struct V1Writer<W: Write + Seek> {
    w: W,
    buf: Vec<u8>,
    records: u64,
    error: Option<std::io::Error>,
}

impl<W: Write + Seek> V1Writer<W> {
    /// Starts a v1 stream on `w` (writes the header immediately).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn new(mut w: W) -> Result<Self, TraceIoError> {
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?;
        Ok(V1Writer {
            w,
            buf: Vec::with_capacity(64 * 1024),
            records: 0,
            error: None,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn push(&mut self, record: &TraceRecord) -> Result<(), TraceIoError> {
        self.buf
            .extend_from_slice(&record.proc.index().to_le_bytes());
        self.buf.extend_from_slice(&record.bytes.to_le_bytes());
        self.records += 1;
        if self.buf.len() >= 64 * 1024 - 8 {
            self.w.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes buffered records, patches the header count, and returns the
    /// underlying writer.
    ///
    /// # Errors
    ///
    /// Returns any I/O error latched by the [`crate::TraceSink`] path, then
    /// propagates flush/seek errors.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        if let Some(e) = self.error.take() {
            return Err(e.into());
        }
        self.w.write_all(&self.buf)?;
        // The count sits after the 4-byte magic and 4-byte version.
        self.w.seek(SeekFrom::Start(8))?;
        self.w.write_all(&self.records.to_le_bytes())?;
        self.w.seek(SeekFrom::End(0))?;
        Ok(self.w)
    }
}

impl<W: Write + Seek> crate::TraceSink for V1Writer<W> {
    fn accept(&mut self, record: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        if let Err(TraceIoError::Io(e)) = self.push(record) {
            self.error = Some(e);
        }
    }
}

/// Reads a trace in the binary format.
///
/// A `&mut` reference to any reader can be passed.
///
/// # Errors
///
/// Fails on I/O errors, bad magic, unsupported versions, truncation, or
/// zero-extent records.
pub fn read_binary<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let mut source = V1Source::new(r)?;
    // The declared count is untrusted input: cap the preallocation so a
    // corrupt header cannot trigger an allocation abort. The vector still
    // grows to the real record count.
    let cap = source.expected_records().unwrap_or(0).min(PREALLOC_CAP);
    let mut records = Vec::with_capacity(usize::try_from(cap).unwrap_or(0));
    while let Some(rec) = source.try_next()? {
        records.push(rec);
    }
    Ok(Trace::from_records(records))
}

/// How trace readers respond to defective input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReadMode {
    /// Any defect aborts the read with a structured [`TraceIoError`].
    #[default]
    Strict,
    /// Defects are repaired or skipped and tallied in [`TraceWarnings`].
    Lossy,
}

/// Per-defect-class tallies produced by the lossy readers.
///
/// Every count is the number of *occurrences* of that defect, so a clean
/// read reports the default (all-zero) value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct TraceWarnings {
    /// Header defects: missing/corrupt magic or an unknown version field.
    pub header_mangled: u64,
    /// Absolute difference between the declared record count and the number
    /// of whole records actually present in the input.
    pub count_mismatch: u64,
    /// Records dropped because they carry a zero byte extent.
    pub zero_extent: u64,
    /// Records dropped because they name a procedure the program lacks.
    pub unknown_proc: u64,
    /// Records whose extent exceeded the procedure size and was clamped.
    pub clamped_extent: u64,
    /// Trailing byte fragments that do not form a whole record.
    pub truncated_tail: u64,
    /// Unparsable text-format lines that were skipped.
    pub bad_lines: u64,
    /// Whole v2 frames skipped because they were truncated, failed their
    /// CRC, or did not decode.
    pub bad_frames: u64,
    /// Sub-tally of [`bad_frames`](Self::bad_frames): frames whose payload
    /// passed its CRC but contained a malformed LEB128 varint (over-long
    /// encoding, shift overflow, or truncation mid-record). Excluded from
    /// [`total`](Self::total) because each occurrence is already counted as
    /// a bad frame.
    pub varint_defects: u64,
}

impl TraceWarnings {
    /// Returns `true` when no defects were observed.
    pub fn is_clean(&self) -> bool {
        *self == TraceWarnings::default()
    }

    /// Total number of defects across all classes.
    pub fn total(&self) -> u64 {
        self.header_mangled
            + self.count_mismatch
            + self.zero_extent
            + self.unknown_proc
            + self.clamped_extent
            + self.truncated_tail
            + self.bad_lines
            + self.bad_frames
    }
}

impl fmt::Display for TraceWarnings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        let mut sep = "";
        for (count, label) in [
            (self.header_mangled, "mangled-header"),
            (self.count_mismatch, "count-mismatch"),
            (self.zero_extent, "zero-extent"),
            (self.unknown_proc, "unknown-proc"),
            (self.clamped_extent, "clamped-extent"),
            (self.truncated_tail, "truncated-tail"),
            (self.bad_lines, "bad-line"),
            (self.bad_frames, "bad-frame"),
        ] {
            if count > 0 {
                write!(f, "{sep}{count} {label}")?;
                sep = ", ";
            }
        }
        if self.varint_defects > 0 {
            write!(f, " ({} varint-defect)", self.varint_defects)?;
        }
        Ok(())
    }
}

/// Reads as many bytes as the reader can supply into `buf`, retrying on
/// interrupts. Returns how many bytes were filled (short only at EOF).
pub(crate) fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Reads a binary trace, recovering from corruption instead of failing.
///
/// Unlike [`read_binary`], this reader treats the header as advisory: a bad
/// magic or version is tallied (assuming the version-1 record layout), the
/// declared count is checked against what is actually present rather than
/// trusted, and reading continues to end of input. Records are fixed-width,
/// so a truncated tail costs at most one record. When `program` is given,
/// records naming unknown procedures are dropped and oversized extents are
/// clamped, guaranteeing the returned trace passes [`Trace::validate`].
///
/// # Errors
///
/// Fails only on genuine I/O errors from the reader; all format defects are
/// reported through [`TraceWarnings`].
pub fn read_binary_lossy<R: Read>(
    r: R,
    program: Option<&Program>,
) -> Result<(Trace, TraceWarnings), TraceIoError> {
    let mut source = V1Source::new_lossy(r, program)?;
    let mut records = Vec::new();
    while let Some(rec) = source.try_next()? {
        records.push(rec);
    }
    Ok((Trace::from_records(records), source.warnings()))
}

/// Applies the shared lossy per-record repairs: zero extents and (when a
/// program is given) unknown procedures are dropped with a tally, oversized
/// extents are clamped. Returns `None` when the record is dropped.
pub(crate) fn repair_record(
    proc: u32,
    mut bytes: u32,
    program: Option<&Program>,
    warnings: &mut TraceWarnings,
) -> Option<TraceRecord> {
    if bytes == 0 {
        warnings.zero_extent += 1;
        return None;
    }
    let proc = ProcId::new(proc);
    if let Some(p) = program {
        if proc.as_usize() >= p.len() {
            warnings.unknown_proc += 1;
            return None;
        }
        let size = p.size_of(proc);
        if bytes > size {
            warnings.clamped_extent += 1;
            bytes = size;
        }
    }
    Some(TraceRecord::new(proc, bytes))
}

/// Streaming reader for the fixed-width v1 binary format.
///
/// Yields records one at a time without materializing the trace, in either
/// [`ReadMode`]: strict construction validates the header and `try_next`
/// fails on the first defect with exactly the errors [`read_binary`]
/// produces; lossy construction treats the header as advisory and repairs
/// or skips defective records, tallying them in
/// [`warnings`](TraceSource::warnings) with exactly the semantics of
/// [`read_binary_lossy`] (both materializing readers are thin wrappers over
/// this source).
#[derive(Debug)]
pub struct V1Source<'p, R> {
    reader: R,
    mode: ReadMode,
    program: Option<&'p Program>,
    /// Records declared by the header (advisory in lossy mode).
    declared: u64,
    /// Whole 8-byte records consumed from the input so far.
    raw_records: u64,
    warnings: TraceWarnings,
    done: bool,
}

impl<R: Read> V1Source<'static, R> {
    /// Opens a strict streaming reader, validating the header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, bad magic, or an unsupported version.
    pub fn new(mut r: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(TraceIoError::BadMagic);
        }
        let mut word = [0u8; 4];
        r.read_exact(&mut word)?;
        let version = u32::from_le_bytes(word);
        if version != VERSION {
            return Err(TraceIoError::UnsupportedVersion(version));
        }
        let mut dword = [0u8; 8];
        r.read_exact(&mut dword)?;
        let declared = u64::from_le_bytes(dword);
        Ok(V1Source {
            reader: r,
            mode: ReadMode::Strict,
            program: None,
            declared,
            raw_records: 0,
            warnings: TraceWarnings::default(),
            done: false,
        })
    }
}

impl<'p, R: Read> V1Source<'p, R> {
    /// Opens a lossy streaming reader: the header is advisory, defects are
    /// repaired or skipped and tallied. When `program` is given, unknown
    /// procedures are dropped and oversized extents clamped, so every
    /// yielded record is valid for that program.
    ///
    /// # Errors
    ///
    /// Fails only on genuine I/O errors from the reader.
    pub fn new_lossy(mut r: R, program: Option<&'p Program>) -> Result<Self, TraceIoError> {
        let mut warnings = TraceWarnings::default();
        let mut header = [0u8; 16];
        let filled = read_fully(&mut r, &mut header)?;
        if filled < header.len() {
            // Not even a whole header: nothing recoverable.
            if filled > 0 {
                warnings.header_mangled += 1;
            }
            return Ok(V1Source {
                reader: r,
                mode: ReadMode::Lossy,
                program,
                declared: 0,
                raw_records: 0,
                warnings,
                done: true,
            });
        }
        if header[0..4] != MAGIC {
            warnings.header_mangled += 1;
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("slice is 4 bytes"));
        if version != VERSION && header[0..4] == MAGIC {
            warnings.header_mangled += 1;
        }
        let declared = u64::from_le_bytes(header[8..16].try_into().expect("slice is 8 bytes"));
        Ok(V1Source {
            reader: r,
            mode: ReadMode::Lossy,
            program,
            declared,
            raw_records: 0,
            warnings,
            done: false,
        })
    }

    /// Marks the stream exhausted, reconciling the declared count.
    fn finish_stream(&mut self) {
        if !self.done {
            self.done = true;
            if self.mode == ReadMode::Lossy {
                self.warnings.count_mismatch += self.declared.abs_diff(self.raw_records);
            }
        }
    }
}

impl<R: Read> TraceSource for V1Source<'_, R> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        let mut rec = [0u8; 8];
        loop {
            if self.done {
                return Ok(None);
            }
            if self.mode == ReadMode::Strict && self.raw_records == self.declared {
                // Strict readers stop at the declared count, ignoring any
                // trailing bytes.
                self.finish_stream();
                return Ok(None);
            }
            let n = read_fully(&mut self.reader, &mut rec)?;
            if n == 0 {
                if self.mode == ReadMode::Strict {
                    self.done = true;
                    return Err(TraceIoError::Truncated {
                        expected: self.declared,
                        found: self.raw_records,
                    });
                }
                self.finish_stream();
                return Ok(None);
            }
            if n < rec.len() {
                if self.mode == ReadMode::Strict {
                    self.done = true;
                    return Err(TraceIoError::Truncated {
                        expected: self.declared,
                        found: self.raw_records,
                    });
                }
                self.warnings.truncated_tail += 1;
                self.finish_stream();
                return Ok(None);
            }
            self.raw_records += 1;
            let proc = u32::from_le_bytes(rec[0..4].try_into().expect("slice is 4 bytes"));
            let bytes = u32::from_le_bytes(rec[4..8].try_into().expect("slice is 4 bytes"));
            if self.mode == ReadMode::Strict {
                if bytes == 0 {
                    self.done = true;
                    return Err(TraceIoError::ZeroExtent {
                        index: self.raw_records - 1,
                    });
                }
                return Ok(Some(TraceRecord::new(ProcId::new(proc), bytes)));
            }
            if let Some(r) = repair_record(proc, bytes, self.program, &mut self.warnings) {
                return Ok(Some(r));
            }
        }
    }

    fn warnings(&self) -> TraceWarnings {
        self.warnings
    }

    fn expected_records(&self) -> Option<u64> {
        match self.mode {
            ReadMode::Strict => Some(self.declared),
            ReadMode::Lossy => None,
        }
    }
}

/// Reads a text trace, skipping defective lines instead of failing.
///
/// Unparsable lines and zero-extent records are dropped and tallied. When
/// `program` is given, unknown procedures are dropped and oversized extents
/// clamped, as in [`read_binary_lossy`].
///
/// # Errors
///
/// Fails only on genuine I/O errors from the reader.
pub fn read_text_lossy<R: BufRead>(
    r: R,
    program: Option<&Program>,
) -> Result<(Trace, TraceWarnings), TraceIoError> {
    let mut warnings = TraceWarnings::default();
    let mut records = Vec::new();
    for line in r.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(p), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
            warnings.bad_lines += 1;
            continue;
        };
        let (Ok(proc), Ok(mut bytes)) = (p.parse::<u32>(), b.parse::<u32>()) else {
            warnings.bad_lines += 1;
            continue;
        };
        if bytes == 0 {
            warnings.zero_extent += 1;
            continue;
        }
        let proc = ProcId::new(proc);
        if let Some(prog) = program {
            if proc.as_usize() >= prog.len() {
                warnings.unknown_proc += 1;
                continue;
            }
            let size = prog.size_of(proc);
            if bytes > size {
                warnings.clamped_extent += 1;
                bytes = size;
            }
        }
        records.push(TraceRecord::new(proc, bytes));
    }
    Ok((Trace::from_records(records), warnings))
}

/// Writes a trace in the text format: one `proc_index bytes` pair per line.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_text<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    for r in trace.iter() {
        writeln!(w, "{} {}", r.proc.index(), r.bytes)?;
    }
    Ok(())
}

/// Reads a trace in the text format. Blank lines and lines starting with `#`
/// are ignored.
///
/// # Errors
///
/// Fails on I/O errors, unparsable lines, or zero byte extents.
pub fn read_text<R: BufRead>(r: R) -> Result<Trace, TraceIoError> {
    let mut records = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(p), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(TraceIoError::BadLine { line: lineno + 1 });
        };
        let proc: u32 = p
            .parse()
            .map_err(|_| TraceIoError::BadLine { line: lineno + 1 })?;
        let bytes: u32 = b
            .parse()
            .map_err(|_| TraceIoError::BadLine { line: lineno + 1 })?;
        if bytes == 0 {
            return Err(TraceIoError::ZeroExtent {
                index: records.len() as u64,
            });
        }
        records.push(TraceRecord::new(ProcId::new(proc), bytes));
    }
    Ok(Trace::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_records(vec![
            TraceRecord::new(ProcId::new(0), 100),
            TraceRecord::new(ProcId::new(5), 32),
            TraceRecord::new(ProcId::new(0), 1),
            TraceRecord::new(ProcId::new(1_000_000), u32::MAX),
        ])
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        assert_eq!(&buf[0..4], b"TMPO");
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn v1_writer_streams_byte_identical_output() {
        let t = sample_trace();
        let mut materialized = Vec::new();
        write_binary(&mut materialized, &t).unwrap();
        let mut w = V1Writer::new(std::io::Cursor::new(Vec::new())).unwrap();
        for r in t.iter() {
            w.push(r).unwrap();
        }
        assert_eq!(w.records(), t.len() as u64);
        let streamed = w.finish().unwrap().into_inner();
        assert_eq!(streamed, materialized);
        // The sink path produces the same bytes.
        let mut w = V1Writer::new(std::io::Cursor::new(Vec::new())).unwrap();
        crate::pump(&mut crate::MemorySource::new(&t), &mut w).unwrap();
        assert_eq!(w.finish().unwrap().into_inner(), materialized);
    }

    #[test]
    fn binary_roundtrip_empty() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn binary_large_trace_crosses_buffer_boundary() {
        let records: Vec<_> = (0..20_000)
            .map(|i| TraceRecord::new(ProcId::new(i % 97), (i % 1000) + 1))
            .collect();
        let t = Trace::from_records(records);
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
    }

    #[test]
    fn binary_rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::UnsupportedVersion(99)));
    }

    #[test]
    fn binary_detects_truncation() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 4);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::Truncated {
                expected: 4,
                found: 3
            }
        ));
    }

    #[test]
    fn binary_rejects_zero_extent() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::ZeroExtent { index: 0 }));
    }

    #[test]
    fn text_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_text(&mut buf, &t).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let src = "# header\n\n0 10\n   \n# mid\n1 20\n";
        let t = read_text(src.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1], TraceRecord::new(ProcId::new(1), 20));
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(
            read_text("0 10\nhello world extra\n".as_bytes()).unwrap_err(),
            TraceIoError::BadLine { line: 2 }
        ));
        assert!(matches!(
            read_text("0\n".as_bytes()).unwrap_err(),
            TraceIoError::BadLine { line: 1 }
        ));
        assert!(matches!(
            read_text("0 0\n".as_bytes()).unwrap_err(),
            TraceIoError::ZeroExtent { index: 0 }
        ));
    }

    fn tiny_program() -> Program {
        Program::builder()
            .procedure("a", 64)
            .procedure("b", 32)
            .build()
            .unwrap()
    }

    #[test]
    fn lossy_reads_clean_input_without_warnings() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        let (back, w) = read_binary_lossy(buf.as_slice(), None).unwrap();
        assert_eq!(back, t);
        assert!(w.is_clean(), "unexpected warnings: {w}");
    }

    #[test]
    fn lossy_recovers_truncated_prefix() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 4); // half a record gone
        let (back, w) = read_binary_lossy(buf.as_slice(), None).unwrap();
        assert_eq!(back.records(), &t.records()[..3]);
        assert_eq!(w.truncated_tail, 1);
        assert_eq!(w.count_mismatch, 1);
    }

    #[test]
    fn lossy_tolerates_mangled_header() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        buf[0] = b'X'; // corrupt magic
        let (back, w) = read_binary_lossy(buf.as_slice(), None).unwrap();
        assert_eq!(back, t);
        assert_eq!(w.header_mangled, 1);
    }

    #[test]
    fn lossy_ignores_absurd_declared_count() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        buf[8..16].copy_from_slice(&u64::MAX.to_le_bytes()); // bit-flipped count
        let (back, w) = read_binary_lossy(buf.as_slice(), None).unwrap();
        assert_eq!(back, t);
        assert_eq!(w.count_mismatch, u64::MAX - 4);
    }

    #[test]
    fn lossy_skips_zero_extent_and_unknown_procs() {
        let p = tiny_program();
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&4u64.to_le_bytes());
        for (proc, bytes) in [(0u32, 10u32), (0, 0), (99, 10), (1, 5000)] {
            buf.extend_from_slice(&proc.to_le_bytes());
            buf.extend_from_slice(&bytes.to_le_bytes());
        }
        let (back, w) = read_binary_lossy(buf.as_slice(), Some(&p)).unwrap();
        assert_eq!(w.zero_extent, 1);
        assert_eq!(w.unknown_proc, 1);
        assert_eq!(w.clamped_extent, 1);
        assert_eq!(back.len(), 2);
        back.validate(&p).unwrap();
    }

    #[test]
    fn lossy_handles_sub_header_input() {
        let (t, w) = read_binary_lossy(&b"TMP"[..], None).unwrap();
        assert!(t.is_empty());
        assert_eq!(w.header_mangled, 1);
        let (t, w) = read_binary_lossy(&b""[..], None).unwrap();
        assert!(t.is_empty());
        assert!(w.is_clean());
    }

    #[test]
    fn lossy_text_skips_bad_lines() {
        let p = tiny_program();
        let src = "0 10\nwhat even\n1 0\n99 5\n1 5000\n1 8\n";
        let (t, w) = read_text_lossy(src.as_bytes(), Some(&p)).unwrap();
        assert_eq!(w.bad_lines, 1);
        assert_eq!(w.zero_extent, 1);
        assert_eq!(w.unknown_proc, 1);
        assert_eq!(w.clamped_extent, 1);
        assert_eq!(t.len(), 3);
        t.validate(&p).unwrap();
    }

    #[test]
    fn warnings_display_summarizes() {
        let w = TraceWarnings {
            zero_extent: 2,
            truncated_tail: 1,
            ..TraceWarnings::default()
        };
        let s = w.to_string();
        assert!(s.contains("2 zero-extent"));
        assert!(s.contains("1 truncated-tail"));
        assert_eq!(w.total(), 3);
        assert_eq!(TraceWarnings::default().to_string(), "clean");
    }

    #[test]
    fn error_display_is_useful() {
        assert!(TraceIoError::BadMagic.to_string().contains("binary trace"));
        assert!(TraceIoError::UnsupportedVersion(3)
            .to_string()
            .contains('3'));
        assert!(TraceIoError::BadLine { line: 9 }.to_string().contains('9'));
    }
}
