//! Trace serialization.
//!
//! Two formats are provided:
//!
//! * a compact, versioned **binary** format (`TMPO` magic, little-endian
//!   fixed-width records) for large traces, and
//! * a **text** format (one `proc_index bytes` pair per line, `#` comments)
//!   for hand-written fixtures and debugging.
//!
//! Both round-trip exactly.
//!
//! ```
//! use tempo_program::ProcId;
//! use tempo_trace::{Trace, TraceRecord};
//! use tempo_trace::io::{read_binary, write_binary};
//!
//! let trace = Trace::from_records(vec![TraceRecord::new(ProcId::new(3), 40)]);
//! let mut buf = Vec::new();
//! write_binary(&mut buf, &trace)?;
//! let back = read_binary(&mut buf.as_slice())?;
//! assert_eq!(back, trace);
//! # Ok::<(), tempo_trace::io::TraceIoError>(())
//! ```

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Read, Write};

use tempo_program::{ProcId, Program};

use crate::{Trace, TraceRecord};

/// Magic bytes opening the binary trace format.
pub const MAGIC: [u8; 4] = *b"TMPO";
/// Current binary format version.
pub const VERSION: u32 = 1;

/// Preallocation ceiling (records) applied to the header's declared
/// count. The count is untrusted input — a mangled header could declare
/// `u64::MAX` records and turn a 24-byte file into an allocation abort —
/// so readers reserve at most this much up front and let the vector grow
/// normally past it.
const PREALLOC_CAP: u64 = 1 << 20;

/// Errors produced while reading or writing traces.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the `TMPO` magic.
    BadMagic,
    /// The input declares an unsupported format version.
    UnsupportedVersion(u32),
    /// The input ended before the declared record count was read.
    Truncated {
        /// Records expected per the header.
        expected: u64,
        /// Records actually read.
        found: u64,
    },
    /// A text-format line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A record carries a zero byte extent, which no valid trace contains.
    ZeroExtent {
        /// 0-based record index.
        index: u64,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadMagic => write!(f, "input is not a tempo binary trace"),
            TraceIoError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceIoError::Truncated { expected, found } => {
                write!(
                    f,
                    "trace truncated: expected {expected} records, found {found}"
                )
            }
            TraceIoError::BadLine { line } => write!(f, "malformed trace text at line {line}"),
            TraceIoError::ZeroExtent { index } => {
                write!(f, "record {index} has a zero byte extent")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace in the binary format.
///
/// A `&mut` reference to any writer can be passed.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_binary<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    // Buffer records in 64 KiB blocks to keep syscall counts low for large
    // traces without requiring the caller to wrap the writer.
    let mut buf = Vec::with_capacity(64 * 1024);
    for r in trace.iter() {
        buf.extend_from_slice(&r.proc.index().to_le_bytes());
        buf.extend_from_slice(&r.bytes.to_le_bytes());
        if buf.len() >= 64 * 1024 - 8 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a trace in the binary format.
///
/// A `&mut` reference to any reader can be passed.
///
/// # Errors
///
/// Fails on I/O errors, bad magic, unsupported versions, truncation, or
/// zero-extent records.
pub fn read_binary<R: Read>(mut r: R) -> Result<Trace, TraceIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != VERSION {
        return Err(TraceIoError::UnsupportedVersion(version));
    }
    let mut dword = [0u8; 8];
    r.read_exact(&mut dword)?;
    let count = u64::from_le_bytes(dword);
    // The declared count is untrusted input: cap the preallocation so a
    // corrupt header cannot trigger an allocation abort. The vector still
    // grows to the real record count.
    let mut records = Vec::with_capacity(usize::try_from(count.min(PREALLOC_CAP)).unwrap_or(0));
    let mut rec = [0u8; 8];
    for i in 0..count {
        if let Err(e) = r.read_exact(&mut rec) {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                return Err(TraceIoError::Truncated {
                    expected: count,
                    found: i,
                });
            }
            return Err(e.into());
        }
        let proc = u32::from_le_bytes(rec[0..4].try_into().expect("slice is 4 bytes"));
        let bytes = u32::from_le_bytes(rec[4..8].try_into().expect("slice is 4 bytes"));
        if bytes == 0 {
            return Err(TraceIoError::ZeroExtent { index: i });
        }
        records.push(TraceRecord::new(ProcId::new(proc), bytes));
    }
    Ok(Trace::from_records(records))
}

/// How trace readers respond to defective input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReadMode {
    /// Any defect aborts the read with a structured [`TraceIoError`].
    #[default]
    Strict,
    /// Defects are repaired or skipped and tallied in [`TraceWarnings`].
    Lossy,
}

/// Per-defect-class tallies produced by the lossy readers.
///
/// Every count is the number of *occurrences* of that defect, so a clean
/// read reports the default (all-zero) value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct TraceWarnings {
    /// Header defects: missing/corrupt magic or an unknown version field.
    pub header_mangled: u64,
    /// Absolute difference between the declared record count and the number
    /// of whole records actually present in the input.
    pub count_mismatch: u64,
    /// Records dropped because they carry a zero byte extent.
    pub zero_extent: u64,
    /// Records dropped because they name a procedure the program lacks.
    pub unknown_proc: u64,
    /// Records whose extent exceeded the procedure size and was clamped.
    pub clamped_extent: u64,
    /// Trailing byte fragments that do not form a whole record.
    pub truncated_tail: u64,
    /// Unparsable text-format lines that were skipped.
    pub bad_lines: u64,
}

impl TraceWarnings {
    /// Returns `true` when no defects were observed.
    pub fn is_clean(&self) -> bool {
        *self == TraceWarnings::default()
    }

    /// Total number of defects across all classes.
    pub fn total(&self) -> u64 {
        self.header_mangled
            + self.count_mismatch
            + self.zero_extent
            + self.unknown_proc
            + self.clamped_extent
            + self.truncated_tail
            + self.bad_lines
    }
}

impl fmt::Display for TraceWarnings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        let mut sep = "";
        for (count, label) in [
            (self.header_mangled, "mangled-header"),
            (self.count_mismatch, "count-mismatch"),
            (self.zero_extent, "zero-extent"),
            (self.unknown_proc, "unknown-proc"),
            (self.clamped_extent, "clamped-extent"),
            (self.truncated_tail, "truncated-tail"),
            (self.bad_lines, "bad-line"),
        ] {
            if count > 0 {
                write!(f, "{sep}{count} {label}")?;
                sep = ", ";
            }
        }
        Ok(())
    }
}

/// Reads as many bytes as the reader can supply into `buf`, retrying on
/// interrupts. Returns how many bytes were filled (short only at EOF).
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Reads a binary trace, recovering from corruption instead of failing.
///
/// Unlike [`read_binary`], this reader treats the header as advisory: a bad
/// magic or version is tallied (assuming the version-1 record layout), the
/// declared count is checked against what is actually present rather than
/// trusted, and reading continues to end of input. Records are fixed-width,
/// so a truncated tail costs at most one record. When `program` is given,
/// records naming unknown procedures are dropped and oversized extents are
/// clamped, guaranteeing the returned trace passes [`Trace::validate`].
///
/// # Errors
///
/// Fails only on genuine I/O errors from the reader; all format defects are
/// reported through [`TraceWarnings`].
pub fn read_binary_lossy<R: Read>(
    mut r: R,
    program: Option<&Program>,
) -> Result<(Trace, TraceWarnings), TraceIoError> {
    let mut warnings = TraceWarnings::default();
    let mut header = [0u8; 16];
    let filled = read_fully(&mut r, &mut header)?;
    if filled < header.len() {
        // Not even a whole header: nothing recoverable.
        if filled > 0 {
            warnings.header_mangled += 1;
        }
        return Ok((Trace::new(), warnings));
    }
    if header[0..4] != MAGIC {
        warnings.header_mangled += 1;
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("slice is 4 bytes"));
    if version != VERSION && header[0..4] == MAGIC {
        warnings.header_mangled += 1;
    }
    let declared = u64::from_le_bytes(header[8..16].try_into().expect("slice is 8 bytes"));

    // The declared count is advisory (a bit flip can make it absurd), so
    // cap the preallocation and simply read until end of input.
    let cap = usize::try_from(declared.min(PREALLOC_CAP)).unwrap_or(0);
    let mut records = Vec::with_capacity(cap);
    let mut raw_records: u64 = 0;
    let mut rec = [0u8; 8];
    loop {
        let n = read_fully(&mut r, &mut rec)?;
        if n == 0 {
            break;
        }
        if n < rec.len() {
            warnings.truncated_tail += 1;
            break;
        }
        raw_records += 1;
        let proc = u32::from_le_bytes(rec[0..4].try_into().expect("slice is 4 bytes"));
        let mut bytes = u32::from_le_bytes(rec[4..8].try_into().expect("slice is 4 bytes"));
        if bytes == 0 {
            warnings.zero_extent += 1;
            continue;
        }
        let proc = ProcId::new(proc);
        if let Some(p) = program {
            if proc.as_usize() >= p.len() {
                warnings.unknown_proc += 1;
                continue;
            }
            let size = p.size_of(proc);
            if bytes > size {
                warnings.clamped_extent += 1;
                bytes = size;
            }
        }
        records.push(TraceRecord::new(proc, bytes));
    }
    warnings.count_mismatch += declared.abs_diff(raw_records);
    Ok((Trace::from_records(records), warnings))
}

/// Reads a text trace, skipping defective lines instead of failing.
///
/// Unparsable lines and zero-extent records are dropped and tallied. When
/// `program` is given, unknown procedures are dropped and oversized extents
/// clamped, as in [`read_binary_lossy`].
///
/// # Errors
///
/// Fails only on genuine I/O errors from the reader.
pub fn read_text_lossy<R: BufRead>(
    r: R,
    program: Option<&Program>,
) -> Result<(Trace, TraceWarnings), TraceIoError> {
    let mut warnings = TraceWarnings::default();
    let mut records = Vec::new();
    for line in r.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(p), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
            warnings.bad_lines += 1;
            continue;
        };
        let (Ok(proc), Ok(mut bytes)) = (p.parse::<u32>(), b.parse::<u32>()) else {
            warnings.bad_lines += 1;
            continue;
        };
        if bytes == 0 {
            warnings.zero_extent += 1;
            continue;
        }
        let proc = ProcId::new(proc);
        if let Some(prog) = program {
            if proc.as_usize() >= prog.len() {
                warnings.unknown_proc += 1;
                continue;
            }
            let size = prog.size_of(proc);
            if bytes > size {
                warnings.clamped_extent += 1;
                bytes = size;
            }
        }
        records.push(TraceRecord::new(proc, bytes));
    }
    Ok((Trace::from_records(records), warnings))
}

/// Writes a trace in the text format: one `proc_index bytes` pair per line.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_text<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    for r in trace.iter() {
        writeln!(w, "{} {}", r.proc.index(), r.bytes)?;
    }
    Ok(())
}

/// Reads a trace in the text format. Blank lines and lines starting with `#`
/// are ignored.
///
/// # Errors
///
/// Fails on I/O errors, unparsable lines, or zero byte extents.
pub fn read_text<R: BufRead>(r: R) -> Result<Trace, TraceIoError> {
    let mut records = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(p), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(TraceIoError::BadLine { line: lineno + 1 });
        };
        let proc: u32 = p
            .parse()
            .map_err(|_| TraceIoError::BadLine { line: lineno + 1 })?;
        let bytes: u32 = b
            .parse()
            .map_err(|_| TraceIoError::BadLine { line: lineno + 1 })?;
        if bytes == 0 {
            return Err(TraceIoError::ZeroExtent {
                index: records.len() as u64,
            });
        }
        records.push(TraceRecord::new(ProcId::new(proc), bytes));
    }
    Ok(Trace::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_records(vec![
            TraceRecord::new(ProcId::new(0), 100),
            TraceRecord::new(ProcId::new(5), 32),
            TraceRecord::new(ProcId::new(0), 1),
            TraceRecord::new(ProcId::new(1_000_000), u32::MAX),
        ])
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        assert_eq!(&buf[0..4], b"TMPO");
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_roundtrip_empty() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn binary_large_trace_crosses_buffer_boundary() {
        let records: Vec<_> = (0..20_000)
            .map(|i| TraceRecord::new(ProcId::new(i % 97), (i % 1000) + 1))
            .collect();
        let t = Trace::from_records(records);
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
    }

    #[test]
    fn binary_rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::UnsupportedVersion(99)));
    }

    #[test]
    fn binary_detects_truncation() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 4);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::Truncated {
                expected: 4,
                found: 3
            }
        ));
    }

    #[test]
    fn binary_rejects_zero_extent() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::ZeroExtent { index: 0 }));
    }

    #[test]
    fn text_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_text(&mut buf, &t).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let src = "# header\n\n0 10\n   \n# mid\n1 20\n";
        let t = read_text(src.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1], TraceRecord::new(ProcId::new(1), 20));
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(
            read_text("0 10\nhello world extra\n".as_bytes()).unwrap_err(),
            TraceIoError::BadLine { line: 2 }
        ));
        assert!(matches!(
            read_text("0\n".as_bytes()).unwrap_err(),
            TraceIoError::BadLine { line: 1 }
        ));
        assert!(matches!(
            read_text("0 0\n".as_bytes()).unwrap_err(),
            TraceIoError::ZeroExtent { index: 0 }
        ));
    }

    fn tiny_program() -> Program {
        Program::builder()
            .procedure("a", 64)
            .procedure("b", 32)
            .build()
            .unwrap()
    }

    #[test]
    fn lossy_reads_clean_input_without_warnings() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        let (back, w) = read_binary_lossy(buf.as_slice(), None).unwrap();
        assert_eq!(back, t);
        assert!(w.is_clean(), "unexpected warnings: {w}");
    }

    #[test]
    fn lossy_recovers_truncated_prefix() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 4); // half a record gone
        let (back, w) = read_binary_lossy(buf.as_slice(), None).unwrap();
        assert_eq!(back.records(), &t.records()[..3]);
        assert_eq!(w.truncated_tail, 1);
        assert_eq!(w.count_mismatch, 1);
    }

    #[test]
    fn lossy_tolerates_mangled_header() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        buf[0] = b'X'; // corrupt magic
        let (back, w) = read_binary_lossy(buf.as_slice(), None).unwrap();
        assert_eq!(back, t);
        assert_eq!(w.header_mangled, 1);
    }

    #[test]
    fn lossy_ignores_absurd_declared_count() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        buf[8..16].copy_from_slice(&u64::MAX.to_le_bytes()); // bit-flipped count
        let (back, w) = read_binary_lossy(buf.as_slice(), None).unwrap();
        assert_eq!(back, t);
        assert_eq!(w.count_mismatch, u64::MAX - 4);
    }

    #[test]
    fn lossy_skips_zero_extent_and_unknown_procs() {
        let p = tiny_program();
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&4u64.to_le_bytes());
        for (proc, bytes) in [(0u32, 10u32), (0, 0), (99, 10), (1, 5000)] {
            buf.extend_from_slice(&proc.to_le_bytes());
            buf.extend_from_slice(&bytes.to_le_bytes());
        }
        let (back, w) = read_binary_lossy(buf.as_slice(), Some(&p)).unwrap();
        assert_eq!(w.zero_extent, 1);
        assert_eq!(w.unknown_proc, 1);
        assert_eq!(w.clamped_extent, 1);
        assert_eq!(back.len(), 2);
        back.validate(&p).unwrap();
    }

    #[test]
    fn lossy_handles_sub_header_input() {
        let (t, w) = read_binary_lossy(&b"TMP"[..], None).unwrap();
        assert!(t.is_empty());
        assert_eq!(w.header_mangled, 1);
        let (t, w) = read_binary_lossy(&b""[..], None).unwrap();
        assert!(t.is_empty());
        assert!(w.is_clean());
    }

    #[test]
    fn lossy_text_skips_bad_lines() {
        let p = tiny_program();
        let src = "0 10\nwhat even\n1 0\n99 5\n1 5000\n1 8\n";
        let (t, w) = read_text_lossy(src.as_bytes(), Some(&p)).unwrap();
        assert_eq!(w.bad_lines, 1);
        assert_eq!(w.zero_extent, 1);
        assert_eq!(w.unknown_proc, 1);
        assert_eq!(w.clamped_extent, 1);
        assert_eq!(t.len(), 3);
        t.validate(&p).unwrap();
    }

    #[test]
    fn warnings_display_summarizes() {
        let w = TraceWarnings {
            zero_extent: 2,
            truncated_tail: 1,
            ..TraceWarnings::default()
        };
        let s = w.to_string();
        assert!(s.contains("2 zero-extent"));
        assert!(s.contains("1 truncated-tail"));
        assert_eq!(w.total(), 3);
        assert_eq!(TraceWarnings::default().to_string(), "clean");
    }

    #[test]
    fn error_display_is_useful() {
        assert!(TraceIoError::BadMagic.to_string().contains("binary trace"));
        assert!(TraceIoError::UnsupportedVersion(3)
            .to_string()
            .contains('3'));
        assert!(TraceIoError::BadLine { line: 9 }.to_string().contains('9'));
    }
}
