//! Minimal statistical samplers over any [`rand::Rng`].
//!
//! The paper's methodology needs exactly three distributions:
//!
//! * standard **normal** deviates for the multiplicative profile
//!   perturbation ŵ = w·exp(sX) of §5.1,
//! * **lognormal** procedure-size draws for the synthetic workload models,
//! * **Zipf**-like popularity skew for call-site selection.
//!
//! They are implemented here (Box–Muller; inverse-CDF-by-table Zipf) so the
//! workspace's only randomness dependency is `rand` itself.

use rand::Rng;

/// Samples a standard normal deviate (mean 0, variance 1) via the Box–Muller
/// transform.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = tempo_trace::stats::standard_normal(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to keep ln(u1) finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a normal deviate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative or not finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev >= 0.0 && std_dev.is_finite(),
        "standard deviation must be finite and non-negative"
    );
    mean + std_dev * standard_normal(rng)
}

/// Samples a lognormal deviate: `exp(N(mu, sigma))`.
///
/// `mu`/`sigma` are the mean and standard deviation of the *underlying*
/// normal, i.e. the median of the result is `exp(mu)`.
///
/// # Panics
///
/// Panics if `sigma` is negative or not finite.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Discrete Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k+1)^s`.
///
/// Sampling is O(log n) by binary search over the precomputed CDF; building
/// the sampler is O(n).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has exactly zero ranks (never true;
    /// construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Multiplies `w` by lognormal noise `exp(s·X)` with `X ~ N(0,1)` — the
/// paper's §5.1 profile perturbation. `s = 0` returns `w` unchanged.
///
/// # Panics
///
/// Panics if `s` is negative or not finite.
pub fn perturb_weight<R: Rng + ?Sized>(rng: &mut R, w: f64, s: f64) -> f64 {
    assert!(
        s >= 0.0 && s.is_finite(),
        "perturbation scale must be finite and non-negative"
    );
    if s == 0.0 {
        return w;
    }
    w * (s * standard_normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn lognormal_is_positive_with_right_median() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| lognormal(&mut rng, 3.0, 1.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        let expected = 3.0f64.exp();
        assert!((median / expected - 1.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = StdRng::seed_from_u64(10);
        let z = Zipf::new(100, 1.0);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rough frequency check: rank 0 should get about 1/H(100) ~ 19%.
        let f0 = counts[0] as f64 / 50_000.0;
        assert!((f0 - 0.192).abs() < 0.02, "f0 {f0}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut rng = StdRng::seed_from_u64(11);
        let z = Zipf::new(10, 0.0);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 100_000.0;
            assert!((f - 0.1).abs() < 0.01, "f {f}");
        }
    }

    #[test]
    fn zipf_single_rank() {
        let mut rng = StdRng::seed_from_u64(12);
        let z = Zipf::new(1, 2.0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn perturb_weight_identity_at_zero_scale() {
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!(perturb_weight(&mut rng, 123.0, 0.0), 123.0);
    }

    #[test]
    fn perturb_weight_stays_positive_and_centered() {
        let mut rng = StdRng::seed_from_u64(14);
        let n = 20_000;
        let w = 100.0;
        let samples: Vec<f64> = (0..n).map(|_| perturb_weight(&mut rng, w, 0.1)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        // Median multiplier is 1.0, so the sample median should be close to w.
        let mut s = samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[n / 2];
        assert!((median / w - 1.0).abs() < 0.02, "median {median}");
        // s = 0.1 keeps weights within ~±50% essentially always.
        assert!(samples.iter().all(|&x| x > w * 0.5 && x < w * 2.0));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero_ranks() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn normal_rejects_negative_sigma() {
        let mut rng = StdRng::seed_from_u64(1);
        normal(&mut rng, 0.0, -1.0);
    }
}
