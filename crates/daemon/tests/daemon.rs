//! End-to-end tests of tempod: offline-equivalence, multi-tenant
//! isolation, fault tolerance, and admission control.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use tempo::place::{Budget, Gbsc};
use tempo::program::io::{write_layout, write_program};
use tempo::program::Program;
use tempo::trace::v2::{scan_frames, V2Writer};
use tempo::trace::{MemorySource, Trace};
use tempo::workloads::callgraph::CallGraphBuilder;
use tempo::{plan_epochs, Engine};
use tempo_daemon::{split_frames, Client, DaemonConfig, Server};
use tempo_faults::ClientFault;

/// Records per TMP2 frame in these tests — small so every trace spans
/// many frames.
const FRAME_RECORDS: usize = 500;
/// Records per epoch — deliberately not a multiple of the frame size.
const EPOCH_RECORDS: u64 = 1_700;

static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique socket path per test, safe under parallel test threads.
fn socket_path(tag: &str) -> PathBuf {
    let seq = SOCKET_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tempod-test-{}-{tag}-{seq}.sock",
        std::process::id()
    ))
}

/// A workload with phase drift (so re-placement actually triggers), its
/// program text, and its trace as v2 frame bytes.
struct Fixture {
    program: Program,
    program_text: String,
    trace: Trace,
    v2_bytes: Vec<u8>,
}

fn fixture(seed: u64, len: usize) -> Fixture {
    // Procedure sizes vary with the seed so different fixtures have
    // genuinely different programs (and therefore different layouts).
    #[allow(clippy::cast_possible_truncation)]
    let bump = (seed % 7) as u32 * 32;
    let mut b = CallGraphBuilder::new();
    let main = b.procedure("main", 256 + bump);
    let parse = b.procedure("parse", 512 + bump);
    let eval = b.procedure("eval", 768 + bump);
    let gc = b.procedure("gc", 1024 + bump);
    let emit = b.procedure("emit", 384 + bump);
    b.root(main)
        .call_site(main, parse, 6.0)
        .call_site(main, eval, 3.0)
        .call_site(parse, emit, 2.0)
        .call_site(eval, gc, 1.5)
        .call_site(eval, emit, 0.5)
        .phase(2_000, &[(main, parse, 0.2), (main, eval, 5.0)])
        .phase(2_000, &[(eval, gc, 4.0)]);
    let w = b.build().expect("fixture graph is valid");
    let program = w.program().clone();
    let mut program_text = Vec::new();
    write_program(&mut program_text, &program).expect("program serializes");
    let trace = w.trace(seed, len);
    let mut v2_bytes = Vec::new();
    let mut writer =
        V2Writer::with_frame_records(&mut v2_bytes, FRAME_RECORDS).expect("writer opens");
    for r in trace.iter() {
        writer.push(r).expect("record encodes");
    }
    writer.finish().expect("stream finishes");
    Fixture {
        program,
        program_text: String::from_utf8(program_text).expect("program text is UTF-8"),
        trace,
        v2_bytes,
    }
}

fn test_config() -> DaemonConfig {
    let mut config = DaemonConfig::new(tempo::cache::CacheConfig::direct_mapped_8k());
    config.epoch_records = EPOCH_RECORDS;
    config
}

/// The offline reference: `tempo engine` semantics in-process — plan the
/// epochs from the frame structure, run the planned engine, serialize
/// the layout.
fn offline_layout(f: &Fixture, config: &DaemonConfig) -> String {
    let frames = scan_frames(f.v2_bytes.as_slice()).expect("fixture stream scans");
    let plan = plan_epochs(&frames, config.epoch_records);
    let algorithm = Gbsc::new();
    let mut engine = Engine::new(&f.program, &algorithm, test_engine_config(config));
    engine
        .run_planned(MemorySource::new(&f.trace), &plan)
        .expect("memory source cannot fail");
    let layout = engine.layout().expect("epochs were observed");
    let mut buf = Vec::new();
    write_layout(&mut buf, layout).expect("layout serializes");
    String::from_utf8(buf).expect("layout text is UTF-8")
}

/// Mirrors `DaemonConfig::engine_config` (private to the crate) for the
/// offline reference run.
fn test_engine_config(config: &DaemonConfig) -> tempo::EngineConfig {
    let mut ec = tempo::EngineConfig::new(config.cache);
    ec.selector =
        tempo::trg::PopularitySelector::coverage(config.coverage).with_min_count(config.min_count);
    ec.epoch_records = config.epoch_records;
    ec.decay = config.decay;
    ec.replace_threshold = config.replace_threshold;
    ec
}

/// Starts a daemon on a fresh unix socket; returns the socket path and
/// the server thread handle (joined after `shutdown`).
fn start_daemon(tag: &str, config: DaemonConfig) -> (PathBuf, std::thread::JoinHandle<()>) {
    let path = socket_path(tag);
    let server = Server::bind_unix(&path, config).expect("socket binds");
    let handle = std::thread::spawn(move || server.run().expect("serve loop exits cleanly"));
    (path, handle)
}

#[test]
fn single_tenant_layout_is_byte_identical_to_offline() {
    let f = fixture(7, 6_400);
    let config = test_config();
    let want = offline_layout(&f, &config);

    let (path, server) = start_daemon("equiv", config);
    let mut c = Client::connect_unix(&path).expect("client connects");
    c.open("t0", Some(&f.program_text)).expect("open succeeds");
    let frames = split_frames(&f.v2_bytes).expect("fixture splits");
    assert!(frames.len() > 3, "fixture must span several frames");
    for frame in &frames {
        c.send_frame(frame).expect("frame sends");
    }
    let tally = c.sync().expect("sync succeeds");
    assert_eq!(tally.frames, frames.len() as u64);
    assert_eq!(tally.records, f.trace.records().len() as u64);
    assert_eq!(tally.bad_frames, 0);
    let got = c.layout().expect("layout succeeds");
    assert_eq!(got, want, "daemon layout must match offline byte for byte");

    // Epoch boundaries matched too, not just the end state.
    let plan = plan_epochs(
        &scan_frames(f.v2_bytes.as_slice()).expect("stream scans"),
        EPOCH_RECORDS,
    );
    let after = c.sync().expect("second sync succeeds");
    assert_eq!(after.epochs, plan.len() as u64, "one epoch per plan entry");

    c.shutdown().expect("shutdown succeeds");
    server.join().expect("server thread exits");
}

#[test]
fn two_concurrent_tenants_stay_isolated() {
    let fa = fixture(11, 5_100);
    let fb = fixture(23, 7_300);
    let config = test_config();
    let want_a = offline_layout(&fa, &config);
    let want_b = offline_layout(&fb, &config);

    let (path, server) = start_daemon("tenants", config);
    let feed = |tenant: &'static str, f: &Fixture| {
        let path = path.clone();
        let program = f.program_text.clone();
        let bytes = f.v2_bytes.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect_unix(&path).expect("client connects");
            c.open(tenant, Some(&program)).expect("open succeeds");
            for frame in split_frames(&bytes).expect("fixture splits") {
                c.send_frame(frame).expect("frame sends");
            }
            c.layout().expect("layout succeeds")
        })
    };
    let a = feed("alpha", &fa);
    let b = feed("beta", &fb);
    let got_a = a.join().expect("alpha thread exits");
    let got_b = b.join().expect("beta thread exits");
    assert_eq!(got_a, want_a, "tenant alpha matches its offline run");
    assert_eq!(got_b, want_b, "tenant beta matches its offline run");
    assert_ne!(got_a, got_b, "distinct workloads place differently");

    let mut c = Client::connect_unix(&path).expect("client connects");
    c.shutdown().expect("shutdown succeeds");
    server.join().expect("server thread exits");
}

#[test]
fn client_death_mid_message_leaves_the_tenant_clean() {
    let f = fixture(31, 4_000);
    let (path, server) = start_daemon("faults", test_config());
    let frames = split_frames(&f.v2_bytes).expect("fixture splits");

    // A healthy client seeds the tenant with the first two frames.
    let mut c = Client::connect_unix(&path).expect("client connects");
    c.open("victim", Some(&f.program_text))
        .expect("open succeeds");
    c.send_frame(frames[0]).expect("frame sends");
    c.send_frame(frames[1]).expect("frame sends");
    let before = c.sync().expect("sync succeeds");
    assert_eq!(before.frames, 2);

    // A faulty client joins the tenant and dies mid-frame-message: the
    // injector yields a proper prefix of the encoded message, then the
    // connection drops.
    for seed in 0..8 {
        let mut message = Vec::new();
        tempo_daemon::proto::write_message(&mut message, tempo_daemon::proto::OP_FRAME, frames[2])
            .expect("message encodes");
        let mut faulty = Client::connect_unix(&path).expect("faulty client connects");
        faulty
            .open("victim", None)
            .expect("joining an existing tenant needs no program");
        for chunk in ClientFault::DropMidMessage.schedule(&message, seed) {
            faulty.send_raw(&chunk).expect("raw bytes send");
        }
        drop(faulty); // the connection dies here, mid-message
    }

    // The daemon is still up, the tenant still consistent: nothing from
    // the truncated messages was ingested, and a complete frame still is.
    let after = c.sync().expect("daemon still serves the healthy client");
    assert_eq!(after.frames, 2, "no partial message became a frame");
    assert_eq!(
        after.bad_frames, 0,
        "truncation kills connections, not tallies"
    );
    c.send_frame(frames[2]).expect("tenant still ingests");
    let final_tally = c.sync().expect("sync succeeds");
    assert_eq!(final_tally.frames, 3);

    c.shutdown().expect("shutdown succeeds");
    server.join().expect("server thread exits");
}

#[test]
fn slow_trickle_client_is_just_a_slow_client() {
    let f = fixture(43, 2_000);
    let (path, server) = start_daemon("trickle", test_config());
    let frames = split_frames(&f.v2_bytes).expect("fixture splits");

    let mut c = Client::connect_unix(&path).expect("client connects");
    c.open("slow", Some(&f.program_text))
        .expect("open succeeds");
    let mut message = Vec::new();
    tempo_daemon::proto::write_message(&mut message, tempo_daemon::proto::OP_FRAME, frames[0])
        .expect("message encodes");
    let chunks = ClientFault::SlowTrickle.schedule(&message, 17);
    assert!(chunks.len() > 10, "the injector must actually fragment");
    for chunk in chunks {
        c.send_raw(&chunk).expect("raw bytes send");
    }
    let tally = c.sync().expect("sync succeeds");
    assert_eq!(tally.frames, 1, "a trickled frame still ingests whole");

    c.shutdown().expect("shutdown succeeds");
    server.join().expect("server thread exits");
}

#[test]
fn defective_frames_are_tallied_not_fatal() {
    let f = fixture(53, 2_000);
    let (path, server) = start_daemon("defect", test_config());
    let frames = split_frames(&f.v2_bytes).expect("fixture splits");

    let mut c = Client::connect_unix(&path).expect("client connects");
    c.open("t", Some(&f.program_text)).expect("open succeeds");
    let mut corrupt = frames[0].to_vec();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF; // breaks the CRC
    c.send_frame(&corrupt)
        .expect("sending a bad frame is not an error");
    c.send_frame(frames[1]).expect("good frame sends");
    let tally = c.sync().expect("sync succeeds");
    assert_eq!(tally.bad_frames, 1);
    assert_eq!(tally.frames, 1, "the good frame survived its bad neighbor");

    c.shutdown().expect("shutdown succeeds");
    server.join().expect("server thread exits");
}

#[test]
fn admission_budget_rejects_and_tallies_overflow_frames() {
    let f = fixture(61, 3_000);
    let mut config = test_config();
    // Enough budget for exactly two frames of records.
    config.budget = Budget::work_units(2 * FRAME_RECORDS as u64);
    let (path, server) = start_daemon("budget", config);
    let frames = split_frames(&f.v2_bytes).expect("fixture splits");
    assert!(frames.len() >= 4);

    let mut c = Client::connect_unix(&path).expect("client connects");
    c.open("capped", Some(&f.program_text))
        .expect("open succeeds");
    for frame in &frames {
        c.send_frame(frame).expect("frame sends");
    }
    let tally = c.sync().expect("sync succeeds");
    assert_eq!(tally.frames, 2, "the budget admits two full frames");
    assert_eq!(
        tally.budget_rejected,
        frames.len() as u64 - 2,
        "everything past the budget is tallied as rejected"
    );

    c.shutdown().expect("shutdown succeeds");
    server.join().expect("server thread exits");
}

#[test]
fn tenant_stats_are_scoped_and_live() {
    let f = fixture(71, 4_000);
    let (path, server) = start_daemon("stats", test_config());
    let frames = split_frames(&f.v2_bytes).expect("fixture splits");

    let mut c = Client::connect_unix(&path).expect("client connects");
    c.open("metered", Some(&f.program_text))
        .expect("open succeeds");
    for frame in &frames {
        c.send_frame(frame).expect("frame sends");
    }
    c.sync().expect("sync succeeds");
    let stats = c.stats().expect("stats succeeds");
    let snap = tempo::obs::Snapshot::parse_json(&stats).expect("stats reply parses");
    assert_eq!(
        snap.counter("daemon.tenant.frames"),
        Some(frames.len() as u64),
        "tenant-scoped ingestion counters are served live"
    );
    assert!(
        snap.counter("engine.epochs").unwrap_or(0) > 0,
        "the engine's own counters land in the tenant scope"
    );

    let server_stats = c.server_stats().expect("server stats succeeds");
    let global = tempo::obs::Snapshot::parse_json(&server_stats).expect("global reply parses");
    assert!(
        global.counter("daemon.connections").unwrap_or(0) >= 1,
        "connection counters land in the global scope"
    );
    assert_eq!(
        global.counter("daemon.tenant.frames"),
        None,
        "tenant ingestion counters do not leak into the global registry"
    );

    c.shutdown().expect("shutdown succeeds");
    server.join().expect("server thread exits");
}

#[test]
fn requests_before_open_are_rejected_with_messages() {
    let (path, server) = start_daemon("order", test_config());
    let mut c = Client::connect_unix(&path).expect("client connects");
    assert!(c.sync().is_err(), "sync before open is an error");
    assert!(c.layout().is_err(), "layout before open is an error");
    assert!(
        c.server_stats().is_ok(),
        "server stats are valid before open"
    );
    let mut named = Client::connect_unix(&path).expect("client connects");
    assert!(
        named.open("ghost", None).is_err(),
        "opening an unknown tenant without a program is an error"
    );
    c.shutdown().expect("shutdown succeeds");
    server.join().expect("server thread exits");
}
