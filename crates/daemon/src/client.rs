//! Client side of the tempod protocol: connect, open a tenant, stream
//! frames, collect layouts and stats.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use tempo::trace::v2::{scan_frames, FRAME_HEADER_LEN};

use crate::proto::{
    read_message, write_message, OP_FRAME, OP_LAYOUT, OP_OPEN, OP_SERVER_STATS, OP_SHUTDOWN,
    OP_STATS, OP_SYNC, STATUS_OK,
};
use crate::tenant::Tally;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connection refused, reset, mid-message EOF).
    Io(io::Error),
    /// The server replied with an error message.
    Server(String),
    /// The server replied with something outside the protocol.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The client's stream — both standard transports plus anything a test
/// wants to substitute.
trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// One connection to a tempod server.
///
/// ```no_run
/// use tempo_daemon::{split_frames, Client};
///
/// # let (program_text, trace_bytes) = (String::new(), Vec::<u8>::new());
/// let mut c = Client::connect_unix("/tmp/tempod.sock")?;
/// c.open("web-frontend", Some(&program_text))?;
/// for frame in split_frames(&trace_bytes)? {
///     c.send_frame(frame)?;
/// }
/// let tally = c.sync()?;
/// let layout_text = c.layout()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Client {
    stream: Box<dyn Transport>,
}

impl Client {
    /// Connects over a unix-domain socket.
    ///
    /// # Errors
    ///
    /// Fails when the socket cannot be connected.
    pub fn connect_unix<P: AsRef<Path>>(path: P) -> io::Result<Client> {
        Ok(Client {
            stream: Box::new(UnixStream::connect(path)?),
        })
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be connected.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        Ok(Client {
            stream: Box::new(TcpStream::connect(addr)?),
        })
    }

    /// Binds this connection to `tenant`. `program` is the tenant's
    /// program text — required the first time the name is seen by the
    /// server, ignored on joins.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection (unknown
    /// tenant without a program, unparseable program).
    pub fn open(&mut self, tenant: &str, program: Option<&str>) -> Result<(), ClientError> {
        let mut payload = tenant.as_bytes().to_vec();
        payload.push(b'\n');
        if let Some(text) = program {
            payload.extend_from_slice(text.as_bytes());
        }
        self.request(OP_OPEN, &payload).map(|_| ())
    }

    /// Sends one raw TMP2 frame (header + payload bytes). No round trip:
    /// frames pipeline until a [`sync`](Client::sync) barrier.
    ///
    /// # Errors
    ///
    /// Fails on transport errors only — frame-level verdicts surface in
    /// the next sync's [`Tally`].
    pub fn send_frame(&mut self, frame: &[u8]) -> Result<(), ClientError> {
        write_message(&mut self.stream, OP_FRAME, frame)?;
        Ok(())
    }

    /// Barrier: flushes the pipeline and returns the tenant's tally once
    /// every frame sent before it has been processed.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a server rejection, or an unparseable
    /// tally reply.
    pub fn sync(&mut self) -> Result<Tally, ClientError> {
        let reply = self.request(OP_SYNC, b"")?;
        let text = String::from_utf8_lossy(&reply);
        Tally::from_json(&text)
            .ok_or_else(|| ClientError::Protocol(format!("unparseable tally reply: {text}")))
    }

    /// Asks the tenant to fold its pending tail into a final epoch and
    /// returns the adopted layout in `tempo-layout` text form.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server rejection (e.g. no epochs
    /// observed yet).
    pub fn layout(&mut self) -> Result<String, ClientError> {
        let reply = self.request(OP_LAYOUT, b"")?;
        String::from_utf8(reply)
            .map_err(|_| ClientError::Protocol("layout reply is not UTF-8".to_string()))
    }

    /// Returns the tenant's scoped metrics snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server rejection.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let reply = self.request(OP_STATS, b"")?;
        String::from_utf8(reply)
            .map_err(|_| ClientError::Protocol("stats reply is not UTF-8".to_string()))
    }

    /// Returns the process-global metrics snapshot as JSON. Valid before
    /// [`open`](Client::open).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server rejection.
    pub fn server_stats(&mut self) -> Result<String, ClientError> {
        let reply = self.request(OP_SERVER_STATS, b"")?;
        String::from_utf8(reply)
            .map_err(|_| ClientError::Protocol("server-stats reply is not UTF-8".to_string()))
    }

    /// Asks the server to shut down after current connections drain.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(OP_SHUTDOWN, b"").map(|_| ())
    }

    /// Writes raw bytes straight onto the transport — the hook the fault
    /// injectors ([`tempo-faults`'s `ClientFault`]) use to model clients
    /// that die mid-message or trickle bytes.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    ///
    /// [`tempo-faults`'s `ClientFault`]: crate#observability
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// One request/reply round trip.
    fn request(&mut self, code: u8, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        write_message(&mut self.stream, code, payload)?;
        self.stream.flush()?;
        let Some((status, reply)) = read_message(&mut self.stream)? else {
            return Err(ClientError::Protocol(
                "server closed the connection instead of replying".to_string(),
            ));
        };
        if status == STATUS_OK {
            Ok(reply)
        } else {
            Err(ClientError::Server(
                String::from_utf8_lossy(&reply).into_owned(),
            ))
        }
    }
}

/// Splits a whole on-disk TMP2 v2 stream into its raw frames — each
/// returned slice is exactly one `send_frame` payload (header included,
/// preamble excluded).
///
/// # Errors
///
/// Fails when the bytes are not a structurally valid v2 stream.
pub fn split_frames(bytes: &[u8]) -> io::Result<Vec<&[u8]>> {
    let entries = scan_frames(bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut frames = Vec::with_capacity(entries.len());
    for e in &entries {
        let start = usize::try_from(e.offset)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame offset overflow"))?;
        let end = start + FRAME_HEADER_LEN + e.payload_len as usize;
        frames.push(&bytes[start..end]);
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo::program::ProcId;
    use tempo::trace::v2::{decode_frame, V2Writer};
    use tempo::trace::{Trace, TraceRecord};

    #[test]
    fn split_frames_covers_the_stream_and_each_piece_decodes() {
        let records: Vec<_> = (0..25)
            .map(|i| TraceRecord::new(ProcId::new(i % 5), i + 1))
            .collect();
        let t = Trace::from_records(records);
        let mut buf = Vec::new();
        let mut w = V2Writer::with_frame_records(&mut buf, 10).unwrap();
        for r in t.iter() {
            w.push(r).unwrap();
        }
        w.finish().unwrap();

        let frames = split_frames(&buf).unwrap();
        assert_eq!(frames.len(), 3, "25 records at 10/frame");
        let mut back = Vec::new();
        for f in &frames {
            back.extend(decode_frame(f).unwrap());
        }
        assert_eq!(back, t.records());
    }

    #[test]
    fn split_frames_rejects_garbage() {
        assert!(split_frames(b"not a tmp2 stream").is_err());
    }
}
