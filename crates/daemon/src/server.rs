//! The tempod server: socket accept loop, connection threads, tenant
//! registry, and shutdown.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use tempo::place::PlacementAlgorithm;
use tempo::place::{
    CacheColoring, Gbsc, GbscSetAssoc, PettisHansen, RandomOrder, SourceOrder, TrgChains,
    WcgOffsets,
};
use tempo::program::io::read_program;

use crate::proto::{
    read_message, write_message, OP_FRAME, OP_LAYOUT, OP_OPEN, OP_SERVER_STATS, OP_SHUTDOWN,
    OP_STATS, OP_SYNC, STATUS_ERR, STATUS_OK,
};
use crate::tenant::{self, Job, Response, Tenant};
use crate::DaemonConfig;

/// Resolves a placement algorithm by its CLI name.
fn algorithm_by_name(name: &str) -> Result<Box<dyn PlacementAlgorithm + Send>, String> {
    if let Some(seed) = name.strip_prefix("random:") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("bad random seed in `{name}`"))?;
        return Ok(Box::new(RandomOrder::new(seed)));
    }
    Ok(match name {
        "default" => Box::new(SourceOrder::new()),
        "random" => Box::new(RandomOrder::new(0)),
        "ph" => Box::new(PettisHansen::new()),
        "hkc" => Box::new(CacheColoring::new()),
        "gbsc" => Box::new(Gbsc::new()),
        "gbsc-sa" => Box::new(GbscSetAssoc::new()),
        "trg-chains" => Box::new(TrgChains::new()),
        "wcg-offsets" => Box::new(WcgOffsets::new()),
        other => {
            return Err(format!(
                "unknown algorithm `{other}` (default|random[:SEED]|ph|hkc|gbsc|gbsc-sa|trg-chains|wcg-offsets)"
            ))
        }
    })
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    config: DaemonConfig,
    tenants: Mutex<HashMap<String, Tenant>>,
    stop: AtomicBool,
    /// One closer per *live* connection: shutting the socket down kicks
    /// a connection thread out of a blocked read so shutdown can join
    /// it even when its client never disconnects. Threads remove their
    /// own entry on exit, so the map (and the duplicated descriptors it
    /// holds) stays bounded by live connections.
    closers: Mutex<HashMap<u64, Box<dyn Fn() + Send>>>,
    /// Connection id allocator for the closer map.
    next_conn: std::sync::atomic::AtomicU64,
}

impl Shared {
    fn new(config: DaemonConfig) -> Arc<Shared> {
        Arc::new(Shared {
            config,
            tenants: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            closers: Mutex::new(HashMap::new()),
            next_conn: std::sync::atomic::AtomicU64::new(0),
        })
    }

    fn drop_closer(&self, id: u64) {
        match self.closers.lock() {
            Ok(mut m) => {
                m.remove(&id);
            }
            Err(poisoned) => {
                poisoned.into_inner().remove(&id);
            }
        }
    }
}

/// Where the serve loop listens, kept so a shutdown request can wake the
/// blocking `accept` with a throwaway connection.
enum Endpoint {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener, SocketAddr),
}

/// A bound, not-yet-running daemon.
///
/// Binding and running are split so callers (tests, the CLI) know the
/// socket is accepting before any client starts:
///
/// ```no_run
/// use tempo::cache::CacheConfig;
/// use tempo_daemon::{DaemonConfig, Server};
///
/// let config = DaemonConfig::new(CacheConfig::direct_mapped_8k());
/// let server = Server::bind_unix("/tmp/tempod.sock", config)?;
/// server.run()?; // blocks until a client sends `shutdown`
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Server {
    endpoint: Endpoint,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds a unix-domain socket at `path`, removing a stale socket
    /// file left by a previous run.
    ///
    /// # Errors
    ///
    /// Fails when the path cannot be bound.
    pub fn bind_unix<P: AsRef<Path>>(path: P, config: DaemonConfig) -> std::io::Result<Server> {
        let path = path.as_ref().to_path_buf();
        // A daemon that crashed leaves its socket file behind; binding
        // over it is the expected recovery. Removal failure surfaces as
        // the bind error.
        if path.exists() {
            let _ = std::fs::remove_file(&path);
        }
        let listener = UnixListener::bind(&path)?;
        Ok(Server {
            endpoint: Endpoint::Unix(listener, path),
            shared: Shared::new(config),
        })
    }

    /// Binds a TCP listener at `addr` (e.g. `127.0.0.1:0`).
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn bind_tcp(addr: &str, config: DaemonConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(Server {
            endpoint: Endpoint::Tcp(listener, local),
            shared: Shared::new(config),
        })
    }

    /// The bound TCP address (for `bind_tcp("…:0", …)` callers).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.endpoint {
            Endpoint::Tcp(_, addr) => Some(*addr),
            Endpoint::Unix(..) => None,
        }
    }

    /// Serves until a client sends `shutdown`: accepts connections, one
    /// thread each, then drains connections and joins every tenant
    /// worker before returning.
    ///
    /// # Errors
    ///
    /// Fails on accept-loop I/O errors (per-connection errors are
    /// handled inside their threads).
    pub fn run(self) -> std::io::Result<()> {
        let Server { endpoint, shared } = self;
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        match &endpoint {
            Endpoint::Unix(listener, path) => {
                let wake = path.clone();
                accept_loop(listener, &shared, &mut connections, move || {
                    let _ = UnixStream::connect(&wake);
                });
            }
            Endpoint::Tcp(listener, addr) => {
                let wake = *addr;
                accept_loop(listener, &shared, &mut connections, move || {
                    let _ = TcpStream::connect(wake);
                });
            }
        }
        // Kick still-connected clients off their sockets: a connection
        // blocked in a read would otherwise never exit, and the joins
        // below would wait on it forever.
        let closers: Vec<_> = match shared.closers.lock() {
            Ok(mut m) => m.drain().map(|(_, c)| c).collect(),
            Err(poisoned) => poisoned.into_inner().drain().map(|(_, c)| c).collect(),
        };
        for close in closers {
            close();
        }
        for c in connections {
            let _ = c.join();
        }
        // Dropping the senders disconnects every worker's queue; the
        // workers drain what is left and exit.
        let tenants: Vec<Tenant> = match shared.tenants.lock() {
            Ok(mut map) => map.drain().map(|(_, t)| t).collect(),
            Err(poisoned) => poisoned.into_inner().drain().map(|(_, t)| t).collect(),
        };
        for t in tenants {
            drop(t.sender);
            let _ = t.thread.join();
        }
        if let Endpoint::Unix(_, path) = &endpoint {
            let _ = std::fs::remove_file(path);
        }
        tempo_obs::event("daemon", "server stopped", &[]);
        Ok(())
    }
}

/// Generic accept loop over either listener type.
fn accept_loop<L, S>(
    listener: &L,
    shared: &Arc<Shared>,
    connections: &mut Vec<JoinHandle<()>>,
    wake: impl Fn() + Send + Sync + 'static,
) where
    L: Accept<Stream = S>,
    S: Connection + 'static,
{
    let wake = Arc::new(wake);
    loop {
        let stream = match listener.accept_stream() {
            Ok(s) => s,
            Err(_) if shared.stop.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Some(closer) = stream.closer() {
            match shared.closers.lock() {
                Ok(mut m) => {
                    m.insert(conn_id, closer);
                }
                Err(poisoned) => {
                    poisoned.into_inner().insert(conn_id, closer);
                }
            }
        }
        let shared = Arc::clone(shared);
        let wake = Arc::clone(&wake);
        let spawned = std::thread::Builder::new()
            .name("tempod-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &shared, &*wake);
                shared.drop_closer(conn_id);
            });
        match spawned {
            Ok(handle) => connections.push(handle),
            Err(_) => tempo_obs::counter("daemon.conn_spawn_failed").incr(),
        }
        // Reap finished connection threads so a long-running daemon's
        // handle list stays bounded by its *live* connections.
        let mut i = 0;
        while i < connections.len() {
            if connections[i].is_finished() {
                let _ = connections.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
    }
}

/// The two listener types under one accept call.
trait Accept {
    /// The connection stream this listener yields.
    type Stream;
    /// Accepts one connection.
    fn accept_stream(&self) -> std::io::Result<Self::Stream>;
}

impl Accept for UnixListener {
    type Stream = UnixStream;
    fn accept_stream(&self) -> std::io::Result<UnixStream> {
        self.accept().map(|(s, _)| s)
    }
}

impl Accept for TcpListener {
    type Stream = TcpStream;
    fn accept_stream(&self) -> std::io::Result<TcpStream> {
        self.accept().map(|(s, _)| s)
    }
}

/// A connection stream that can be shut down from another thread.
trait Connection: Read + Write + Send {
    /// A callable that closes this stream out from under a blocked
    /// read, or `None` when the handle cannot be duplicated.
    fn closer(&self) -> Option<Box<dyn Fn() + Send>>;
}

impl Connection for UnixStream {
    fn closer(&self) -> Option<Box<dyn Fn() + Send>> {
        let dup = self.try_clone().ok()?;
        Some(Box::new(move || {
            let _ = dup.shutdown(std::net::Shutdown::Both);
        }))
    }
}

impl Connection for TcpStream {
    fn closer(&self) -> Option<Box<dyn Fn() + Send>> {
        let dup = self.try_clone().ok()?;
        Some(Box::new(move || {
            let _ = dup.shutdown(std::net::Shutdown::Both);
        }))
    }
}

/// One connection's message loop.
fn handle_connection<S: Read + Write>(mut stream: S, shared: &Shared, wake: &dyn Fn()) {
    tempo_obs::counter("daemon.connections").incr();
    // The tenant this connection is bound to, after `open`.
    let mut session: Option<std::sync::mpsc::SyncSender<Job>> = None;
    loop {
        let (code, payload) = match read_message(&mut stream) {
            Ok(Some(m)) => m,
            Ok(None) => break, // clean close between messages
            Err(_) => {
                // The peer died mid-message (or sent garbage lengths):
                // this connection ends, the daemon and its tenants do
                // not.
                tempo_obs::counter("daemon.conn_dropped").incr();
                tempo_obs::event("daemon", "connection dropped mid-message", &[]);
                break;
            }
        };
        tempo_obs::counter("daemon.messages").incr();
        let outcome = match code {
            OP_OPEN => {
                let reply = open_session(&payload, shared, &mut session);
                send_reply(&mut stream, reply)
            }
            OP_FRAME => match &session {
                // Fire-and-forget. A blocking send on a full tenant
                // queue is the backpressure path: this thread stops
                // reading its socket until the engine catches up.
                Some(sender) => match sender.send(Job::Frame(payload)) {
                    Ok(()) => Ok(()),
                    Err(_) => send_reply(
                        &mut stream,
                        Response::Err("tenant worker is gone".to_string()),
                    ),
                },
                None => send_reply(
                    &mut stream,
                    Response::Err("frame before open: bind a tenant first".to_string()),
                ),
            },
            OP_SYNC | OP_LAYOUT | OP_STATS => {
                let reply = query_session(code, &session);
                send_reply(&mut stream, reply)
            }
            OP_SERVER_STATS => send_reply(
                &mut stream,
                Response::Ok(tempo_obs::snapshot().render_json().into_bytes()),
            ),
            OP_SHUTDOWN => {
                tempo_obs::event("daemon", "shutdown requested", &[]);
                let _ = send_reply(&mut stream, Response::Ok(Vec::new()));
                shared.stop.store(true, Ordering::SeqCst);
                wake();
                break;
            }
            other => {
                let _ = send_reply(
                    &mut stream,
                    Response::Err(format!("unknown opcode 0x{other:02x}")),
                );
                break;
            }
        };
        if outcome.is_err() {
            tempo_obs::counter("daemon.conn_dropped").incr();
            break;
        }
    }
}

/// Handles `open`: binds this connection to a tenant, spawning its
/// worker on first sight of the name.
fn open_session(
    payload: &[u8],
    shared: &Shared,
    session: &mut Option<std::sync::mpsc::SyncSender<Job>>,
) -> Response {
    let Ok(text) = std::str::from_utf8(payload) else {
        return Response::Err("open payload is not UTF-8".to_string());
    };
    let (name, program_text) = match text.split_once('\n') {
        Some((n, rest)) => (n.trim(), rest),
        None => (text.trim(), ""),
    };
    if name.is_empty() {
        return Response::Err("open payload names no tenant".to_string());
    }
    let mut tenants = match shared.tenants.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(tenant) = tenants.get(name) {
        *session = Some(tenant.sender.clone());
        return Response::Ok(Vec::new());
    }
    if program_text.trim().is_empty() {
        return Response::Err(format!(
            "unknown tenant `{name}` and no program supplied to create it"
        ));
    }
    let program = match read_program(program_text.as_bytes()) {
        Ok(p) => p,
        Err(e) => return Response::Err(format!("tenant program does not parse: {e}")),
    };
    let algorithm = match algorithm_by_name(&shared.config.algorithm) {
        Ok(a) => a,
        Err(e) => return Response::Err(e),
    };
    let tenant = match tenant::spawn(name, program, algorithm, shared.config.clone()) {
        Ok(t) => t,
        Err(e) => return Response::Err(format!("tenant worker failed to start: {e}")),
    };
    *session = Some(tenant.sender.clone());
    tempo_obs::counter("daemon.tenants").incr();
    tempo_obs::event("daemon", "tenant created", &[("tenant", name.into())]);
    tenants.insert(name.to_string(), tenant);
    Response::Ok(Vec::new())
}

/// Routes a barrier query through the tenant's queue and waits for the
/// worker's reply.
fn query_session(code: u8, session: &Option<std::sync::mpsc::SyncSender<Job>>) -> Response {
    let Some(sender) = session else {
        return Response::Err("request before open: bind a tenant first".to_string());
    };
    let (reply_tx, reply_rx) = sync_channel(1);
    let job = match code {
        OP_SYNC => Job::Sync(reply_tx),
        OP_LAYOUT => Job::Layout(reply_tx),
        _ => Job::Stats(reply_tx),
    };
    if sender.send(job).is_err() {
        return Response::Err("tenant worker is gone".to_string());
    }
    match reply_rx.recv() {
        Ok(r) => r,
        Err(_) => Response::Err("tenant worker dropped the request".to_string()),
    }
}

/// Writes a reply message and flushes it.
fn send_reply<S: Read + Write>(stream: &mut S, response: Response) -> std::io::Result<()> {
    match response {
        Response::Ok(payload) => write_message(stream, STATUS_OK, &payload)?,
        Response::Err(message) => write_message(stream, STATUS_ERR, message.as_bytes())?,
    }
    stream.flush()
}
