//! `tempod`: the multi-tenant placement daemon over the incremental
//! epoch [`Engine`](tempo::Engine).
//!
//! The one-shot CLI pipeline freezes a layout from one training trace;
//! ROADMAP item 1 (motivated by "Modeling the Input History of Programs",
//! PAPERS.md) calls for layouts that *track* live, drifting input
//! streams from many concurrent users. This crate is that server:
//!
//! * **Transport** — a unix-domain socket (TCP optional) carrying
//!   length-delimited messages ([`proto`]). Trace data travels as whole
//!   TMP2 v2 frames, verbatim — the same bytes `tempo-trace` writes to
//!   disk — decoded server-side by
//!   [`decode_frame`](tempo::trace::v2::decode_frame).
//! * **Tenancy** — each tenant name owns one worker thread running one
//!   long-lived incremental [`Engine`](tempo::Engine) (decaying profile
//!   window, drift-triggered re-placement) over the tenant's program.
//!   Any number of connections may feed the same tenant; their frames
//!   interleave in arrival order.
//! * **Backpressure** — every tenant has a *bounded* job queue. When a
//!   tenant's engine falls behind, senders block in `send`, which stops
//!   reading their sockets, which fills the kernel buffers, which stalls
//!   the clients: flow control end to end, no unbounded buffering.
//! * **Admission** — a per-tenant [`Budget`](tempo::place::Budget) is
//!   metered in trace records; frames past the budget are rejected and
//!   tallied, never silently dropped.
//! * **Observability** — each tenant worker holds a
//!   [`tempo_obs::scoped`] registry, so the engine's `engine.*` counters
//!   land per tenant and are served live over the wire
//!   ([`Client::stats`]); connection-level counters (`daemon.*`) land in
//!   the process-global registry ([`Client::server_stats`]).
//!
//! **Equivalence contract** (CI-gated): a single-tenant session fed a
//! whole v2 trace frame-by-frame, then asked for its layout, produces
//! bytes identical to `tempo engine` offline on the same trace with the
//! same settings. This holds because epoch boundaries are reproduced
//! exactly: the offline path plans epochs from frame record counts
//! ([`plan_epochs`](tempo::plan_epochs) folds frames until the target is
//! met), and the worker flushes an epoch whenever the pending records
//! reach the same target after a whole frame — the identical boundaries,
//! computed incrementally. The layout request folds the pending tail
//! into one final epoch, exactly like end-of-source offline.

// In the test build, `unwrap` IS the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]
// The daemon must stay up under every input: errors are replies or
// tallies, never panics.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod client;
pub mod proto;
mod server;
mod tenant;

pub use client::{split_frames, Client, ClientError};
pub use server::Server;
pub use tenant::Tally;

use tempo::cache::CacheConfig;
use tempo::place::Budget;
use tempo::trg::PopularitySelector;
use tempo::EngineConfig;

/// Server-wide configuration; every tenant engine inherits it.
///
/// The defaults match the `tempo engine` CLI defaults exactly — that is
/// what makes the offline-equivalence contract checkable without
/// repeating flags on both sides.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Cache geometry profiled and placed for.
    pub cache: CacheConfig,
    /// Placement algorithm name, resolved per tenant worker
    /// (`default|random[:SEED]|ph|hkc|gbsc|gbsc-sa|trg-chains|wcg-offsets`).
    pub algorithm: String,
    /// Popularity coverage for the first-epoch membership pin.
    pub coverage: f64,
    /// Minimum reference count for popularity membership.
    pub min_count: u64,
    /// Records per epoch (frame-aligned, like the offline plan).
    pub epoch_records: u64,
    /// Window decay in `(0, 1]`; `1.0` keeps everything.
    pub decay: f64,
    /// Drift/adoption threshold of the engine.
    pub replace_threshold: f64,
    /// Per-tenant admission budget, metered in trace records. The
    /// default is unlimited.
    pub budget: Budget,
    /// Bound of each tenant's job queue — the backpressure depth. A full
    /// queue blocks the sending connections instead of buffering.
    pub queue_capacity: usize,
}

impl DaemonConfig {
    /// A config with the `tempo engine` CLI defaults: GBSC, coverage
    /// 0.995 with min count 2, 100k-record epochs, no decay, a 2%
    /// replacement threshold, an unlimited budget, and a 64-job queue.
    pub fn new(cache: CacheConfig) -> Self {
        DaemonConfig {
            cache,
            algorithm: "gbsc".to_string(),
            coverage: 0.995,
            min_count: 2,
            epoch_records: 100_000,
            decay: 1.0,
            replace_threshold: 0.02,
            budget: Budget::unlimited(),
            queue_capacity: 64,
        }
    }

    /// The engine configuration a tenant worker runs with.
    pub(crate) fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig::new(self.cache);
        config.selector =
            PopularitySelector::coverage(self.coverage).with_min_count(self.min_count);
        config.epoch_records = self.epoch_records;
        config.decay = self.decay;
        config.replace_threshold = self.replace_threshold;
        config
    }
}
