//! Per-tenant engine sessions: one worker thread, one incremental
//! [`Engine`], one scoped metrics registry, one bounded job queue.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use tempo::place::{BudgetMeter, PlacementAlgorithm};
use tempo::program::io::write_layout;
use tempo::program::Program;
use tempo::trace::v2::decode_frame;
use tempo::trace::{Trace, TraceRecord};
use tempo::{Engine, MAX_EPOCH_RECORDS};
use tempo_obs::Registry;

use crate::DaemonConfig;

/// One job on a tenant's queue. Frames are fire-and-forget; queries
/// carry a bounded reply channel, and because they ride the same queue
/// they are ordered after every frame sent before them.
pub(crate) enum Job {
    /// One raw TMP2 frame, exactly as received off the wire.
    Frame(Vec<u8>),
    /// Reply with the ingestion tally (a flush barrier).
    Sync(SyncSender<Response>),
    /// Fold the pending tail into a final epoch, reply with the layout.
    Layout(SyncSender<Response>),
    /// Reply with the tenant's scoped metrics snapshot as JSON.
    Stats(SyncSender<Response>),
}

/// What a query job resolves to.
pub(crate) enum Response {
    /// Payload for a [`STATUS_OK`](crate::proto::STATUS_OK) reply.
    Ok(Vec<u8>),
    /// Message for a [`STATUS_ERR`](crate::proto::STATUS_ERR) reply.
    Err(String),
}

/// A tenant's ingestion tally, as reported by a `sync` barrier.
///
/// "Clean" after a faulted client means: every complete frame that
/// arrived was either ingested (`frames`/`records`) or accounted for
/// (`bad_frames`, `budget_rejected`) — a connection dying mid-message
/// never corrupts the tenant, it only ends that connection.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Tally {
    /// Frames decoded and ingested.
    pub frames: u64,
    /// Records those frames carried.
    pub records: u64,
    /// Frames rejected as defective (decode or program validation).
    pub bad_frames: u64,
    /// Frames rejected by the admission budget.
    pub budget_rejected: u64,
    /// Epochs observed by the engine so far.
    pub epochs: u64,
    /// Epochs whose candidate layout was adopted.
    pub replacements: u64,
}

impl Tally {
    /// Renders the tally as a single JSON object (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"frames\":{},\"records\":{},\"bad_frames\":{},\"budget_rejected\":{},\"epochs\":{},\"replacements\":{}}}",
            self.frames,
            self.records,
            self.bad_frames,
            self.budget_rejected,
            self.epochs,
            self.replacements
        )
    }

    /// Parses [`to_json`](Tally::to_json) output back. Returns `None` if
    /// any field is missing or malformed.
    pub fn from_json(text: &str) -> Option<Tally> {
        let field = |name: &str| -> Option<u64> {
            let key = format!("\"{name}\":");
            let at = text.find(&key)? + key.len();
            let digits: String = text[at..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        };
        Some(Tally {
            frames: field("frames")?,
            records: field("records")?,
            bad_frames: field("bad_frames")?,
            budget_rejected: field("budget_rejected")?,
            epochs: field("epochs")?,
            replacements: field("replacements")?,
        })
    }
}

/// A running tenant: the handle connections talk through plus the
/// worker thread for shutdown joining.
pub(crate) struct Tenant {
    /// Bounded job queue — `send` blocking on a full queue IS the
    /// backpressure path.
    pub sender: SyncSender<Job>,
    /// Worker thread, joined at server shutdown.
    pub thread: JoinHandle<()>,
}

/// Spawns a tenant worker. The program and algorithm are resolved by the
/// caller (so an `open` with a bad program fails the request, not the
/// worker).
pub(crate) fn spawn(
    name: &str,
    program: Program,
    algorithm: Box<dyn PlacementAlgorithm + Send>,
    config: DaemonConfig,
) -> std::io::Result<Tenant> {
    let (sender, receiver) = sync_channel(config.queue_capacity.max(1));
    let registry = Arc::new(Registry::new());
    let thread = std::thread::Builder::new()
        .name(format!("tenant-{name}"))
        .spawn(move || run_worker(&program, &*algorithm, &config, &receiver, registry))?;
    Ok(Tenant { sender, thread })
}

/// The worker loop. Exits when every sender is dropped (server
/// shutdown). Holds the tenant's registry scope for its whole life, so
/// everything the engine records — `engine.epochs`, `engine.placements`,
/// profiling counters — lands per tenant.
fn run_worker(
    program: &Program,
    algorithm: &(dyn PlacementAlgorithm + Send),
    config: &DaemonConfig,
    jobs: &Receiver<Job>,
    registry: Arc<Registry>,
) {
    let _scope = tempo_obs::scoped(registry);
    let mut engine = Engine::new(program, algorithm, config.engine_config());
    let meter = BudgetMeter::new(config.budget);
    let mut pending: Vec<TraceRecord> = Vec::new();
    let mut tally = Tally::default();
    // The same epoch target the offline plan uses, under the same
    // buffering ceiling — this is what pins daemon epochs to
    // `plan_epochs` boundaries.
    let target = config.epoch_records.clamp(1, MAX_EPOCH_RECORDS);

    while let Ok(job) = jobs.recv() {
        match job {
            Job::Frame(bytes) => {
                ingest_frame(
                    &bytes,
                    program,
                    &meter,
                    &mut engine,
                    &mut pending,
                    &mut tally,
                    target,
                );
            }
            Job::Sync(reply) => {
                let _ = reply.send(Response::Ok(tally.to_json().into_bytes()));
            }
            Job::Layout(reply) => {
                // End-of-stream semantics: the pending tail becomes one
                // final epoch, exactly like the offline trailing epoch.
                if !pending.is_empty() {
                    observe(&mut engine, &mut pending, &mut tally);
                }
                let _ = reply.send(render_layout(&engine, program));
            }
            Job::Stats(reply) => {
                let _ = reply.send(Response::Ok(
                    tempo_obs::snapshot().render_json().into_bytes(),
                ));
            }
        }
    }
}

/// Decodes, validates, admits, and buffers one frame; flushes an epoch
/// when the pending records reach the target after this whole frame —
/// the incremental reproduction of [`tempo::plan_epochs`] boundaries.
fn ingest_frame(
    bytes: &[u8],
    program: &Program,
    meter: &BudgetMeter,
    engine: &mut Engine<'_>,
    pending: &mut Vec<TraceRecord>,
    tally: &mut Tally,
    target: u64,
) {
    let records = match decode_frame(bytes) {
        Ok(records) => records,
        Err(defect) => {
            tally.bad_frames += 1;
            tempo_obs::counter("daemon.tenant.bad_frames").incr();
            tempo_obs::event(
                "daemon.tenant",
                "defective frame rejected",
                &[("defect", defect.to_string().as_str().into())],
            );
            return;
        }
    };
    // The per-record rule the strict offline reader enforces, applied at
    // frame granularity: one bad record rejects its frame, not the
    // session.
    let fits = records.iter().all(|r| {
        r.proc.as_usize() < program.len() && r.bytes >= 1 && r.bytes <= program.size_of(r.proc)
    });
    if !fits {
        tally.bad_frames += 1;
        tempo_obs::counter("daemon.tenant.bad_frames").incr();
        tempo_obs::event(
            "daemon.tenant",
            "frame rejected: records do not fit the program",
            &[],
        );
        return;
    }
    if meter.charge(records.len() as u64).is_err() {
        tally.budget_rejected += 1;
        tempo_obs::counter("daemon.tenant.budget_rejected").incr();
        tempo_obs::event(
            "daemon.tenant",
            "frame rejected: admission budget exhausted",
            &[("spent", meter.spent().into())],
        );
        return;
    }
    tally.frames += 1;
    tally.records += records.len() as u64;
    tempo_obs::counter("daemon.tenant.frames").incr();
    tempo_obs::counter("daemon.tenant.records").add(records.len() as u64);
    pending.extend(records);
    if pending.len() as u64 >= target {
        observe(engine, pending, tally);
    }
}

/// Flushes the pending records as one epoch.
fn observe(engine: &mut Engine<'_>, pending: &mut Vec<TraceRecord>, tally: &mut Tally) {
    let epoch = Trace::from_records(std::mem::take(pending));
    let report = engine.observe_epoch(&epoch);
    tally.epochs += 1;
    if report.replaced {
        tally.replacements += 1;
    }
}

/// Serializes the engine's current layout, validating it first.
fn render_layout(engine: &Engine<'_>, program: &Program) -> Response {
    let Some(layout) = engine.layout() else {
        return Response::Err("no epochs observed yet; no layout to serve".to_string());
    };
    if let Err(e) = layout.validate(program) {
        return Response::Err(format!("engine produced an invalid layout: {e}"));
    }
    let mut buf = Vec::new();
    match write_layout(&mut buf, layout) {
        Ok(()) => Response::Ok(buf),
        Err(e) => Response::Err(format!("layout serialization failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_json_roundtrips() {
        let t = Tally {
            frames: 12,
            records: 34_567,
            bad_frames: 2,
            budget_rejected: 1,
            epochs: 3,
            replacements: 2,
        };
        assert_eq!(Tally::from_json(&t.to_json()), Some(t));
        assert_eq!(Tally::from_json("{}"), None);
        assert_eq!(Tally::from_json("not json"), None);
    }
}
