//! The tempod wire protocol: length-delimited messages over a byte
//! stream.
//!
//! Both directions use the same framing — one opcode/status byte, a
//! `u32` LE payload length, then the payload:
//!
//! ```text
//! +------+-------------+------------------+
//! | code | len u32 LE  | payload (len B)  |
//! +------+-------------+------------------+
//! ```
//!
//! Requests (client → server):
//!
//! | code | name | payload | reply |
//! |------|------|---------|-------|
//! | [`OP_OPEN`] | open | `tenant\n` + optional program text | empty |
//! | [`OP_FRAME`] | frame | one raw TMP2 frame (header + payload) | **none** (pipelined) |
//! | [`OP_SYNC`] | sync | empty | tenant [`Tally`](crate::Tally) JSON |
//! | [`OP_LAYOUT`] | layout | empty | `tempo-layout` text |
//! | [`OP_STATS`] | stats | empty | tenant metrics snapshot JSON |
//! | [`OP_SERVER_STATS`] | server-stats | empty | global metrics snapshot JSON |
//! | [`OP_SHUTDOWN`] | shutdown | empty | empty (server then stops) |
//!
//! Replies carry [`STATUS_OK`] or [`STATUS_ERR`] (payload = UTF-8
//! message). `frame` deliberately has no reply so a client can pipeline
//! a whole trace without a per-frame round trip; `sync` acts as the
//! ordered barrier that confirms everything before it was ingested.

use std::io::{self, Read, Write};

use tempo::trace::v2::MAX_FRAME_PAYLOAD;

/// Bind a tenant to this connection: payload is the tenant name, one
/// line, optionally followed by the tenant's program text (required the
/// first time the name is seen).
pub const OP_OPEN: u8 = 0x01;
/// One raw TMP2 frame for the connection's tenant. No reply.
pub const OP_FRAME: u8 = 0x02;
/// Barrier: replies with the tenant's ingestion tally once every prior
/// frame on this tenant's queue has been processed.
pub const OP_SYNC: u8 = 0x03;
/// Folds the pending tail into a final epoch (end-of-stream semantics)
/// and replies with the adopted layout in `tempo-layout` text form.
pub const OP_LAYOUT: u8 = 0x04;
/// Replies with the tenant's scoped metrics registry as snapshot JSON.
pub const OP_STATS: u8 = 0x05;
/// Replies with the process-global metrics registry as snapshot JSON.
/// The only request valid before `open`.
pub const OP_SERVER_STATS: u8 = 0x06;
/// Asks the server to stop accepting connections and exit its serve
/// loop once current connections drain.
pub const OP_SHUTDOWN: u8 = 0x07;

/// Reply status: request succeeded, payload is the result.
pub const STATUS_OK: u8 = 0x00;
/// Reply status: request failed, payload is a UTF-8 error message.
pub const STATUS_ERR: u8 = 0x01;

/// Hard bound on any message payload: the largest legal frame message
/// (TMP2 frame header + max payload) plus 1 MiB of headroom for program
/// texts. A declared length beyond this is a protocol violation, not an
/// allocation request — the same discipline as
/// [`MAX_FRAME_PAYLOAD`] itself.
pub const MAX_MESSAGE_LEN: u32 = MAX_FRAME_PAYLOAD + (1 << 20);

/// Writes one message (no flush; callers flush at their barrier points).
///
/// # Errors
///
/// Fails on I/O errors, or on a payload longer than [`MAX_MESSAGE_LEN`].
pub fn write_message<W: Write>(w: &mut W, code: u8, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_MESSAGE_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "message payload of {} bytes over the wire bound",
                    payload.len()
                ),
            )
        })?;
    w.write_all(&[code])?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one message. `Ok(None)` is a clean end of stream (the peer
/// closed between messages); an EOF *inside* a message is an error — the
/// peer died mid-message.
///
/// # Errors
///
/// Fails on I/O errors, truncation inside a message, or a declared
/// length over [`MAX_MESSAGE_LEN`].
pub fn read_message<R: Read>(r: &mut R) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut code = [0u8; 1];
    loop {
        match r.read(&mut code) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_MESSAGE_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared message length {len} over the wire bound"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((code[0], payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_roundtrip() {
        let mut buf = Vec::new();
        write_message(&mut buf, OP_OPEN, b"tenant-a\n").unwrap();
        write_message(&mut buf, OP_SYNC, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(
            read_message(&mut r).unwrap(),
            Some((OP_OPEN, b"tenant-a\n".to_vec()))
        );
        assert_eq!(read_message(&mut r).unwrap(), Some((OP_SYNC, Vec::new())));
        assert_eq!(read_message(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn eof_inside_a_message_is_an_error() {
        let mut buf = Vec::new();
        write_message(&mut buf, OP_FRAME, &[1, 2, 3, 4, 5]).unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            assert!(
                read_message(&mut r).is_err(),
                "cut at {cut} must not look like a clean close"
            );
        }
    }

    #[test]
    fn hostile_length_is_rejected_not_allocated() {
        let mut buf = vec![OP_FRAME];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = buf.as_slice();
        assert!(read_message(&mut r).is_err());
    }
}
