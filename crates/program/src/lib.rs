//! Program model for the **tempo** code-placement toolkit.
//!
//! This crate defines the static view of a program that every other tempo
//! crate builds on:
//!
//! * [`Program`] — an immutable collection of [`Procedure`]s with byte sizes,
//!   built through [`ProgramBuilder`].
//! * [`ProcId`] / [`ChunkId`] — newtyped identifiers for procedures and for
//!   the fixed-size *chunks* that the paper's fine-grained temporal
//!   relationship graph (`TRG_place`) operates on (§4.1 of Gloy et al.,
//!   MICRO-30 1997; the paper found 256-byte chunks to work well).
//! * [`Layout`] — an assignment of a starting byte address to every
//!   procedure, i.e. the *output* of a placement algorithm.
//!
//! # Example
//!
//! ```
//! use tempo_program::{Program, Layout};
//!
//! let program = Program::builder()
//!     .procedure("main", 512)
//!     .procedure("helper", 96)
//!     .build()?;
//!
//! // The default (source-order) layout packs procedures back to back.
//! let layout = Layout::source_order(&program);
//! let main = program.proc_id("main").unwrap();
//! let helper = program.proc_id("helper").unwrap();
//! assert_eq!(layout.addr(main), 0);
//! assert_eq!(layout.addr(helper), 512);
//! # Ok::<(), tempo_program::ProgramError>(())
//! ```

// In the test build, `unwrap` IS the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

mod chunk;
mod error;
mod ids;
pub mod io;
mod layout;
mod procedure;
mod program;

pub use chunk::{ChunkInfo, Chunks};
pub use error::{LayoutError, ProgramError};
pub use ids::{ChunkId, ProcId};
pub use layout::{Layout, LayoutBuilder};
pub use procedure::Procedure;
pub use program::{Program, ProgramBuilder, DEFAULT_CHUNK_SIZE};
