//! Newtyped identifiers for the procedure and chunk index spaces.

use std::fmt;

/// Identifier of a procedure within a [`Program`](crate::Program).
///
/// `ProcId`s are dense indices assigned in the order procedures were added to
/// the [`ProgramBuilder`](crate::ProgramBuilder); they are valid only for the
/// program that produced them.
///
/// ```
/// use tempo_program::ProcId;
/// let p = ProcId::new(3);
/// assert_eq!(p.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(u32);

impl ProcId {
    /// Creates a `ProcId` from a raw dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ProcId(index)
    }

    /// Returns the raw dense index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the raw dense index as a `usize`, convenient for slice access.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProcId({})", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<ProcId> for u32 {
    fn from(id: ProcId) -> u32 {
        id.0
    }
}

/// Identifier of a fixed-size *chunk* of a procedure.
///
/// The paper's fine-grained graph `TRG_place` tracks temporal relationships
/// between 256-byte pieces of procedures rather than whole procedures, so
/// that procedures larger than the cache can still be given a meaningful
/// cache-relative alignment (§4.2). A `ChunkId` is a dense index into the
/// *global* chunk space of a program: chunk ids of procedure `p` are the
/// contiguous range returned by [`Program::chunks_of`](crate::Program::chunks_of).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChunkId(u32);

impl ChunkId {
    /// Creates a `ChunkId` from a raw dense index into the global chunk space.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ChunkId(index)
    }

    /// Returns the raw dense index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the raw dense index as a `usize`, convenient for slice access.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChunkId({})", self.0)
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<ChunkId> for u32 {
    fn from(id: ChunkId) -> u32 {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_roundtrip() {
        let p = ProcId::new(42);
        assert_eq!(p.index(), 42);
        assert_eq!(p.as_usize(), 42);
        assert_eq!(u32::from(p), 42);
        assert_eq!(format!("{p}"), "p42");
        assert_eq!(format!("{p:?}"), "ProcId(42)");
    }

    #[test]
    fn chunk_id_roundtrip() {
        let c = ChunkId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(format!("{c}"), "c7");
        assert_eq!(format!("{c:?}"), "ChunkId(7)");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ProcId::new(1) < ProcId::new(2));
        assert!(ChunkId::new(0) < ChunkId::new(1));
    }

    #[test]
    fn ids_are_default_zero() {
        assert_eq!(ProcId::default(), ProcId::new(0));
        assert_eq!(ChunkId::default(), ChunkId::new(0));
    }
}
