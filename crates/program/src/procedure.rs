//! The [`Procedure`] record.

use std::fmt;

/// A single procedure of a program: a named, contiguous block of code with a
/// fixed byte size.
///
/// Procedures are the unit of placement in this toolkit, exactly as in the
/// paper: a placement algorithm chooses a starting address for each
/// procedure but never reorders code *within* a procedure.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Procedure {
    name: String,
    size: u32,
}

impl Procedure {
    /// Creates a procedure record.
    ///
    /// Sizes are validated when the procedure is added to a
    /// [`ProgramBuilder`](crate::ProgramBuilder), not here, so that the
    /// builder can report the offending name.
    pub fn new(name: impl Into<String>, size: u32) -> Self {
        Procedure {
            name: name.into(),
            size,
        }
    }

    /// The procedure's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The procedure's size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }
}

impl fmt::Debug for Procedure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Procedure({:?}, {} bytes)", self.name, self.size)
    }
}

impl fmt::Display for Procedure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} bytes)", self.name, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Procedure::new("quicksort", 384);
        assert_eq!(p.name(), "quicksort");
        assert_eq!(p.size(), 384);
    }

    #[test]
    fn display_and_debug() {
        let p = Procedure::new("f", 32);
        assert_eq!(p.to_string(), "f (32 bytes)");
        assert_eq!(format!("{p:?}"), "Procedure(\"f\", 32 bytes)");
    }

    #[test]
    fn accepts_string_and_str() {
        let a = Procedure::new(String::from("x"), 1);
        let b = Procedure::new("x", 1);
        assert_eq!(a, b);
    }
}
