//! Error types for program and layout construction.

use std::error::Error;
use std::fmt;

/// Errors produced while building a [`Program`](crate::Program).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgramError {
    /// A procedure was declared with a size of zero bytes.
    ZeroSizedProcedure {
        /// Name of the offending procedure.
        name: String,
    },
    /// Two procedures share the same name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// The chunk size is zero or not a power of two.
    InvalidChunkSize {
        /// The rejected chunk size.
        chunk_size: u32,
    },
    /// The program contains no procedures.
    Empty,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::ZeroSizedProcedure { name } => {
                write!(f, "procedure `{name}` has size zero")
            }
            ProgramError::DuplicateName { name } => {
                write!(f, "duplicate procedure name `{name}`")
            }
            ProgramError::InvalidChunkSize { chunk_size } => {
                write!(f, "chunk size {chunk_size} is not a positive power of two")
            }
            ProgramError::Empty => write!(f, "program contains no procedures"),
        }
    }
}

impl Error for ProgramError {}

/// Errors produced while building or validating a [`Layout`](crate::Layout).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// The layout assigns addresses to a different number of procedures than
    /// the program contains.
    WrongProcedureCount {
        /// Number of procedures in the program.
        expected: usize,
        /// Number of addresses supplied.
        found: usize,
    },
    /// Two procedures overlap in the linear address space.
    Overlap {
        /// First overlapping procedure.
        first: crate::ProcId,
        /// Second overlapping procedure.
        second: crate::ProcId,
    },
    /// An ordering used to build a layout mentioned a procedure twice or
    /// missed one.
    InvalidOrder,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::WrongProcedureCount { expected, found } => write!(
                f,
                "layout covers {found} procedures but program has {expected}"
            ),
            LayoutError::Overlap { first, second } => {
                write!(f, "procedures {first} and {second} overlap in memory")
            }
            LayoutError::InvalidOrder => {
                write!(f, "procedure ordering is not a permutation of the program")
            }
        }
    }
}

impl Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ProgramError::ZeroSizedProcedure {
            name: "f".to_string(),
        };
        assert_eq!(e.to_string(), "procedure `f` has size zero");
        let e = ProgramError::DuplicateName {
            name: "g".to_string(),
        };
        assert!(e.to_string().contains("duplicate"));
        let e = ProgramError::InvalidChunkSize { chunk_size: 3 };
        assert!(e.to_string().contains('3'));
        assert!(ProgramError::Empty.to_string().contains("no procedures"));
    }

    #[test]
    fn layout_error_display() {
        let e = LayoutError::WrongProcedureCount {
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('3'));
        let e = LayoutError::Overlap {
            first: crate::ProcId::new(0),
            second: crate::ProcId::new(1),
        };
        assert!(e.to_string().contains("overlap"));
        assert!(LayoutError::InvalidOrder
            .to_string()
            .contains("permutation"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ProgramError>();
        assert_error::<LayoutError>();
    }
}
