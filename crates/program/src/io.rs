//! Text serialization for programs and layouts.
//!
//! Both formats are line-oriented, human-editable, and round-trip exactly:
//!
//! * **Program** (`.procs`): a header line `tempo-program v1 <chunk_size>`
//!   followed by one `name size` pair per line, in procedure-id order.
//! * **Layout** (`.layout`): a header line `tempo-layout v1` followed by
//!   one `proc_index address` pair per line (any order; indices must be
//!   dense).
//!
//! `#` starts a comment; blank lines are ignored.
//!
//! ```
//! use tempo_program::{Program, Layout};
//! use tempo_program::io::{write_program, read_program};
//!
//! let program = Program::builder().procedure("main", 128).build()?;
//! let mut buf = Vec::new();
//! write_program(&mut buf, &program)?;
//! let back = read_program(buf.as_slice())?;
//! assert_eq!(back, program);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::{Layout, ProcId, Program, ProgramError};

/// Errors produced while reading programs or layouts.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProgramIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Missing or malformed header line.
    BadHeader,
    /// A body line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// The parsed program failed validation.
    Invalid(ProgramError),
    /// A layout line repeats or skips a procedure index.
    BadCoverage,
}

impl fmt::Display for ProgramIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramIoError::Io(e) => write!(f, "i/o error: {e}"),
            ProgramIoError::BadHeader => write!(f, "missing or malformed tempo header"),
            ProgramIoError::BadLine { line } => write!(f, "malformed line {line}"),
            ProgramIoError::Invalid(e) => write!(f, "invalid program: {e}"),
            ProgramIoError::BadCoverage => {
                write!(f, "layout does not cover procedure indices densely")
            }
        }
    }
}

impl Error for ProgramIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProgramIoError::Io(e) => Some(e),
            ProgramIoError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProgramIoError {
    fn from(e: std::io::Error) -> Self {
        ProgramIoError::Io(e)
    }
}

impl From<ProgramError> for ProgramIoError {
    fn from(e: ProgramError) -> Self {
        ProgramIoError::Invalid(e)
    }
}

/// Writes a program in the text format.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_program<W: Write>(mut w: W, program: &Program) -> Result<(), ProgramIoError> {
    writeln!(w, "tempo-program v1 {}", program.chunk_size())?;
    for (_, p) in program.iter() {
        writeln!(w, "{} {}", p.name(), p.size())?;
    }
    Ok(())
}

/// Reads a program in the text format.
///
/// # Errors
///
/// Fails on I/O errors, a bad header, unparsable lines, or a program that
/// fails validation (duplicate names, zero sizes, ...).
pub fn read_program<R: BufRead>(r: R) -> Result<Program, ProgramIoError> {
    let mut lines = r.lines();
    let header = loop {
        match lines.next() {
            None => return Err(ProgramIoError::BadHeader),
            Some(line) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('#') {
                    break t.to_string();
                }
            }
        }
    };
    let mut parts = header.split_whitespace();
    if parts.next() != Some("tempo-program") || parts.next() != Some("v1") {
        return Err(ProgramIoError::BadHeader);
    }
    let chunk_size: u32 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ProgramIoError::BadHeader)?;

    let mut builder = Program::builder();
    builder.chunk_size(chunk_size);
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let (Some(name), Some(size), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(ProgramIoError::BadLine { line: lineno + 2 });
        };
        let size: u32 = size
            .parse()
            .map_err(|_| ProgramIoError::BadLine { line: lineno + 2 })?;
        builder.procedure(name, size);
    }
    Ok(builder.build()?)
}

/// Writes a layout in the text format.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_layout<W: Write>(mut w: W, layout: &Layout) -> Result<(), ProgramIoError> {
    writeln!(w, "tempo-layout v1")?;
    // Emit in address order so the file reads as a memory map.
    for id in layout.order() {
        writeln!(w, "{} {}", id.index(), layout.addr(id))?;
    }
    Ok(())
}

/// Reads a layout in the text format.
///
/// # Errors
///
/// Fails on I/O errors, a bad header, unparsable lines, or non-dense
/// procedure indices.
pub fn read_layout<R: BufRead>(r: R) -> Result<Layout, ProgramIoError> {
    let mut entries: Vec<(u32, u64)> = Vec::new();
    let mut saw_header = false;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if !saw_header {
            if t != "tempo-layout v1" {
                return Err(ProgramIoError::BadHeader);
            }
            saw_header = true;
            continue;
        }
        let mut parts = t.split_whitespace();
        let (Some(idx), Some(addr), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(ProgramIoError::BadLine { line: lineno + 1 });
        };
        let idx: u32 = idx
            .parse()
            .map_err(|_| ProgramIoError::BadLine { line: lineno + 1 })?;
        let addr: u64 = addr
            .parse()
            .map_err(|_| ProgramIoError::BadLine { line: lineno + 1 })?;
        entries.push((idx, addr));
    }
    if !saw_header {
        return Err(ProgramIoError::BadHeader);
    }
    let mut addrs = vec![u64::MAX; entries.len()];
    for (idx, addr) in entries {
        let slot = addrs
            .get_mut(idx as usize)
            .ok_or(ProgramIoError::BadCoverage)?;
        if *slot != u64::MAX {
            return Err(ProgramIoError::BadCoverage);
        }
        *slot = addr;
    }
    // u64::MAX is not a plausible address; any leftover means a gap.
    if addrs.contains(&u64::MAX) {
        return Err(ProgramIoError::BadCoverage);
    }
    Ok(Layout::from_addresses(addrs))
}

/// Convenience: the id-ordered `(name, addr)` pairs of a layout for
/// reporting (e.g. producing linker scripts).
pub fn layout_map(program: &Program, layout: &Layout) -> Vec<(String, u64)> {
    layout
        .order()
        .into_iter()
        .map(|id: ProcId| (program.proc(id).name().to_string(), layout.addr(id)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        Program::builder()
            .procedure("alpha", 100)
            .procedure("beta", 200)
            .chunk_size(128)
            .build()
            .unwrap()
    }

    #[test]
    fn program_roundtrip_preserves_chunk_size() {
        let p = program();
        let mut buf = Vec::new();
        write_program(&mut buf, &p).unwrap();
        let back = read_program(buf.as_slice()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.chunk_size(), 128);
    }

    #[test]
    fn program_reader_skips_comments() {
        let src = "# comment\n\ntempo-program v1 256\nf 10\n# another\ng 20\n";
        let p = read_program(src.as_bytes()).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.proc_id("g").unwrap().index(), 1);
    }

    #[test]
    fn program_reader_rejects_bad_input() {
        assert!(matches!(
            read_program("nonsense\n".as_bytes()).unwrap_err(),
            ProgramIoError::BadHeader
        ));
        assert!(matches!(
            read_program("tempo-program v1 256\nf\n".as_bytes()).unwrap_err(),
            ProgramIoError::BadLine { line: 2 }
        ));
        assert!(matches!(
            read_program("tempo-program v1 256\nf ten\n".as_bytes()).unwrap_err(),
            ProgramIoError::BadLine { .. }
        ));
        assert!(matches!(
            read_program("tempo-program v1 256\nf 0\n".as_bytes()).unwrap_err(),
            ProgramIoError::Invalid(_)
        ));
        assert!(matches!(
            read_program("tempo-program v1 256\n".as_bytes()).unwrap_err(),
            ProgramIoError::Invalid(ProgramError::Empty)
        ));
    }

    #[test]
    fn layout_roundtrip() {
        let p = program();
        let l = Layout::from_addresses(vec![200, 0]);
        l.validate(&p).unwrap();
        let mut buf = Vec::new();
        write_layout(&mut buf, &l).unwrap();
        let back = read_layout(buf.as_slice()).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn layout_file_is_in_address_order() {
        let l = Layout::from_addresses(vec![500, 0, 100]);
        let mut buf = Vec::new();
        write_layout(&mut buf, &l).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let body: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(body, vec!["1 0", "2 100", "0 500"]);
    }

    #[test]
    fn layout_reader_rejects_gaps_and_duplicates() {
        assert!(matches!(
            read_layout("tempo-layout v1\n0 0\n0 10\n".as_bytes()).unwrap_err(),
            ProgramIoError::BadCoverage
        ));
        assert!(matches!(
            read_layout("tempo-layout v1\n0 0\n2 10\n".as_bytes()).unwrap_err(),
            ProgramIoError::BadCoverage
        ));
        assert!(matches!(
            read_layout("".as_bytes()).unwrap_err(),
            ProgramIoError::BadHeader
        ));
        assert!(matches!(
            read_layout("tempo-layout v1\nx y\n".as_bytes()).unwrap_err(),
            ProgramIoError::BadLine { .. }
        ));
    }

    #[test]
    fn layout_map_names_addresses() {
        let p = program();
        let l = Layout::from_addresses(vec![200, 0]);
        let map = layout_map(&p, &l);
        assert_eq!(
            map,
            vec![("beta".to_string(), 0), ("alpha".to_string(), 200)]
        );
    }

    #[test]
    fn error_display() {
        assert!(ProgramIoError::BadHeader.to_string().contains("header"));
        assert!(ProgramIoError::BadLine { line: 3 }
            .to_string()
            .contains('3'));
        assert!(ProgramIoError::BadCoverage.to_string().contains("densely"));
    }
}
