//! Linear memory layouts: the output of a placement algorithm.

use std::fmt;

use crate::{LayoutError, ProcId, Program};

/// A linear code layout: a starting byte address for every procedure of a
/// program.
///
/// A `Layout` is what a placement algorithm produces and what the cache
/// simulator consumes. It is deliberately independent of the [`Program`] it
/// was created for (it stores only addresses); pair it with the program when
/// querying sizes or validating.
///
/// # Example
///
/// ```
/// use tempo_program::{Program, Layout};
///
/// let program = Program::builder()
///     .procedure("a", 64)
///     .procedure("b", 32)
///     .build()?;
/// // Reverse order with a 128-byte gap between the procedures.
/// let layout = Layout::from_addresses(vec![160, 0]);
/// layout.validate(&program)?;
/// assert_eq!(layout.addr(program.proc_id("b").unwrap()), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Layout {
    /// Start address of each procedure, indexed by `ProcId`.
    addrs: Vec<u64>,
}

impl Layout {
    /// Builds the compiler-default layout: procedures packed back to back in
    /// source (id) order starting at address 0.
    ///
    /// This is the baseline layout the paper compares every algorithm
    /// against ("the default code layout produced by most compilers places
    /// procedures in the order in which they were listed in the source
    /// files", §1).
    pub fn source_order(program: &Program) -> Layout {
        let mut addrs = Vec::with_capacity(program.len());
        let mut next = 0u64;
        for id in program.ids() {
            addrs.push(next);
            next += u64::from(program.size_of(id));
        }
        Layout { addrs }
    }

    /// Builds a layout that packs procedures back to back in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidOrder`] if `order` is not a permutation
    /// of the program's procedure ids.
    pub fn from_order(program: &Program, order: &[ProcId]) -> Result<Layout, LayoutError> {
        if order.len() != program.len() {
            return Err(LayoutError::InvalidOrder);
        }
        let mut addrs = vec![u64::MAX; program.len()];
        let mut next = 0u64;
        for &id in order {
            if id.as_usize() >= addrs.len() || addrs[id.as_usize()] != u64::MAX {
                return Err(LayoutError::InvalidOrder);
            }
            addrs[id.as_usize()] = next;
            next += u64::from(program.size_of(id));
        }
        Ok(Layout { addrs })
    }

    /// Creates a layout directly from per-procedure start addresses,
    /// indexed by procedure id.
    ///
    /// No validation is performed here; call [`Layout::validate`] to check
    /// the layout against a program.
    pub fn from_addresses(addrs: Vec<u64>) -> Layout {
        Layout { addrs }
    }

    /// Number of procedures covered by this layout.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Returns `true` if the layout covers no procedures.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Start address of a procedure.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this layout.
    #[inline]
    pub fn addr(&self, id: ProcId) -> u64 {
        self.addrs[id.as_usize()]
    }

    /// One-past-the-end address of a procedure under `program`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn end_addr(&self, id: ProcId, program: &Program) -> u64 {
        self.addr(id) + u64::from(program.size_of(id))
    }

    /// The highest one-past-the-end address in the layout (its total span),
    /// or 0 for an empty layout.
    pub fn span(&self, program: &Program) -> u64 {
        program
            .ids()
            .map(|id| self.end_addr(id, program))
            .max()
            .unwrap_or(0)
    }

    /// Total bytes of padding: span minus total code size. Meaningful only
    /// for valid (non-overlapping) layouts.
    pub fn padding(&self, program: &Program) -> u64 {
        self.span(program).saturating_sub(program.total_size())
    }

    /// Procedure ids sorted by start address (ties by id).
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn order(&self) -> Vec<ProcId> {
        let mut ids: Vec<ProcId> = (0..self.addrs.len() as u32).map(ProcId::new).collect();
        ids.sort_by_key(|id| (self.addrs[id.as_usize()], id.index()));
        ids
    }

    /// Checks that the layout covers exactly the program's procedures and
    /// that no two procedures overlap in memory.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, program: &Program) -> Result<(), LayoutError> {
        if self.addrs.len() != program.len() {
            return Err(LayoutError::WrongProcedureCount {
                expected: program.len(),
                found: self.addrs.len(),
            });
        }
        let order = self.order();
        for pair in order.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if self.end_addr(a, program) > self.addr(b) {
                return Err(LayoutError::Overlap {
                    first: a,
                    second: b,
                });
            }
        }
        Ok(())
    }

    /// Returns a copy of this layout with `pad` extra bytes inserted after
    /// every procedure (preserving order), as in the paper's §5.1
    /// perturbation anecdote where padding each procedure by one cache line
    /// changed perl's miss rate from 3.8% to 5.4%.
    pub fn with_uniform_padding(&self, program: &Program, pad: u64) -> Layout {
        let order = self.order();
        let mut addrs = vec![0u64; self.addrs.len()];
        let mut next = 0u64;
        for &id in &order {
            addrs[id.as_usize()] = next;
            next += u64::from(program.size_of(id)) + pad;
        }
        Layout { addrs }
    }
}

impl fmt::Debug for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Layout({} procedures)", self.addrs.len())
    }
}

/// Incremental builder for a [`Layout`], appending procedures at explicit
/// addresses or packing them after the current end.
///
/// # Example
///
/// ```
/// use tempo_program::{Program, LayoutBuilder, ProcId};
///
/// let program = Program::builder()
///     .procedure("a", 64)
///     .procedure("b", 32)
///     .build()?;
/// let mut b = LayoutBuilder::new(&program);
/// b.place_at(ProcId::new(1), 0);
/// b.append(ProcId::new(0)); // packed right after `b`
/// let layout = b.build()?;
/// assert_eq!(layout.addr(ProcId::new(0)), 32);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct LayoutBuilder<'p> {
    program: &'p Program,
    addrs: Vec<Option<u64>>,
    cursor: u64,
}

impl<'p> LayoutBuilder<'p> {
    /// Creates a builder with no procedures placed and the cursor at 0.
    pub fn new(program: &'p Program) -> Self {
        LayoutBuilder {
            program,
            addrs: vec![None; program.len()],
            cursor: 0,
        }
    }

    /// The current append cursor (one past the highest placed byte).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Returns `true` if the procedure has already been placed.
    pub fn is_placed(&self, id: ProcId) -> bool {
        self.addrs[id.as_usize()].is_some()
    }

    /// Number of procedures placed so far.
    pub fn placed_count(&self) -> usize {
        self.addrs.iter().filter(|a| a.is_some()).count()
    }

    /// Places a procedure at an explicit address, advancing the cursor if the
    /// procedure extends past it. Re-placing a procedure overwrites its
    /// previous address.
    pub fn place_at(&mut self, id: ProcId, addr: u64) -> &mut Self {
        self.addrs[id.as_usize()] = Some(addr);
        self.cursor = self.cursor.max(addr + u64::from(self.program.size_of(id)));
        self
    }

    /// Places a procedure at the current cursor.
    pub fn append(&mut self, id: ProcId) -> &mut Self {
        let at = self.cursor;
        self.place_at(id, at)
    }

    /// Moves the cursor forward to `addr` (no-op if already past it).
    pub fn advance_to(&mut self, addr: u64) -> &mut Self {
        self.cursor = self.cursor.max(addr);
        self
    }

    /// Finalizes the layout.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::WrongProcedureCount`] if any procedure was
    /// never placed, or [`LayoutError::Overlap`] if two procedures overlap.
    pub fn build(&self) -> Result<Layout, LayoutError> {
        let placed = self.placed_count();
        if placed != self.addrs.len() {
            return Err(LayoutError::WrongProcedureCount {
                expected: self.addrs.len(),
                found: placed,
            });
        }
        let layout = Layout {
            addrs: self
                .addrs
                .iter()
                .map(|a| a.expect("all procedures placed, checked above"))
                .collect(),
        };
        layout.validate(self.program)?;
        Ok(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog() -> Program {
        Program::builder()
            .procedure("a", 100)
            .procedure("b", 50)
            .procedure("c", 200)
            .build()
            .unwrap()
    }

    #[test]
    fn source_order_packs_contiguously() {
        let p = prog();
        let l = Layout::source_order(&p);
        assert_eq!(l.addr(ProcId::new(0)), 0);
        assert_eq!(l.addr(ProcId::new(1)), 100);
        assert_eq!(l.addr(ProcId::new(2)), 150);
        assert_eq!(l.span(&p), 350);
        assert_eq!(l.padding(&p), 0);
        l.validate(&p).unwrap();
    }

    #[test]
    fn from_order_respects_permutation() {
        let p = prog();
        let order = vec![ProcId::new(2), ProcId::new(0), ProcId::new(1)];
        let l = Layout::from_order(&p, &order).unwrap();
        assert_eq!(l.addr(ProcId::new(2)), 0);
        assert_eq!(l.addr(ProcId::new(0)), 200);
        assert_eq!(l.addr(ProcId::new(1)), 300);
        assert_eq!(l.order(), order);
    }

    #[test]
    fn from_order_rejects_bad_permutations() {
        let p = prog();
        assert_eq!(
            Layout::from_order(&p, &[ProcId::new(0)]).unwrap_err(),
            LayoutError::InvalidOrder
        );
        assert_eq!(
            Layout::from_order(&p, &[ProcId::new(0), ProcId::new(0), ProcId::new(1)]).unwrap_err(),
            LayoutError::InvalidOrder
        );
        assert_eq!(
            Layout::from_order(&p, &[ProcId::new(0), ProcId::new(1), ProcId::new(9)]).unwrap_err(),
            LayoutError::InvalidOrder
        );
    }

    #[test]
    fn validate_detects_overlap() {
        let p = prog();
        let l = Layout::from_addresses(vec![0, 99, 200]); // a ends at 100 > 99
        assert_eq!(
            l.validate(&p).unwrap_err(),
            LayoutError::Overlap {
                first: ProcId::new(0),
                second: ProcId::new(1)
            }
        );
    }

    #[test]
    fn validate_detects_wrong_count() {
        let p = prog();
        let l = Layout::from_addresses(vec![0, 100]);
        assert!(matches!(
            l.validate(&p).unwrap_err(),
            LayoutError::WrongProcedureCount {
                expected: 3,
                found: 2
            }
        ));
    }

    #[test]
    fn gaps_count_as_padding() {
        let p = prog();
        let l = Layout::from_addresses(vec![0, 200, 300]); // 100-byte gap after a
        l.validate(&p).unwrap();
        assert_eq!(l.span(&p), 500);
        assert_eq!(l.padding(&p), 150);
    }

    #[test]
    fn uniform_padding_inserts_per_procedure_gap() {
        let p = prog();
        let l = Layout::source_order(&p).with_uniform_padding(&p, 32);
        assert_eq!(l.addr(ProcId::new(0)), 0);
        assert_eq!(l.addr(ProcId::new(1)), 132);
        assert_eq!(l.addr(ProcId::new(2)), 214);
        l.validate(&p).unwrap();
    }

    #[test]
    fn uniform_padding_preserves_relative_order() {
        let p = prog();
        let scrambled = Layout::from_addresses(vec![600, 0, 200]);
        scrambled.validate(&p).unwrap();
        let padded = scrambled.with_uniform_padding(&p, 64);
        padded.validate(&p).unwrap();
        assert_eq!(padded.order(), scrambled.order());
        // Exactly 64 bytes after each procedure.
        let order = padded.order();
        for pair in order.windows(2) {
            let gap = padded.addr(pair[1]) - padded.end_addr(pair[0], &p);
            assert_eq!(gap, 64);
        }
    }

    #[test]
    fn builder_places_and_appends() {
        let p = prog();
        let mut b = LayoutBuilder::new(&p);
        assert_eq!(b.placed_count(), 0);
        b.place_at(ProcId::new(1), 0);
        assert!(b.is_placed(ProcId::new(1)));
        b.append(ProcId::new(0));
        b.advance_to(1000);
        b.append(ProcId::new(2));
        let l = b.build().unwrap();
        assert_eq!(l.addr(ProcId::new(1)), 0);
        assert_eq!(l.addr(ProcId::new(0)), 50);
        assert_eq!(l.addr(ProcId::new(2)), 1000);
    }

    #[test]
    fn builder_rejects_incomplete() {
        let p = prog();
        let mut b = LayoutBuilder::new(&p);
        b.append(ProcId::new(0));
        assert!(matches!(
            b.build().unwrap_err(),
            LayoutError::WrongProcedureCount { .. }
        ));
    }

    #[test]
    fn builder_rejects_overlap() {
        let p = prog();
        let mut b = LayoutBuilder::new(&p);
        b.place_at(ProcId::new(0), 0);
        b.place_at(ProcId::new(1), 10);
        b.place_at(ProcId::new(2), 1000);
        assert!(matches!(
            b.build().unwrap_err(),
            LayoutError::Overlap { .. }
        ));
    }
}
