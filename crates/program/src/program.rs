//! The [`Program`] collection and its builder.

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

use crate::{ChunkId, ProcId, Procedure, ProgramError};

/// Default chunk size in bytes for fine-grained temporal profiling.
///
/// The paper reports that "a chunk size of 256 bytes works well" (§4.1).
pub const DEFAULT_CHUNK_SIZE: u32 = 256;

/// An immutable program: a list of procedures plus the derived chunk index.
///
/// Build one with [`Program::builder`]. Procedure ids are dense and assigned
/// in insertion order; the *source order* of procedures (the order an
/// unoptimizing linker would emit them in) is exactly id order.
///
/// # Example
///
/// ```
/// use tempo_program::Program;
///
/// let program = Program::builder()
///     .procedure("a", 300)
///     .procedure("b", 256)
///     .chunk_size(256)
///     .build()?;
///
/// assert_eq!(program.len(), 2);
/// let a = program.proc_id("a").unwrap();
/// // 300 bytes => two 256-byte chunks (the second holds the 44-byte tail).
/// assert_eq!(program.chunks_of(a).len(), 2);
/// # Ok::<(), tempo_program::ProgramError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Program {
    procs: Vec<Procedure>,
    names: HashMap<String, ProcId>,
    chunk_size: u32,
    /// `chunk_base[i]` is the global index of the first chunk of procedure
    /// `i`; `chunk_base[len]` is the total chunk count.
    chunk_base: Vec<u32>,
    total_size: u64,
}

impl Program {
    /// Starts building a program.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::new()
    }

    /// Number of procedures.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Returns `true` if the program has no procedures.
    ///
    /// Note that [`ProgramBuilder::build`] rejects empty programs, so this is
    /// always `false` for programs built through the builder; it exists for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Total code size in bytes (sum of all procedure sizes).
    pub fn total_size(&self) -> u64 {
        self.total_size
    }

    /// The chunk size, in bytes, used to derive the chunk index.
    pub fn chunk_size(&self) -> u32 {
        self.chunk_size
    }

    /// The procedure with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn proc(&self, id: ProcId) -> &Procedure {
        &self.procs[id.as_usize()]
    }

    /// Size in bytes of the procedure with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn size_of(&self, id: ProcId) -> u32 {
        self.procs[id.as_usize()].size()
    }

    /// Looks up a procedure id by name.
    pub fn proc_id(&self, name: &str) -> Option<ProcId> {
        self.names.get(name).copied()
    }

    /// Iterates over `(ProcId, &Procedure)` pairs in id order.
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (ProcId, &Procedure)> + '_ {
        self.procs
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcId::new(i as u32), p))
    }

    /// Iterates over all procedure ids in id order.
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn ids(&self) -> impl ExactSizeIterator<Item = ProcId> + DoubleEndedIterator {
        (0..self.procs.len() as u32).map(ProcId::new)
    }

    /// Total number of chunks across all procedures.
    pub fn chunk_count(&self) -> u32 {
        *self.chunk_base.last().expect("chunk_base is never empty")
    }

    /// Global chunk-id range of the given procedure.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn chunks_of(&self, id: ProcId) -> Range<u32> {
        let i = id.as_usize();
        self.chunk_base[i]..self.chunk_base[i + 1]
    }

    /// The procedure owning a global chunk id, and the chunk's ordinal within
    /// that procedure.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range for this program.
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn chunk_owner(&self, chunk: ChunkId) -> (ProcId, u32) {
        let c = chunk.index();
        assert!(c < self.chunk_count(), "chunk id out of range");
        // chunk_base is sorted; find the procedure whose range contains c.
        let i = match self.chunk_base.binary_search(&c) {
            Ok(mut i) => {
                // Exact hits may land on an empty-range boundary shared by
                // several procedures; walk forward to the owner (the entry
                // whose range is non-empty).
                while self.chunk_base[i + 1] == c {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        (ProcId::new(i as u32), c - self.chunk_base[i])
    }

    /// Size in bytes of a chunk (the last chunk of a procedure may be a
    /// short tail).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range for this program.
    pub fn chunk_len(&self, chunk: ChunkId) -> u32 {
        let (owner, ordinal) = self.chunk_owner(chunk);
        let size = self.size_of(owner);
        let start = ordinal * self.chunk_size;
        (size - start).min(self.chunk_size)
    }

    /// The global chunk id covering byte `offset` of procedure `id`.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= size_of(id)`.
    pub fn chunk_at(&self, id: ProcId, offset: u32) -> ChunkId {
        assert!(offset < self.size_of(id), "offset beyond procedure end");
        ChunkId::new(self.chunk_base[id.as_usize()] + offset / self.chunk_size)
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Program({} procedures, {} bytes, {}-byte chunks)",
            self.procs.len(),
            self.total_size,
            self.chunk_size
        )
    }
}

/// Builder for [`Program`].
///
/// Procedures receive dense ids in the order they are added.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    procs: Vec<Procedure>,
    chunk_size: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder with the default 256-byte chunk size.
    pub fn new() -> Self {
        ProgramBuilder {
            procs: Vec::new(),
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// Adds a procedure; its id will be the number of procedures added so far.
    pub fn procedure(&mut self, name: impl Into<String>, size: u32) -> &mut Self {
        self.procs.push(Procedure::new(name, size));
        self
    }

    /// Adds an already-constructed [`Procedure`].
    pub fn push(&mut self, proc: Procedure) -> &mut Self {
        self.procs.push(proc);
        self
    }

    /// Overrides the chunk size (bytes). Must be a positive power of two.
    pub fn chunk_size(&mut self, chunk_size: u32) -> &mut Self {
        self.chunk_size = chunk_size;
        self
    }

    /// Finalizes the program.
    ///
    /// # Errors
    ///
    /// Returns an error if the program is empty, a procedure has size zero,
    /// two procedures share a name, or the chunk size is not a positive
    /// power of two.
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn build(&self) -> Result<Program, ProgramError> {
        if self.procs.is_empty() {
            return Err(ProgramError::Empty);
        }
        if self.chunk_size == 0 || !self.chunk_size.is_power_of_two() {
            return Err(ProgramError::InvalidChunkSize {
                chunk_size: self.chunk_size,
            });
        }
        let mut names = HashMap::with_capacity(self.procs.len());
        for (i, p) in self.procs.iter().enumerate() {
            if p.size() == 0 {
                return Err(ProgramError::ZeroSizedProcedure {
                    name: p.name().to_string(),
                });
            }
            if names
                .insert(p.name().to_string(), ProcId::new(i as u32))
                .is_some()
            {
                return Err(ProgramError::DuplicateName {
                    name: p.name().to_string(),
                });
            }
        }
        let mut chunk_base = Vec::with_capacity(self.procs.len() + 1);
        let mut next = 0u32;
        let mut total = 0u64;
        for p in &self.procs {
            chunk_base.push(next);
            next += p.size().div_ceil(self.chunk_size);
            total += u64::from(p.size());
        }
        chunk_base.push(next);
        Ok(Program {
            procs: self.procs.clone(),
            names,
            chunk_size: self.chunk_size,
            chunk_base,
            total_size: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_proc_program() -> Program {
        Program::builder()
            .procedure("a", 100)
            .procedure("b", 256)
            .procedure("c", 600)
            .build()
            .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let p = three_proc_program();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.total_size(), 956);
        assert_eq!(p.chunk_size(), DEFAULT_CHUNK_SIZE);
        let b = p.proc_id("b").unwrap();
        assert_eq!(p.proc(b).name(), "b");
        assert_eq!(p.size_of(b), 256);
        assert!(p.proc_id("nope").is_none());
    }

    #[test]
    fn ids_follow_insertion_order() {
        let p = three_proc_program();
        let ids: Vec<_> = p.ids().collect();
        assert_eq!(ids, vec![ProcId::new(0), ProcId::new(1), ProcId::new(2)]);
        let names: Vec<_> = p.iter().map(|(_, pr)| pr.name().to_string()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn chunk_index_shapes() {
        let p = three_proc_program();
        // a: 100 bytes -> 1 chunk; b: 256 -> 1 chunk; c: 600 -> 3 chunks.
        assert_eq!(p.chunk_count(), 5);
        assert_eq!(p.chunks_of(ProcId::new(0)), 0..1);
        assert_eq!(p.chunks_of(ProcId::new(1)), 1..2);
        assert_eq!(p.chunks_of(ProcId::new(2)), 2..5);
    }

    #[test]
    fn chunk_owner_and_len() {
        let p = three_proc_program();
        assert_eq!(p.chunk_owner(ChunkId::new(0)), (ProcId::new(0), 0));
        assert_eq!(p.chunk_owner(ChunkId::new(1)), (ProcId::new(1), 0));
        assert_eq!(p.chunk_owner(ChunkId::new(2)), (ProcId::new(2), 0));
        assert_eq!(p.chunk_owner(ChunkId::new(4)), (ProcId::new(2), 2));
        assert_eq!(p.chunk_len(ChunkId::new(0)), 100);
        assert_eq!(p.chunk_len(ChunkId::new(1)), 256);
        assert_eq!(p.chunk_len(ChunkId::new(2)), 256);
        assert_eq!(p.chunk_len(ChunkId::new(4)), 88); // 600 - 512
    }

    #[test]
    fn chunk_at_maps_offsets() {
        let p = three_proc_program();
        let c = ProcId::new(2);
        assert_eq!(p.chunk_at(c, 0), ChunkId::new(2));
        assert_eq!(p.chunk_at(c, 255), ChunkId::new(2));
        assert_eq!(p.chunk_at(c, 256), ChunkId::new(3));
        assert_eq!(p.chunk_at(c, 599), ChunkId::new(4));
    }

    #[test]
    #[should_panic(expected = "offset beyond procedure end")]
    fn chunk_at_rejects_out_of_range() {
        let p = three_proc_program();
        p.chunk_at(ProcId::new(0), 100);
    }

    #[test]
    fn build_rejects_empty() {
        assert_eq!(Program::builder().build().unwrap_err(), ProgramError::Empty);
    }

    #[test]
    fn build_rejects_zero_size() {
        let err = Program::builder().procedure("z", 0).build().unwrap_err();
        assert_eq!(
            err,
            ProgramError::ZeroSizedProcedure {
                name: "z".to_string()
            }
        );
    }

    #[test]
    fn build_rejects_duplicate_names() {
        let err = Program::builder()
            .procedure("f", 1)
            .procedure("f", 2)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ProgramError::DuplicateName {
                name: "f".to_string()
            }
        );
    }

    #[test]
    fn build_rejects_bad_chunk_size() {
        let err = Program::builder()
            .procedure("f", 1)
            .chunk_size(100)
            .build()
            .unwrap_err();
        assert_eq!(err, ProgramError::InvalidChunkSize { chunk_size: 100 });
        let err = Program::builder()
            .procedure("f", 1)
            .chunk_size(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ProgramError::InvalidChunkSize { chunk_size: 0 });
    }

    #[test]
    fn custom_chunk_size() {
        let p = Program::builder()
            .procedure("f", 100)
            .chunk_size(32)
            .build()
            .unwrap();
        assert_eq!(p.chunk_count(), 4); // ceil(100/32)
        assert_eq!(p.chunk_len(ChunkId::new(3)), 4);
    }

    #[test]
    fn tiny_procedures_each_get_one_chunk() {
        let p = Program::builder()
            .procedure("a", 1)
            .procedure("b", 1)
            .procedure("c", 1)
            .build()
            .unwrap();
        assert_eq!(p.chunk_count(), 3);
        for (i, id) in p.ids().enumerate() {
            assert_eq!(p.chunks_of(id), (i as u32)..(i as u32 + 1));
            assert_eq!(p.chunk_owner(ChunkId::new(i as u32)).0, id);
        }
    }
}
