//! Iteration over the global chunk space of a [`Program`](crate::Program).

use crate::{ChunkId, ProcId, Program};

/// Descriptive record for one chunk: its id, owner, ordinal within the owner,
/// byte offset within the owner, and byte length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkInfo {
    /// Global chunk id.
    pub id: ChunkId,
    /// Owning procedure.
    pub owner: ProcId,
    /// Ordinal of this chunk within its owner (0-based).
    pub ordinal: u32,
    /// Byte offset of this chunk from the start of its owner.
    pub offset: u32,
    /// Byte length (the final chunk of a procedure may be a short tail).
    pub len: u32,
}

/// Iterator over every chunk of a program, in global chunk-id order.
///
/// Produced by [`Chunks::new`]; iteration order is procedure id order, then
/// chunk ordinal.
#[derive(Debug, Clone)]
pub struct Chunks<'p> {
    program: &'p Program,
    next: u32,
}

impl<'p> Chunks<'p> {
    /// Creates an iterator over all chunks of `program`.
    pub fn new(program: &'p Program) -> Self {
        Chunks { program, next: 0 }
    }
}

impl Iterator for Chunks<'_> {
    type Item = ChunkInfo;

    fn next(&mut self) -> Option<ChunkInfo> {
        if self.next >= self.program.chunk_count() {
            return None;
        }
        let id = ChunkId::new(self.next);
        self.next += 1;
        let (owner, ordinal) = self.program.chunk_owner(id);
        Some(ChunkInfo {
            id,
            owner,
            ordinal,
            offset: ordinal * self.program.chunk_size(),
            len: self.program.chunk_len(id),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.program.chunk_count() - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Chunks<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_all_chunks_in_order() {
        let p = Program::builder()
            .procedure("a", 100)
            .procedure("b", 600)
            .build()
            .unwrap();
        let infos: Vec<_> = Chunks::new(&p).collect();
        assert_eq!(infos.len(), 4);
        assert_eq!(infos[0].owner, ProcId::new(0));
        assert_eq!(infos[0].len, 100);
        assert_eq!(infos[1].owner, ProcId::new(1));
        assert_eq!(infos[1].ordinal, 0);
        assert_eq!(infos[1].offset, 0);
        assert_eq!(infos[2].offset, 256);
        assert_eq!(infos[3].len, 88);
        // Global ids are dense and increasing.
        for (i, info) in infos.iter().enumerate() {
            assert_eq!(info.id, ChunkId::new(i as u32));
        }
    }

    #[test]
    fn exact_size() {
        let p = Program::builder().procedure("a", 1000).build().unwrap();
        let it = Chunks::new(&p);
        assert_eq!(it.len(), 4);
        assert_eq!(it.count(), 4);
    }
}
