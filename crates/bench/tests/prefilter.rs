//! Integration test for the miss-bound prefilter (ISSUE 6 acceptance):
//! on the cache-sweep matrix, screening must skip at least 30% of the
//! candidate simulations while leaving every cell's winner byte-identical
//! to the winner a full (unscreened) evaluation of the same slate picks.

#![allow(clippy::unwrap_used, clippy::cast_precision_loss)] // test code asserts by panicking

use tempo_bench::sweep::{stacked_decoy, AlgorithmSpec, SweepRunner, SweepSpec};
use tempo_bench::tempo::prelude::*;
use tempo_bench::tempo::workloads::{par as wpar, suite, BenchmarkModel};
use tempo_bench::tempo_par::Pool;

const RECORDS: usize = 20_000;

fn spec() -> SweepSpec {
    SweepSpec {
        // The 16 KB cells are the regression anchor: there the Figure-6
        // model and the interval upper bound disagree on PH, and a screen
        // that trusts the model alone skips the true winner.
        benchmarks: vec![suite::m88ksim(), suite::perl()],
        algorithms: AlgorithmSpec::standard(),
        caches: vec![
            CacheConfig::direct_mapped_8k(),
            CacheConfig::direct_mapped(16 * 1024).unwrap(),
        ],
        records: RECORDS,
    }
}

/// Rebuilds one cell's candidate slate exactly as `run_screened` does and
/// returns the full-evaluation winner: first minimum by simulated misses
/// in slate order.
fn full_winner(model: &BenchmarkModel, cache: CacheConfig) -> String {
    let (train, test) = wpar::train_test_traces(model, RECORDS, &Pool::new(1)).unwrap();
    let session = Session::new(model.program(), cache).profile(&train);
    let mut names: Vec<String> = Vec::new();
    let mut layouts: Vec<Layout> = Vec::new();
    for (name, layout) in [
        ("default", Layout::source_order(model.program())),
        ("PH", session.place(&PettisHansen::new())),
        ("HKC", session.place(&CacheColoring::new())),
        ("GBSC", session.place(&Gbsc::new())),
    ] {
        names.push(name.to_string());
        layouts.push(layout);
    }
    for k in 0..4 {
        names.push(format!("stacked{k}"));
        layouts.push(stacked_decoy(&session, k));
    }
    let (idx, _) = layouts
        .iter()
        .enumerate()
        .map(|(i, l)| (i, session.evaluate(l, &test).misses))
        .min_by_key(|&(i, misses)| (misses, i))
        .unwrap();
    names[idx].clone()
}

#[test]
fn prefilter_skips_a_third_and_keeps_every_winner() {
    let spec = spec();
    let cells = SweepRunner::new(2).run_screened(&spec, 4).unwrap();
    assert_eq!(cells.len(), spec.benchmarks.len() * spec.caches.len());

    let (mut candidates, mut screened) = (0usize, 0usize);
    for cell in &cells {
        assert_eq!(cell.candidates, 8);
        assert_eq!(cell.simulated, cell.candidates - cell.screened);
        assert!(cell.simulated >= 1, "screening must leave a survivor");
        candidates += cell.candidates;
        screened += cell.screened;

        let model = spec
            .benchmarks
            .iter()
            .find(|m| m.name() == cell.benchmark)
            .unwrap();
        assert_eq!(
            cell.winner,
            full_winner(model, cell.cache),
            "screened winner diverged on {} @ {}",
            cell.benchmark,
            cell.cache
        );
    }
    let fraction = screened as f64 / candidates as f64;
    assert!(
        fraction >= 0.30,
        "prefilter skipped only {screened}/{candidates} simulations"
    );
}

#[test]
fn stacked_decoys_are_valid_distinct_and_bad() {
    let model = suite::m88ksim();
    let cache = CacheConfig::direct_mapped_8k();
    let (train, test) = wpar::train_test_traces(&model, RECORDS, &Pool::new(1)).unwrap();
    let session = Session::new(model.program(), cache).profile(&train);
    let gbsc = session.place(&Gbsc::new());
    let gbsc_misses = session.evaluate(&gbsc, &test).misses;
    let mut seen = Vec::new();
    for k in 0..4 {
        let decoy = stacked_decoy(&session, k);
        decoy.validate(model.program()).unwrap();
        assert!(!seen.contains(&decoy), "variant {k} duplicates another");
        assert!(
            session.evaluate(&decoy, &test).misses > gbsc_misses,
            "variant {k} is not worse than GBSC"
        );
        seen.push(decoy);
    }
}
