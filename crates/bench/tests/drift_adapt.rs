//! Acceptance harness for the drift-adaptation experiment: at the
//! experiment's curated scale the incremental engine must (a) beat the
//! frozen training-run layout on post-shift miss rate, and (b) skip at
//! least half of the re-placements through the cheap drift check without
//! ending on a different layout than the engine that pays for a fresh
//! placement every epoch.

#![allow(clippy::unwrap_used)] // test code asserts by panicking

use std::collections::HashMap;

use tempo_bench::harness::{find, Ctx};
use tempo_bench::CommonArgs;

#[test]
fn adaptive_beats_frozen_and_drift_check_is_sound() {
    let spec = find("drift_adapt").expect("drift_adapt is registered");
    let args = CommonArgs {
        records: spec.default_records,
        seed: 0xBA5E,
        runs: spec.default_runs,
        out: None,
        budget_ms: None,
        jobs: 2,
        prefilter: false,
    };
    let mut ctx = Ctx::new(args, None);
    (spec.run)(&mut ctx).expect("experiment runs");
    let output = ctx.finish();
    let metrics: HashMap<&str, f64> = output
        .metrics
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();

    for bench in ["m88ksim", "go", "vortex"] {
        let frozen = metrics[format!("{bench}_frozen_miss_rate").as_str()];
        let adapted = metrics[format!("{bench}_adapted_miss_rate").as_str()];
        assert!(
            adapted < frozen,
            "{bench}: adaptive {adapted} must beat frozen {frozen}"
        );
        let skip = metrics[format!("{bench}_skip_fraction").as_str()];
        assert!(
            skip >= 0.5,
            "{bench}: drift check skipped only {skip:.0?} of re-placements"
        );
        let matched = metrics[format!("{bench}_layouts_match").as_str()];
        assert!(
            (matched - 1.0).abs() < f64::EPSILON,
            "{bench}: drift-checked final layout diverged from the every-epoch run"
        );
    }
    assert!(metrics["mean_skip_fraction"] >= 0.5);
}
