//! Property test for the [`SweepRunner`] determinism contract
//! (DESIGN.md §9): the evaluated matrix is byte-for-byte the same rows in
//! the same order for any worker count.
//!
//! The serial (`jobs = 1`) run is the reference; each sampled case runs
//! the same spec at a random worker count and compares typed rows, which
//! covers both the numeric results and the benchmark-major / cache /
//! algorithm-minor ordering.

#![allow(clippy::unwrap_used)] // test code asserts by panicking

use std::sync::OnceLock;

use proptest::prelude::*;
use tempo_bench::sweep::{AlgorithmSpec, SweepRow, SweepRunner, SweepSpec};
use tempo_bench::tempo::prelude::*;
use tempo_bench::tempo::workloads::suite;

/// A matrix small enough for debug-build test time (each cell pays for a
/// full profile + checked placement + simulation, several seconds in a
/// debug build) but wide enough to exercise multi-cell scheduling:
/// 1 benchmark × 2 cache sizes = 2 concurrent cells, each evaluating the
/// full standard algorithm axis.
fn spec() -> SweepSpec {
    SweepSpec {
        benchmarks: vec![suite::perl()],
        algorithms: AlgorithmSpec::standard(),
        caches: [2u32, 4]
            .iter()
            .map(|kb| CacheConfig::direct_mapped(kb * 1024).expect("valid size"))
            .collect(),
        records: 1_000,
    }
}

/// The serial reference, computed once and shared across proptest cases.
fn reference() -> &'static [SweepRow] {
    static REFERENCE: OnceLock<Vec<SweepRow>> = OnceLock::new();
    REFERENCE.get_or_init(|| SweepRunner::new(1).run(&spec()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn sweep_rows_independent_of_worker_count(jobs in 2usize..9) {
        let rows = SweepRunner::new(jobs).run(&spec()).unwrap();
        prop_assert_eq!(rows.len(), reference().len());
        for (got, want) in rows.iter().zip(reference()) {
            prop_assert_eq!(got, want, "row diverged at jobs={}", jobs);
        }
    }
}

/// The row order itself matches the documented expansion: benchmark
/// major, cache next, algorithm minor.
#[test]
fn sweep_row_order_is_the_documented_expansion() {
    let spec = spec();
    let mut expected = Vec::new();
    for model in &spec.benchmarks {
        for cache in &spec.caches {
            for alg in &spec.algorithms {
                expected.push((model.name(), *cache, alg.name()));
            }
        }
    }
    let got: Vec<_> = reference()
        .iter()
        .map(|r| (r.benchmark, r.cache, r.algorithm))
        .collect();
    assert_eq!(got, expected);
}
