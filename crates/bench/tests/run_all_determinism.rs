//! Integration test for the `run-all` determinism contract (DESIGN.md
//! §9): every file the driver writes — reports and CSVs — is
//! byte-identical for any `--jobs`.
//!
//! Both runs use the *same* output path (snapshotting the first run's
//! files into memory before deleting the directory), because the reports
//! embed "wrote <path>" lines: writing to two differently named
//! directories would diff on the path string alone and mask real
//! divergence.

#![allow(clippy::unwrap_used)] // test code asserts by panicking

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use tempo_bench::harness::{run_all, RunAllOpts};

/// Reads every file in `dir` (flat — the driver writes no subdirectories)
/// into a name → bytes map.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        files.insert(name, fs::read(entry.path()).unwrap());
    }
    files
}

#[test]
fn run_all_outputs_independent_of_worker_count() {
    let dir = std::env::temp_dir().join("tempo-run-all-determinism");
    let _ = fs::remove_dir_all(&dir);

    // The subset with the trickiest determinism obligations: per-cell RNG
    // streams (fig5, s_sweep) and a serial-mutation / parallel-evaluation
    // split (fig6). fig5 and fig6 also cover CSV output and the
    // "wrote <path>" report lines. The SweepRunner matrix has its own
    // jobs-independence proptest (tests/sweep_jobs.rs), so cache_sweep —
    // by far the most expensive experiment in a debug build — is not
    // repeated here. drift_adapt exercises the incremental engine's
    // serial epoch loop, whose report must not depend on the pool either.
    let serial_opts = RunAllOpts {
        records: Some(1_000),
        runs: Some(2),
        jobs: 1,
        out_dir: dir.clone(),
        bench_json: None,
        only: Some(
            ["fig5", "fig6", "s_sweep", "drift_adapt"]
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
        ),
        verbose: false,
        ..RunAllOpts::default()
    };

    let report = run_all(&serial_opts).unwrap();
    assert!(report.all_ok(), "serial run failed: {report:?}");
    assert_eq!(report.jobs, 1);
    let serial = snapshot(&dir);
    // 4 reports + fig5/fig6 CSVs.
    assert_eq!(serial.len(), 6, "unexpected outputs: {:?}", serial.keys());

    // Re-run into the same path so embedded path strings cannot differ.
    fs::remove_dir_all(&dir).unwrap();
    let parallel_opts = RunAllOpts {
        jobs: 4,
        ..serial_opts
    };
    let report = run_all(&parallel_opts).unwrap();
    assert!(report.all_ok(), "parallel run failed: {report:?}");
    let parallel = snapshot(&dir);
    fs::remove_dir_all(&dir).unwrap();

    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>()
    );
    for (name, bytes) in &serial {
        assert_eq!(
            bytes, &parallel[name],
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }
}

/// `--only` with an unknown name is a usage error, not a partial run.
#[test]
fn run_all_rejects_unknown_experiment_names() {
    let opts = RunAllOpts {
        out_dir: std::env::temp_dir().join("tempo-run-all-unknown"),
        bench_json: None,
        only: Some(vec!["no_such_experiment".to_string()]),
        verbose: false,
        ..RunAllOpts::default()
    };
    let err = run_all(&opts).unwrap_err();
    assert!(matches!(
        err,
        tempo_bench::harness::HarnessError::UnknownExperiment(ref n)
            if n == "no_such_experiment"
    ));
}
