//! Criterion bench: placement-algorithm running time (§4.4).
//!
//! The paper bounds GBSC's running time by P³C² (P popular procedures, C
//! cache lines) and reports "tens of seconds to a few minutes" on 1997
//! hardware. These benches measure how PH, HKC, and GBSC scale in P (via
//! benchmark choice) and how GBSC scales in C (via cache size).

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test/demo code asserts by panicking

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tempo::prelude::*;
use tempo::workloads::suite;

fn session_for(
    model: &tempo::workloads::BenchmarkModel,
    cache: CacheConfig,
    records: usize,
) -> (tempo::ProfiledSession<'_>, usize) {
    let train = model.training_trace(records);
    let session = Session::new(model.program(), cache).profile(&train);
    let p = session.profile().popular.count();
    (session, p)
}

fn bench_algorithms(c: &mut Criterion) {
    let cache = CacheConfig::direct_mapped_8k();
    let models = [suite::m88ksim(), suite::perl(), suite::gcc()];

    let mut group = c.benchmark_group("placement_by_benchmark");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for model in &models {
        let (session, p) = session_for(model, cache, 60_000);
        let label = format!("{}(P={p})", model.name());
        group.bench_with_input(BenchmarkId::new("PH", &label), &session, |b, s| {
            b.iter(|| s.place(&PettisHansen::new()))
        });
        group.bench_with_input(BenchmarkId::new("HKC", &label), &session, |b, s| {
            b.iter(|| s.place(&CacheColoring::new()))
        });
        group.bench_with_input(BenchmarkId::new("GBSC", &label), &session, |b, s| {
            b.iter(|| s.place(&Gbsc::new()))
        });
    }
    group.finish();
}

fn bench_gbsc_cache_lines(c: &mut Criterion) {
    // C scaling: 2 KB (64 lines) .. 16 KB (512 lines).
    let model = suite::perl();
    let mut group = c.benchmark_group("gbsc_by_cache_lines");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kb in [2u32, 8, 16] {
        let cache = CacheConfig::direct_mapped(kb * 1024).expect("valid");
        let train = model.training_trace(60_000);
        let session = Session::new(model.program(), cache).profile(&train);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}lines", cache.lines())),
            &session,
            |b, s| b.iter(|| s.place(&Gbsc::new())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_gbsc_cache_lines);
criterion_main!(benches);
