//! Criterion bench: TRG construction throughput (§3 / §4.4).
//!
//! The paper instruments executables at ~25x slowdown to build TRGs online;
//! here we measure the offline Q-set pass: records/second for procedure-
//! grain + chunk-grain TRG construction, with and without the §6 pair
//! database.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test/demo code asserts by panicking

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tempo::prelude::*;
use tempo::workloads::suite;

fn bench_trg_build(c: &mut Criterion) {
    let model = suite::perl();
    let program = model.program();
    let trace = model.training_trace(20_000);
    let cache = CacheConfig::direct_mapped_8k();

    let mut group = c.benchmark_group("trg_build");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("wcg_trg_select_trg_place", |b| {
        b.iter(|| {
            Profiler::new(program, cache)
                .popularity(PopularitySelector::all())
                .profile(&trace)
        })
    });
    group.bench_function("with_pair_db", |b| {
        b.iter(|| {
            Profiler::new(program, cache)
                .popularity(PopularitySelector::all())
                .with_pair_db(true)
                .profile(&trace)
        })
    });
    group.finish();

    // Q-bound scaling: the bound controls Q occupancy and thus edge work.
    let mut group = c.benchmark_group("trg_build_q_bound");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for factor in [1u64, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, &f| {
            b.iter(|| {
                Profiler::new(program, cache)
                    .popularity(PopularitySelector::all())
                    .q_bound_factor(f)
                    .profile(&trace)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trg_build);
criterion_main!(benches);
