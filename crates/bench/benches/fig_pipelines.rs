//! Criterion bench: end-to-end per-figure pipeline costs.
//!
//! Measures one unit of work from each experiment binary — one Figure 5
//! perturbed run (perturb → place → simulate), one Figure 6 layout
//! evaluation (mutate → linearize → metric + simulate) — so regressions in
//! any stage show up as a slowdown of the figure that exercises it.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test/demo code asserts by panicking

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tempo::place::metric::trg_conflict_cost;
use tempo::prelude::*;
use tempo::workloads::suite;

fn bench_fig5_unit(c: &mut Criterion) {
    let model = suite::m88ksim();
    let program = model.program();
    let train = model.training_trace(60_000);
    let test = model.testing_trace(60_000);
    let cache = CacheConfig::direct_mapped_8k();
    let session = Session::new(program, cache).profile(&train);

    let mut group = c.benchmark_group("fig5_unit");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("perturb_place_simulate", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let p = session.perturbed(0.1, &mut rng);
            let layout = p.place(&Gbsc::new());
            p.evaluate(&layout, &test)
        })
    });
    group.finish();
}

fn bench_fig6_unit(c: &mut Criterion) {
    let model = suite::m88ksim();
    let program = model.program();
    let train = model.training_trace(60_000);
    let test = model.testing_trace(60_000);
    let cache = CacheConfig::direct_mapped_8k();
    let session = Session::new(program, cache).profile(&train);
    let base = Gbsc::new().place_tuples(&session.context());

    let mut group = c.benchmark_group("fig6_unit");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("mutate_linearize_metric_simulate", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut tuples = base.clone();
            tuples.randomize_offsets(25, &mut rng);
            let layout = tuples.into_layout(&session.context());
            let cost = trg_conflict_cost(program, &layout, &session.profile().trg_place, cache);
            let stats = session.evaluate(&layout, &test);
            (cost, stats)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5_unit, bench_fig6_unit);
criterion_main!(benches);
