//! Criterion bench: cache-simulator throughput.
//!
//! Every Figure 5 point costs one full trace simulation, so the simulator's
//! records/second rate bounds the whole evaluation pipeline.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test/demo code asserts by panicking

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tempo::prelude::*;
use tempo::workloads::suite;

fn bench_simulator(c: &mut Criterion) {
    let model = suite::perl();
    let program = model.program();
    let trace = model.testing_trace(50_000);
    let layout = Layout::source_order(program);

    let mut group = c.benchmark_group("cache_sim");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, cache) in [
        ("dm_8k", CacheConfig::direct_mapped_8k()),
        ("2way_8k", CacheConfig::two_way_8k()),
        ("dm_2k", CacheConfig::direct_mapped(2048).unwrap()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cache, |b, &cfg| {
            b.iter(|| simulate(program, &layout, &trace, cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
