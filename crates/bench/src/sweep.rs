//! The typed evaluation matrix: benchmark × algorithm × cache config.
//!
//! A [`SweepSpec`] names the axes; a [`SweepRunner`] expands them into
//! jobs (one per benchmark × cache cell — the profile is shared by every
//! algorithm evaluated on it), runs the jobs across N workers, and
//! aggregates typed [`SweepRow`]s in a deterministic order: benchmark
//! major, cache config next, algorithm minor — independent of the worker
//! count (see DESIGN.md §9 for the determinism contract).

use tempo::prelude::*;
use tempo::workloads::{par as wpar, BenchmarkModel};
use tempo_par::Pool;

/// A named placement algorithm on the sweep's algorithm axis.
///
/// `Identity` is the unplaced source-order baseline; it is evaluated
/// without the static-analyzer gate (it is the measurement reference, not
/// a produced layout). Real algorithms go through
/// [`checked_place`](crate::checked_place) so an invalid layout aborts the
/// cell instead of contributing numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmSpec {
    /// Source-order (unoptimized) baseline.
    Identity,
    /// Pettis–Hansen chaining.
    PettisHansen,
    /// Hashemi–Kaeli–Calder cache coloring.
    CacheColoring,
    /// The paper's TRG-based placement.
    Gbsc,
}

impl AlgorithmSpec {
    /// Display / CSV name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmSpec::Identity => "default",
            AlgorithmSpec::PettisHansen => "PH",
            AlgorithmSpec::CacheColoring => "HKC",
            AlgorithmSpec::Gbsc => "GBSC",
        }
    }

    /// The paper's evaluated trio plus the identity baseline.
    pub fn standard() -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::Identity,
            AlgorithmSpec::PettisHansen,
            AlgorithmSpec::CacheColoring,
            AlgorithmSpec::Gbsc,
        ]
    }

    fn place(&self, session: &tempo::ProfiledSession<'_>) -> Layout {
        match self {
            AlgorithmSpec::Identity => Layout::source_order(session.program()),
            AlgorithmSpec::PettisHansen => crate::checked_place(session, &PettisHansen::new()),
            AlgorithmSpec::CacheColoring => crate::checked_place(session, &CacheColoring::new()),
            AlgorithmSpec::Gbsc => crate::checked_place(session, &Gbsc::new()),
        }
    }
}

/// A deterministic adversarial candidate for prefilter runs: every
/// popular procedure is placed at the next multiple of the cache size, so
/// all of them land on the same cache sets and evict each other on every
/// alternation; unpopular procedures are packed behind them. `variant`
/// rotates the popular order, so successive variants are distinct layouts
/// that are identically hopeless — exactly what a screening stage should
/// reject without paying for a simulation.
pub fn stacked_decoy(session: &tempo::ProfiledSession<'_>, variant: usize) -> Layout {
    let program = session.program();
    let cache = u64::from(session.cache().size());
    let popular: Vec<ProcId> = session.profile().popular.iter().collect();
    let mut addrs = vec![0u64; program.len()];
    let mut cursor = 0u64;
    for i in 0..popular.len() {
        let id = popular[(i + variant) % popular.len()];
        addrs[id.as_usize()] = cursor;
        // Next multiple of the cache size past this procedure's end: the
        // following popular procedure starts on cache offset 0 again.
        let end = cursor + u64::from(program.size_of(id));
        cursor = end.div_ceil(cache) * cache;
    }
    for id in session.profile().popular.iter_unpopular() {
        addrs[id.as_usize()] = cursor;
        cursor += u64::from(program.size_of(id));
    }
    Layout::from_addresses(addrs)
}

/// One screened cell of a prefiltered matrix: the candidate slate is the
/// algorithm axis plus `decoys` stacked layouts, screened by the static
/// miss-bound analyzer; only survivors were simulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenedCell {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Cache geometry of the cell.
    pub cache: CacheConfig,
    /// Candidate count (algorithms + decoys).
    pub candidates: usize,
    /// Candidates the analyzer skipped without simulating.
    pub screened: usize,
    /// Skips that were interval-provable (vs model-margin based).
    pub provable: usize,
    /// Candidates actually simulated (`candidates - screened`).
    pub simulated: usize,
    /// Name of the winning candidate (fewest simulated misses, first in
    /// slate order on ties) — byte-identical to the winner an unscreened
    /// run picks whenever the screen is sound.
    pub winner: String,
    /// The winner's simulated miss count on the testing trace.
    pub winner_misses: u64,
    /// Total misses across all simulated survivors (for tallying).
    pub misses: u64,
}

/// The axes of an evaluation matrix.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Benchmark axis.
    pub benchmarks: Vec<BenchmarkModel>,
    /// Algorithm axis.
    pub algorithms: Vec<AlgorithmSpec>,
    /// Cache-geometry axis (each config re-profiles: the Q bound and the
    /// offset space depend on the geometry).
    pub caches: Vec<CacheConfig>,
    /// Training/testing trace length.
    pub records: usize,
}

/// One evaluated cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Cache geometry the cell was profiled and evaluated on.
    pub cache: CacheConfig,
    /// Testing-trace simulation results.
    pub stats: SimStats,
}

impl SweepRow {
    /// Miss rate in percent (the figure the paper reports).
    pub fn miss_rate_pct(&self) -> f64 {
        self.stats.miss_rate() * 100.0
    }
}

/// A cell of the matrix failed (its job panicked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Benchmark of the failed cell.
    pub benchmark: String,
    /// Cache config of the failed cell.
    pub cache: String,
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep cell ({} on {}) failed: {}",
            self.benchmark, self.cache, self.message
        )
    }
}

impl std::error::Error for SweepError {}

/// Expands and runs a [`SweepSpec`] across a worker pool.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    pool: Pool,
}

impl SweepRunner {
    /// A runner with `jobs` workers.
    pub fn new(jobs: usize) -> SweepRunner {
        SweepRunner {
            pool: Pool::new(jobs),
        }
    }

    /// A runner on an existing pool.
    pub fn on(pool: Pool) -> SweepRunner {
        SweepRunner { pool }
    }

    /// Runs the full matrix and returns rows in deterministic order
    /// (benchmark major, cache next, algorithm minor), independent of the
    /// worker count.
    ///
    /// Jobs are one per benchmark × cache pair: the pair's training
    /// trace, profile, and testing trace are computed once and shared by
    /// every algorithm on the axis. A panicking cell does not abort its
    /// siblings; all failures are collected into the error.
    ///
    /// # Errors
    ///
    /// Returns the first-listed [`SweepError`] per failed cell (rows from
    /// successful cells are discarded — a partially evaluated matrix is
    /// not a result).
    pub fn run(&self, spec: &SweepSpec) -> Result<Vec<SweepRow>, Vec<SweepError>> {
        struct Cell {
            model_idx: usize,
            cache: CacheConfig,
        }
        let cells: Vec<Cell> = (0..spec.benchmarks.len())
            .flat_map(|model_idx| {
                spec.caches
                    .iter()
                    .map(move |&cache| Cell { model_idx, cache })
            })
            .collect();

        let benchmarks = &spec.benchmarks;
        let algorithms = &spec.algorithms;
        let records = spec.records;
        let jobs: Vec<_> = cells
            .iter()
            .map(|cell| {
                let model = &benchmarks[cell.model_idx];
                let cache = cell.cache;
                move || -> Vec<SweepRow> {
                    let (train, test) = wpar::train_test_traces(model, records, &Pool::new(1))
                        .unwrap_or_else(|p| panic!("{p}"));
                    let session = Session::new(model.program(), cache).profile(&train);
                    algorithms
                        .iter()
                        .map(|alg| {
                            let layout = alg.place(&session);
                            SweepRow {
                                benchmark: model.name(),
                                algorithm: alg.name(),
                                cache,
                                stats: session.evaluate(&layout, &test),
                            }
                        })
                        .collect()
                }
            })
            .collect();

        let outcomes = self.pool.run(jobs);
        let mut rows = Vec::with_capacity(cells.len() * algorithms.len());
        let mut errors = Vec::new();
        for (cell, outcome) in cells.iter().zip(outcomes) {
            match outcome {
                Ok(mut cell_rows) => rows.append(&mut cell_rows),
                Err(p) => errors.push(SweepError {
                    benchmark: benchmarks[cell.model_idx].name().to_string(),
                    cache: cell.cache.to_string(),
                    message: p.message,
                }),
            }
        }
        if errors.is_empty() {
            Ok(rows)
        } else {
            Err(errors)
        }
    }

    /// Runs the matrix through the static miss-bound prefilter: each cell
    /// screens a candidate slate (the algorithm axis plus `decoys`
    /// [`stacked_decoy`] layouts) and simulates only the survivors, via
    /// [`ProfiledSession::evaluate_screened`](tempo::ProfiledSession::evaluate_screened).
    ///
    /// Cells come back in the same deterministic order as [`run`](Self::run).
    /// The screening counters (`analyze.screened`, `analyze.simulated`,
    /// `analyze.bound_width`) tick as a side effect.
    ///
    /// # Errors
    ///
    /// Same contract as [`run`](Self::run): one [`SweepError`] per
    /// panicked cell, no partial results.
    ///
    /// # Panics
    ///
    /// A cell panics if screening leaves no survivor — `screen_layouts`
    /// guarantees at least one by construction, so this indicates a bug.
    pub fn run_screened(
        &self,
        spec: &SweepSpec,
        decoys: usize,
    ) -> Result<Vec<ScreenedCell>, Vec<SweepError>> {
        struct Cell {
            model_idx: usize,
            cache: CacheConfig,
        }
        let cells: Vec<Cell> = (0..spec.benchmarks.len())
            .flat_map(|model_idx| {
                spec.caches
                    .iter()
                    .map(move |&cache| Cell { model_idx, cache })
            })
            .collect();

        let benchmarks = &spec.benchmarks;
        let algorithms = &spec.algorithms;
        let records = spec.records;
        let jobs: Vec<_> = cells
            .iter()
            .map(|cell| {
                let model = &benchmarks[cell.model_idx];
                let cache = cell.cache;
                move || -> ScreenedCell {
                    let (train, test) = wpar::train_test_traces(model, records, &Pool::new(1))
                        .unwrap_or_else(|p| panic!("{p}"));
                    let session = Session::new(model.program(), cache).profile(&train);
                    let mut names: Vec<String> = Vec::new();
                    let mut layouts: Vec<Layout> = Vec::new();
                    for alg in algorithms {
                        names.push(alg.name().to_string());
                        layouts.push(alg.place(&session));
                    }
                    for k in 0..decoys {
                        names.push(format!("stacked{k}"));
                        layouts.push(stacked_decoy(&session, k));
                    }
                    let (screen, stats) = session
                        .evaluate_screened(&layouts, &test)
                        .unwrap_or_else(|p| panic!("{p}"));
                    let screened = screen.screened();
                    let provable = screen
                        .layouts
                        .iter()
                        .filter(|s| s.skip && s.provable)
                        .count();
                    let (winner_idx, winner_misses) = stats
                        .iter()
                        .enumerate()
                        .filter_map(|(i, s)| s.as_ref().map(|s| (i, s.misses)))
                        .min_by_key(|&(i, misses)| (misses, i))
                        .expect("screening always leaves at least one survivor");
                    ScreenedCell {
                        benchmark: model.name(),
                        cache,
                        candidates: layouts.len(),
                        screened,
                        provable,
                        simulated: layouts.len() - screened,
                        winner: names[winner_idx].clone(),
                        winner_misses,
                        misses: stats.iter().flatten().map(|s| s.misses).sum(),
                    }
                }
            })
            .collect();

        let outcomes = self.pool.run(jobs);
        let mut rows = Vec::with_capacity(cells.len());
        let mut errors = Vec::new();
        for (cell, outcome) in cells.iter().zip(outcomes) {
            match outcome {
                Ok(row) => rows.push(row),
                Err(p) => errors.push(SweepError {
                    benchmark: benchmarks[cell.model_idx].name().to_string(),
                    cache: cell.cache.to_string(),
                    message: p.message,
                }),
            }
        }
        if errors.is_empty() {
            Ok(rows)
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo::workloads::suite;

    #[test]
    fn matrix_expands_in_deterministic_order() {
        let spec = SweepSpec {
            benchmarks: vec![suite::m88ksim()],
            algorithms: vec![AlgorithmSpec::Identity, AlgorithmSpec::Gbsc],
            caches: vec![
                CacheConfig::direct_mapped(4096).unwrap(),
                CacheConfig::direct_mapped_8k(),
            ],
            records: 4_000,
        };
        let rows = SweepRunner::new(2).run(&spec).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows.iter().map(|r| r.algorithm).collect::<Vec<_>>(),
            vec!["default", "GBSC", "default", "GBSC"]
        );
        assert_eq!(rows[0].cache.size(), 4096);
        assert_eq!(rows[2].cache.size(), 8192);
    }
}
