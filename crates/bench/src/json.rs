//! A minimal JSON value: enough to emit and re-read `BENCH_run.json`
//! without external dependencies.
//!
//! The subset is deliberate: objects keep insertion order (stable diffs),
//! numbers are `f64` (every counter we store is far below 2^53), and the
//! parser accepts exactly what [`Json::render_pretty`] produces plus
//! ordinary hand-edited whitespace.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integral counters in practice).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs (insertion order preserved).
    pub fn object(fields: Vec<(String, Json)>) -> Json {
        Json::Object(fields)
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Number(n) => render_number(out, *n),
            Json::String(s) => render_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.render(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    render_string(out, k);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

#[allow(clippy::cast_possible_truncation)] // guarded: integral and |n| < 9e15
fn render_number(out: &mut String, n: f64) {
    // Integral values print without a fractional part (counters, schema).
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always a valid boundary walk).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8")?,
                );
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8")?;
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_report_shaped_document() {
        let doc = Json::object(vec![
            ("schema".into(), Json::Number(1.0)),
            ("records".into(), Json::Null),
            ("ok".into(), Json::Bool(true)),
            ("wall_ms".into(), Json::Number(1234.5)),
            (
                "experiments".into(),
                Json::Array(vec![Json::object(vec![
                    ("name".into(), Json::String("table1".into())),
                    ("misses".into(), Json::Number(987654.0)),
                ])]),
            ),
            ("empty".into(), Json::Array(vec![])),
            ("msg".into(), Json::String("a \"quoted\"\nline".into())),
        ]);
        let text = doc.render_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("wall_ms").and_then(Json::as_f64), Some(1234.5));
        assert_eq!(
            parsed
                .get("experiments")
                .and_then(Json::as_array)
                .and_then(|a| a[0].get("name"))
                .and_then(Json::as_str),
            Some("table1")
        );
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Number(42.0).render_pretty(), "42\n");
        assert_eq!(Json::Number(0.5).render_pretty(), "0.5\n");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}
