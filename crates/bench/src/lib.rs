//! Shared plumbing for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md §4 for
//! the experiment index); this library holds the pieces they share:
//! argument parsing, the standard trace lengths, CSV emission, and simple
//! statistics.

// In the test build, `unwrap` IS the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

use std::fmt::Write as _;

pub use tempo;
pub use tempo_par;

pub mod experiments;
pub mod harness;
pub mod json;
pub mod sweep;

/// Default number of trace records for training runs.
///
/// The paper's traces are 17M–146M basic blocks; we default to 400k
/// control-flow transitions, which preserves the phase structure while
/// keeping every experiment runnable in seconds. Override with the first
/// CLI argument of each binary.
pub const DEFAULT_TRAIN_LEN: usize = 400_000;

/// Default number of trace records for testing runs.
pub const DEFAULT_TEST_LEN: usize = 400_000;

/// Parses `--records N` and `--seed N` style overrides from `args`.
///
/// Recognized flags: `--records`, `--seed`, `--runs`, `--out`,
/// `--budget-ms`, `--jobs`, `--prefilter`. Unknown flags are ignored so
/// binaries can layer their own.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Trace length override.
    pub records: usize,
    /// RNG seed for perturbations.
    pub seed: u64,
    /// Number of randomized runs (Figure 5: 40; Figure 6: 80).
    pub runs: usize,
    /// Optional CSV output path.
    pub out: Option<String>,
    /// Optional wall-clock budget per placement (milliseconds); placements
    /// degrade through the fallback chain instead of overrunning.
    pub budget_ms: Option<u64>,
    /// Worker threads for parallel sweeps (default: available
    /// parallelism). Results are byte-identical for any value.
    pub jobs: usize,
    /// Screen candidate layouts with the static miss-bound analyzer and
    /// simulate only the survivors (experiments that support it; off by
    /// default because the default reports are the regression baseline).
    pub prefilter: bool,
}

impl CommonArgs {
    /// Parses the process arguments with the given defaults.
    pub fn parse(default_records: usize, default_runs: usize) -> Self {
        let mut args = CommonArgs {
            records: default_records,
            seed: 0xBA5E,
            runs: default_runs,
            out: None,
            budget_ms: None,
            jobs: tempo_par::available_parallelism(),
            prefilter: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--records" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        args.records = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        args.seed = v;
                    }
                }
                "--runs" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        args.runs = v;
                    }
                }
                "--out" => {
                    args.out = it.next();
                }
                "--budget-ms" => {
                    args.budget_ms = it.next().and_then(|s| s.parse().ok());
                }
                "--jobs" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        args.jobs = v;
                    }
                }
                "--prefilter" => {
                    args.prefilter = true;
                }
                _ => {}
            }
        }
        args
    }

    /// The placement [`Budget`](tempo::place::Budget) these arguments
    /// imply (unlimited when `--budget-ms` was not given).
    pub fn budget(&self) -> tempo::place::Budget {
        match self.budget_ms {
            Some(ms) => tempo::place::Budget::millis(ms),
            None => tempo::place::Budget::unlimited(),
        }
    }
}

/// Places with `algorithm` and asserts the layout passes the static
/// analyzer ([`tempo::analyze`]).
///
/// Experiment binaries go through this instead of
/// [`ProfiledSession::place`](tempo::ProfiledSession::place) so a broken
/// placement aborts the run instead of silently contributing numbers from
/// an invalid layout.
///
/// # Panics
///
/// Panics with the rendered report when the analyzer finds
/// error-severity diagnostics.
pub fn checked_place(
    session: &tempo::ProfiledSession<'_>,
    algorithm: &dyn tempo::place::PlacementAlgorithm,
) -> tempo::program::Layout {
    checked_place_budgeted(session, algorithm, tempo::place::Budget::unlimited()).0
}

/// Budgeted counterpart of [`checked_place`]: places under `budget` with
/// the fallback chain, asserts the resulting layout is analyzer-clean, and
/// returns the [`Degradation`](tempo::place::Degradation) record so the
/// experiment can note which tier produced its numbers.
///
/// A degraded run is reported on stderr (the layout is still valid — the
/// numbers just describe a fallback tier, not the requested algorithm).
///
/// # Panics
///
/// Panics with the rendered report when the analyzer finds error-severity
/// diagnostics.
pub fn checked_place_budgeted(
    session: &tempo::ProfiledSession<'_>,
    algorithm: &dyn tempo::place::PlacementAlgorithm,
    budget: tempo::place::Budget,
) -> (tempo::program::Layout, tempo::place::Degradation) {
    let (layout, report, degradation) = session.place_checked_budgeted(algorithm, budget);
    assert!(
        report.error_count() == 0,
        "{} produced a layout failing static analysis:\n{}",
        degradation.ran,
        report.render_text(session.program())
    );
    if degradation.is_degraded() {
        eprintln!("tempo-bench: warning: {degradation}");
    }
    (layout, degradation)
}

/// Writes `rows` as CSV to `path` with the given header.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(path: &str, header: &str, rows: &[String]) -> std::io::Result<()> {
    let mut body = String::new();
    writeln!(body, "{header}").expect("writing to a String cannot fail");
    for r in rows {
        writeln!(body, "{r}").expect("writing to a String cannot fail");
    }
    std::fs::write(path, body)
}

/// Pearson correlation coefficient of a point set (0 for degenerate sets).
pub fn pearson(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let vx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let vy: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Sorted copy of `values` (ascending), for CDF-style reporting.
pub fn sorted(values: &[f64]) -> Vec<f64> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
    v
}

/// Median of `values` (0 for an empty slice).
pub fn median(values: &[f64]) -> f64 {
    let v = sorted(values);
    if v.is_empty() {
        0.0
    } else {
        v[v.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        assert!((pearson(&pts) - 1.0).abs() < 1e-12);
        let anti: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -(i as f64))).collect();
        assert!((pearson(&anti) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert_eq!(pearson(&[]), 0.0);
        assert_eq!(pearson(&[(1.0, 2.0)]), 0.0);
        assert_eq!(pearson(&[(1.0, 1.0), (1.0, 2.0)]), 0.0);
    }

    #[test]
    fn write_csv_roundtrips_rows() {
        let path = std::env::temp_dir().join(format!("tempo-csv-{}.csv", std::process::id()));
        let path_str = path.to_string_lossy().into_owned();
        write_csv(&path_str, "a,b", &["1,2".to_string(), "3,4".to_string()]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n3,4\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn median_and_sorted() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(sorted(&[2.0, 1.0]), vec![1.0, 2.0]);
    }
}
