//! Sharded-profiling scale experiment: supervised shard fan-out vs the
//! sequential profiler.
//!
//! Writes a v2 training trace to disk, profiles it through
//! [`tempo::profile_sharded`] at several `--jobs`-style worker counts,
//! and checks that the merged profile is identical to the sequential
//! one at every level — the merge-exactness contract the shard seam
//! warm-up guarantees (DESIGN.md §13).
//!
//! The text report carries only deterministic results (shard outcomes
//! and the merge≡sequential verdict). Records/sec per jobs level and
//! the retried/quarantined tallies go into `BENCH_run.json` via
//! [`Ctx::metric`].

use std::time::Instant;

use tempo::prelude::*;
use tempo::workloads::suite;
use tempo::{profile_sharded, ShardConfig};

use crate::harness::{outln, Ctx, ExperimentError};

const SHARDS: usize = 8;

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let records = ctx.args.records;
    let cache = CacheConfig::direct_mapped_8k();
    let model = suite::perl();
    let program = model.program();
    let selector = PopularitySelector::coverage(0.995).with_min_count(2);

    let trace = model.training_trace(records);
    let path = std::env::temp_dir().join(format!("tempo-shard-scale-{}.tmp2", std::process::id()));
    let result = (|| -> Result<(), ExperimentError> {
        tempo::trace::testkit::write_v2_file(&path, &mut MemorySource::new(&trace))?;
        let sequential = Profiler::new(program, cache)
            .popularity(selector)
            .profile(&trace);

        outln!(
            ctx,
            "shard-scale: perl, {records} records, {SHARDS} shards per run"
        );
        outln!(ctx);
        outln!(
            ctx,
            "{:>5} {:>10} {:>8} {:>12} {:>11}",
            "jobs",
            "completed",
            "retried",
            "quarantined",
            "merge==seq"
        );
        let mut all_match = true;
        for jobs in [1usize, 2, 4] {
            let config = ShardConfig {
                shards: SHARDS,
                jobs,
                ..ShardConfig::default()
            };
            let start = Instant::now();
            let (profile, report) =
                profile_sharded(program, cache, selector, false, &path, &config, None)?;
            let wall = start.elapsed().as_secs_f64();
            ctx.note_cells(SHARDS);
            let matches = profile == sequential;
            all_match &= matches;
            outln!(
                ctx,
                "{jobs:>5} {:>10} {:>8} {:>12} {:>11}",
                report.completed(),
                report.retried,
                report.quarantined(),
                if matches { "yes" } else { "NO" }
            );
            #[allow(clippy::cast_precision_loss)] // record counts are tiny
            {
                if wall > 0.0 {
                    ctx.metric(
                        &format!("jobs{jobs}.records_per_sec"),
                        report.covered_records as f64 / wall,
                    );
                }
                ctx.metric(&format!("jobs{jobs}.shards_retried"), report.retried as f64);
                ctx.metric(
                    &format!("jobs{jobs}.shards_quarantined"),
                    report.quarantined() as f64,
                );
            }
        }
        outln!(ctx);
        outln!(
            ctx,
            "merged sharded profiles {} the sequential profile at every jobs level.",
            if all_match { "match" } else { "DO NOT match" }
        );
        if all_match {
            Ok(())
        } else {
            Err(ExperimentError::Other(
                "sharded merge diverged from the sequential profile".to_string(),
            ))
        }
    })();
    let _ = std::fs::remove_file(&path);
    result
}
