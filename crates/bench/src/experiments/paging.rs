//! **§8 outlook**: layout effects on the next layer of the memory
//! hierarchy.
//!
//! The paper's §4.3 notes the linearization could be adapted to reduce
//! paging problems, and §8 plans to extend the temporal techniques to
//! "other layers of the memory hierarchy". This experiment measures what
//! the cache-driven layouts do to *page-level* locality: each layout is
//! run against a small fully-associative LRU page buffer (4 KB pages — an
//! ITLB/page-cache stand-in, modeled with the same simulator, since a
//! fully-associative LRU cache with page-sized lines *is* a page buffer).
//!
//! Parallel structure: stage A profiles and places each benchmark; stage B
//! runs the 6 (benchmark, layout) page+cache simulations concurrently.

use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let icache = CacheConfig::direct_mapped_8k();
    // 32-entry fully-associative LRU buffer of 4 KB pages.
    let pages = CacheConfig::new(32 * 4096, 4096, 32).expect("valid page buffer");
    let records = ctx.args.records;
    let models = [suite::gcc(), suite::vortex()];

    let prep_jobs: Vec<_> = models
        .iter()
        .map(|model| {
            move || {
                let program = model.program();
                let train = model.training_trace(records);
                let test = model.testing_trace(records);
                let session = Session::new(program, icache).profile(&train);
                let layouts: Vec<(&str, Layout)> = vec![
                    ("default", Layout::source_order(program)),
                    ("PH", session.place(&PettisHansen::new())),
                    ("GBSC", session.place(&Gbsc::new())),
                ];
                (test, layouts)
            }
        })
        .collect();
    let prepared = ctx.run_jobs(prep_jobs)?;

    let cell_jobs: Vec<_> = models
        .iter()
        .zip(&prepared)
        .flat_map(|(model, (test, layouts))| {
            let program = model.program();
            layouts.iter().map(move |(name, layout)| {
                move || {
                    let pstats = simulate(program, layout, test, pages);
                    let istats = simulate(program, layout, test, icache);
                    let line = format!(
                        "{:<8} {:>9}K {:>12} {:>9.3}% {:>8.2}%",
                        name,
                        layout.span(program) / 1024,
                        pstats.misses,
                        pstats.line_miss_rate() * 100.0,
                        istats.miss_rate() * 100.0
                    );
                    (line, pstats.misses + istats.misses)
                }
            })
        })
        .collect();
    let cells = ctx.run_jobs(cell_jobs)?;

    for (mi, model) in models.iter().enumerate() {
        outln!(ctx, "=== {} (32 x 4 KB LRU page buffer) ===", model.name());
        outln!(
            ctx,
            "{:<8} {:>10} {:>12} {:>10} {:>9}",
            "layout",
            "span",
            "page faults",
            "fault MR",
            "I$ MR"
        );
        for li in 0..3 {
            let (line, misses) = &cells[mi * 3 + li];
            ctx.tally_misses(*misses);
            outln!(ctx, "{line}");
        }
        outln!(ctx);
    }
    outln!(
        ctx,
        "The smallest-gap linearization keeps popular procedures dense, so the"
    );
    outln!(
        ctx,
        "cache-optimized layouts also page as well as (or better than) default —"
    );
    outln!(ctx, "the gaps are filled with unpopular code, not holes.");
    Ok(())
}
