//! **Figure 5**: sorted miss-rate distributions per benchmark.
//!
//! For each of the six benchmarks and each algorithm (PH, HKC, GBSC), run
//! 40 placements on multiplicatively perturbed profiles (s = 0.1), simulate
//! the testing trace, and report the sorted miss rates — the CDF the paper
//! plots — plus the miss rate of each algorithm on the unperturbed profile
//! (the "MR" inset tables of Figure 5).
//!
//! Parallel structure: stage A profiles the six benchmarks concurrently;
//! stage B runs the 18 (benchmark, algorithm) cells concurrently. Each
//! cell seeds its own `StdRng` exactly like the historical serial loop
//! did, so the report is byte-identical for any `--jobs`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};
use crate::sorted;

fn algorithm(index: usize) -> Box<dyn PlacementAlgorithm> {
    match index {
        0 => Box::new(PettisHansen::new()),
        1 => Box::new(CacheColoring::new()),
        _ => Box::new(Gbsc::new()),
    }
}

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let records = ctx.args.records;
    let runs = ctx.args.runs;
    let seed = ctx.args.seed;
    let models = suite::standard_suite();
    let mut csv: Vec<String> = Vec::new();

    // Stage A: profile each benchmark once (shared by its three cells).
    let prep_jobs: Vec<_> = models
        .iter()
        .map(|model| {
            move || {
                let program = model.program();
                let train = model.training_trace(records);
                let test = model.testing_trace(records);
                let session = Session::new(program, cache).profile(&train);
                let default_stats = session.evaluate(&Layout::source_order(program), &test);
                (session, test, default_stats)
            }
        })
        .collect();
    let prepared = ctx.run_jobs(prep_jobs)?;

    // Stage B: one cell per (benchmark, algorithm), each with the same
    // fresh RNG stream the serial loop used.
    let cell_jobs: Vec<_> = prepared
        .iter()
        .flat_map(|(session, test, _)| {
            (0..3).map(move |ai| {
                move || {
                    let alg = algorithm(ai);
                    let mut misses = 0u64;
                    // Unperturbed run (the inset MR table of Figure 5).
                    let clean_stats = session.evaluate(&session.place(alg.as_ref()), test);
                    misses += clean_stats.misses;
                    let clean = clean_stats.miss_rate() * 100.0;

                    let mut rng = StdRng::seed_from_u64(seed);
                    let rates: Vec<f64> = (0..runs)
                        .map(|_| {
                            let perturbed = session.perturbed(0.1, &mut rng);
                            let layout = perturbed.place(alg.as_ref());
                            let stats = perturbed.evaluate(&layout, test);
                            misses += stats.misses;
                            stats.miss_rate() * 100.0
                        })
                        .collect();
                    (alg.name().to_string(), clean, sorted(&rates), misses)
                }
            })
        })
        .collect();
    let cells = ctx.run_jobs(cell_jobs)?;

    for (mi, model) in models.iter().enumerate() {
        let (_, _, default_stats) = &prepared[mi];
        outln!(ctx, "=== {} ===", model.name());
        let default_mr = ctx.tally(*default_stats).miss_rate() * 100.0;
        outln!(ctx, "default layout MR: {default_mr:.2}%");

        for ai in 0..3 {
            let (alg_name, clean, s, misses) = &cells[mi * 3 + ai];
            ctx.tally_misses(*misses);
            outln!(
                ctx,
                "{:<5} MR {:>5.2}%  perturbed: min {:.2}% / median {:.2}% / max {:.2}%",
                alg_name,
                clean,
                s[0],
                s[s.len() / 2],
                s[s.len() - 1]
            );
            // CDF points: x = miss rate, y = fraction of placements <= x.
            for (i, mr) in s.iter().enumerate() {
                csv.push(format!(
                    "{},{},{:.4},{:.4}",
                    model.name(),
                    alg_name,
                    mr,
                    (i + 1) as f64 / s.len() as f64
                ));
            }
        }
        outln!(ctx);
    }

    if let Some(path) = ctx.csv_path() {
        ctx.set_csv("benchmark,algorithm,miss_rate_pct,cdf", csv);
        outln!(ctx, "wrote {path}");
    }
    outln!(
        ctx,
        "paper: GBSC's point cloud sits left of PH and HKC for all benchmarks"
    );
    outln!(ctx, "except m88ksim and perl, where the ranges overlap.");
    Ok(())
}
