//! **§5.1 anecdote**: layout fragility under trivial padding.
//!
//! The paper pads every procedure of a perl layout by one 32-byte cache
//! line and watches the miss rate jump from 3.8% to 5.4%. This experiment
//! reproduces it: take the GBSC layout of perl, add k lines of padding
//! after every procedure for k = 0..8, and report the miss rate of each
//! variant. The nine padded variants are evaluated concurrently through
//! the tempo-cache sweep helper (they share one read-only testing trace).

use tempo::cache::sweep::simulate_layouts;
use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let model = suite::perl();
    let program = model.program();
    let (train, test) =
        tempo::workloads::par::train_test_traces(&model, ctx.args.records, ctx.pool())?;
    let session = Session::new(program, cache).profile(&train);
    let layout = session.place(&Gbsc::new());

    let base = ctx.tally(session.evaluate(&layout, &test));
    outln!(
        ctx,
        "perl, GBSC layout: {:.2}% miss rate",
        base.miss_rate() * 100.0
    );
    outln!(
        ctx,
        "\nsame procedure order, repacked with k bytes of padding after every"
    );
    outln!(
        ctx,
        "procedure (k = 0 drops GBSC's alignment gaps entirely):"
    );
    outln!(ctx, "{:>8} {:>10} {:>8}", "pad", "misses", "MR");
    let padded: Vec<Layout> = (0u64..=8)
        .map(|pad_lines| layout.with_uniform_padding(program, pad_lines * 32))
        .collect();
    let stats = simulate_layouts(program, &padded, &test, cache, ctx.pool())?;
    ctx.note_cells(padded.len());
    for (pad_lines, stats) in (0u64..=8).zip(stats) {
        ctx.tally(stats);
        outln!(
            ctx,
            "{:>5} B {:>10} {:>7.2}%",
            pad_lines * 32,
            stats.misses,
            stats.miss_rate() * 100.0,
        );
    }
    outln!(
        ctx,
        "\npaper saw 3.8% -> 5.4% for perl from a single line of padding; the\nreproduction target is the *swing* from trivial layout changes, plus the\ngap between the aligned GBSC layout and any repacked variant."
    );
    Ok(())
}
