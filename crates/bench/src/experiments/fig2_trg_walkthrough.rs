//! **Figures 2 and 3**: TRG construction walkthrough on trace #2.
//!
//! Replays the paper's Figure 3 step by step: the contents of the ordered
//! set `Q` and the TRG edges after each processed reference, using the
//! `M X M X ... M Z ...` prefix the figure illustrates, then prints the
//! full TRG for trace #2 (the paper's Figure 2).

use tempo::prelude::*;
use tempo::trg::QSet;

use crate::harness::{outln, Ctx, ExperimentError};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let program = Program::builder()
        .procedure("M", 512)
        .procedure("X", 512)
        .procedure("Y", 512)
        .procedure("Z", 512)
        .build()
        .expect("valid program");
    let name = |id: u32| program.proc(ProcId::new(id)).name().to_string();

    // --- Figure 3: step-by-step Q processing -----------------------------
    outln!(ctx, "Figure 3 walkthrough (Q bound = 2 x 8 KB):");
    let mut q = QSet::new(2 * 8192);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let steps: &[u32] = &[0, 1, 0, 1, 0, 3, 0, 1]; // M X M X M Z M X
    for &p in steps {
        let ev = q.process(p, 512);
        for &other in &ev.interleaved {
            edges.push((p.min(other), p.max(other)));
        }
        let qcontents: Vec<String> = q.entries().map(&name).collect();
        let increments: Vec<String> = ev
            .interleaved
            .iter()
            .map(|&o| format!("W({},{})+=1", name(p), name(o)))
            .collect();
        outln!(
            ctx,
            "  process {:<2} -> Q = [{}]  {}",
            name(p),
            qcontents.join(", "),
            if increments.is_empty() {
                "(no previous reference: no TRG change)".to_string()
            } else {
                increments.join(", ")
            }
        );
    }

    // --- Figure 2: the full TRG for trace #2 ----------------------------
    let ids: Vec<ProcId> = program.ids().collect();
    let (m, x, y) = (ids[0], ids[1], ids[2]);
    let mut refs = Vec::new();
    for _ in 0..40 {
        refs.extend([m, x]);
    }
    for _ in 0..40 {
        refs.extend([m, y]);
    }
    let trace2 = Trace::from_full_records(&program, refs);
    let profile = Profiler::new(&program, CacheConfig::direct_mapped_8k())
        .popularity(PopularitySelector::all())
        .profile(&trace2);

    outln!(
        ctx,
        "\nFigure 2: TRG for trace #2 (WCG weight in parentheses):"
    );
    for e in profile.trg_select.edges() {
        outln!(
            ctx,
            "  {} -- {} : {}  (WCG {})",
            name(e.a),
            name(e.b),
            e.w,
            profile.wcg.weight(e.a, e.b)
        );
    }
    outln!(
        ctx,
        "\npaper: TRG edge weights are nearly double the WCG's; edges appear only\nwhere interleaving occurs (none between X and Y in trace #2)."
    );
    Ok(())
}
