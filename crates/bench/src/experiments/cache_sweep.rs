//! **§5.2 remark**: "We also experimented with smaller cache sizes and
//! obtained similar results."
//!
//! Sweeps the direct-mapped cache size from 2 KB to 16 KB and reports the
//! testing miss rate of default, PH, HKC, and GBSC for each size (each
//! algorithm re-profiled and re-placed per size, since the Q bound and the
//! offset space depend on the geometry).
//!
//! This is the [`SweepRunner`](crate::sweep::SweepRunner) showcase: the
//! 3 benchmarks × 4 cache sizes expand into 12 concurrent cells, each
//! evaluating the full algorithm axis on one shared profile.

use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx};
use crate::sweep::{AlgorithmSpec, SweepRunner, SweepSpec};

pub(crate) fn run(ctx: &mut Ctx) {
    let spec = SweepSpec {
        benchmarks: vec![suite::m88ksim(), suite::perl(), suite::go()],
        algorithms: AlgorithmSpec::standard(),
        caches: [2u32, 4, 8, 16]
            .iter()
            .map(|kb| CacheConfig::direct_mapped(kb * 1024).expect("valid size"))
            .collect(),
        records: ctx.args.records,
    };
    let rows = match SweepRunner::on(*ctx.pool()).run(&spec) {
        Ok(rows) => rows,
        Err(errors) => panic!("{}", errors[0]),
    };
    ctx.note_cells(spec.benchmarks.len() * spec.caches.len());

    let mut csv = Vec::new();
    let per_model = spec.caches.len() * spec.algorithms.len();
    for (mi, model_rows) in rows.chunks(per_model).enumerate() {
        outln!(ctx, "=== {} ===", spec.benchmarks[mi].name());
        outln!(
            ctx,
            "{:>8} {:>9} {:>9} {:>9} {:>9}",
            "cache",
            "default",
            "PH",
            "HKC",
            "GBSC"
        );
        for group in model_rows.chunks(spec.algorithms.len()) {
            let kb = group[0].cache.size() / 1024;
            let (d, ph, hkc, gbsc) = (
                group[0].miss_rate_pct(),
                group[1].miss_rate_pct(),
                group[2].miss_rate_pct(),
                group[3].miss_rate_pct(),
            );
            for row in group {
                ctx.tally(row.stats);
            }
            outln!(
                ctx,
                "{kb:>6}KB {d:>8.2}% {ph:>8.2}% {hkc:>8.2}% {gbsc:>8.2}%"
            );
            csv.push(format!(
                "{},{kb},{d:.4},{ph:.4},{hkc:.4},{gbsc:.4}",
                group[0].benchmark
            ));
        }
        outln!(ctx);
    }

    if let Some(path) = ctx.csv_path() {
        ctx.set_csv("benchmark,cache_kb,default,ph,hkc,gbsc", csv);
        outln!(ctx, "wrote {path}");
    }
    outln!(
        ctx,
        "paper: the GBSC advantage persists across smaller cache sizes."
    );
}
