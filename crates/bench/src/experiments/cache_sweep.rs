//! **§5.2 remark**: "We also experimented with smaller cache sizes and
//! obtained similar results."
//!
//! Sweeps the direct-mapped cache size from 2 KB to 16 KB and reports the
//! testing miss rate of default, PH, HKC, and GBSC for each size (each
//! algorithm re-profiled and re-placed per size, since the Q bound and the
//! offset space depend on the geometry).
//!
//! This is the [`SweepRunner`](crate::sweep::SweepRunner) showcase: the
//! 3 benchmarks × 4 cache sizes expand into 12 concurrent cells, each
//! evaluating the full algorithm axis on one shared profile.
//!
//! With `--prefilter` the cell's candidate slate grows to eight layouts
//! (the four algorithms plus four
//! [`stacked_decoy`](crate::sweep::stacked_decoy) variants) and the
//! static miss-bound analyzer screens the slate before simulation: only
//! survivors are simulated, and the report shows the screened/simulated
//! split per cell. The winner column must stay byte-identical to the
//! unscreened run's — that is the screening soundness contract CI checks.

use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};
use crate::sweep::{AlgorithmSpec, SweepRunner, SweepSpec};

/// Decoy candidates added to each cell's slate under `--prefilter`.
const DECOYS: usize = 4;

fn spec(records: usize) -> SweepSpec {
    SweepSpec {
        benchmarks: vec![suite::m88ksim(), suite::perl(), suite::go()],
        algorithms: AlgorithmSpec::standard(),
        caches: [2u32, 4, 8, 16]
            .iter()
            .map(|kb| CacheConfig::direct_mapped(kb * 1024).expect("valid size"))
            .collect(),
        records,
    }
}

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    if ctx.args.prefilter {
        run_prefiltered(ctx)
    } else {
        run_full(ctx)
    }
}

fn run_full(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let spec = spec(ctx.args.records);
    let rows = SweepRunner::on(*ctx.pool())
        .run(&spec)
        .map_err(|errors| ExperimentError::Other(errors[0].to_string()))?;
    ctx.note_cells(spec.benchmarks.len() * spec.caches.len());

    let mut csv = Vec::new();
    let per_model = spec.caches.len() * spec.algorithms.len();
    for (mi, model_rows) in rows.chunks(per_model).enumerate() {
        outln!(ctx, "=== {} ===", spec.benchmarks[mi].name());
        outln!(
            ctx,
            "{:>8} {:>9} {:>9} {:>9} {:>9} {:>8}",
            "cache",
            "default",
            "PH",
            "HKC",
            "GBSC",
            "winner"
        );
        for group in model_rows.chunks(spec.algorithms.len()) {
            let kb = group[0].cache.size() / 1024;
            let (d, ph, hkc, gbsc) = (
                group[0].miss_rate_pct(),
                group[1].miss_rate_pct(),
                group[2].miss_rate_pct(),
                group[3].miss_rate_pct(),
            );
            for row in group {
                ctx.tally(row.stats);
            }
            // First-minimum by raw miss count in algorithm-axis order —
            // the reference a prefiltered run's winner must match.
            let winner = group
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| (r.stats.misses, *i))
                .expect("a cell always has algorithms")
                .1
                .algorithm;
            outln!(
                ctx,
                "{kb:>6}KB {d:>8.2}% {ph:>8.2}% {hkc:>8.2}% {gbsc:>8.2}% {winner:>8}"
            );
            csv.push(format!(
                "{},{kb},{d:.4},{ph:.4},{hkc:.4},{gbsc:.4},{winner}",
                group[0].benchmark
            ));
        }
        outln!(ctx);
    }

    if let Some(path) = ctx.csv_path() {
        ctx.set_csv("benchmark,cache_kb,default,ph,hkc,gbsc,winner", csv);
        outln!(ctx, "wrote {path}");
    }
    outln!(
        ctx,
        "paper: the GBSC advantage persists across smaller cache sizes."
    );
    Ok(())
}

fn run_prefiltered(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let spec = spec(ctx.args.records);
    let cells = SweepRunner::on(*ctx.pool())
        .run_screened(&spec, DECOYS)
        .map_err(|errors| ExperimentError::Other(errors[0].to_string()))?;
    ctx.note_cells(spec.benchmarks.len() * spec.caches.len());

    let mut csv = Vec::new();
    let (mut candidates, mut screened) = (0usize, 0usize);
    let per_model = spec.caches.len();
    for (mi, model_cells) in cells.chunks(per_model).enumerate() {
        outln!(ctx, "=== {} (prefiltered) ===", spec.benchmarks[mi].name());
        outln!(
            ctx,
            "{:>8} {:>10} {:>9} {:>10} {:>9} {:>8}",
            "cache",
            "candidates",
            "screened",
            "simulated",
            "provable",
            "winner"
        );
        for cell in model_cells {
            ctx.tally_misses(cell.misses);
            candidates += cell.candidates;
            screened += cell.screened;
            let kb = cell.cache.size() / 1024;
            outln!(
                ctx,
                "{kb:>6}KB {:>10} {:>9} {:>10} {:>9} {:>8}",
                cell.candidates,
                cell.screened,
                cell.simulated,
                cell.provable,
                cell.winner
            );
            csv.push(format!(
                "{},{kb},{},{},{},{}",
                cell.benchmark, cell.candidates, cell.screened, cell.simulated, cell.winner
            ));
        }
        outln!(ctx);
    }

    #[allow(clippy::cast_precision_loss)] // slate sizes are tiny
    let skip_fraction = if candidates == 0 {
        0.0
    } else {
        screened as f64 / candidates as f64
    };
    ctx.metric("prefilter.skip_fraction", skip_fraction);
    if let Some(path) = ctx.csv_path() {
        ctx.set_csv(
            "benchmark,cache_kb,candidates,screened,simulated,winner",
            csv,
        );
        outln!(ctx, "wrote {path}");
    }
    outln!(
        ctx,
        "screened {screened} of {candidates} candidate simulations ({:.0}%) without touching the winner column.",
        skip_fraction * 100.0
    );
    Ok(())
}
