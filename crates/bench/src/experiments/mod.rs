//! The experiment bodies, one module per paper table/figure/ablation.
//!
//! Each module exposes `run(&mut Ctx)`; the thin binaries in `src/bin/`
//! and the `tempo-bench run-all` driver both dispatch through the
//! [`harness::REGISTRY`](crate::harness::REGISTRY). Experiments write
//! their report through the context (never stdout) and expand their
//! benchmark × algorithm × config matrices into pool jobs, so every
//! report is byte-identical for any `--jobs` value.

pub mod ablation_chains;
pub mod bounds_soundness;
pub mod cache_sweep;
pub mod chunk_sweep;
pub mod drift_adapt;
pub mod fig1_motivation;
pub mod fig2_trg_walkthrough;
pub mod fig5;
pub mod fig6;
pub mod m88ksim_same_input;
pub mod miss_breakdown;
pub mod padding_sensitivity;
pub mod paging;
pub mod q_bound_sweep;
pub mod reuse_profile;
pub mod s_sweep;
pub mod set_associative;
pub mod shard_scale;
pub mod splitting;
pub mod stream_scale;
pub mod table1;
