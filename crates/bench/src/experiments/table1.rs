//! **Table 1**: benchmark details.
//!
//! For each benchmark: total size/count, popular size/count, training and
//! testing trace lengths, the miss rate of the default layout (8 KB
//! direct-mapped, 32-byte lines), and the average Q size observed while
//! building the TRG. One pool job per benchmark.

use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let records = ctx.args.records;
    let models = suite::standard_suite();

    outln!(
        ctx,
        "{:<12} {:>8} {:>6} | {:>8} {:>6} | {:>9} {:>9} | {:>8} {:>7}",
        "program",
        "size",
        "count",
        "popsize",
        "popcnt",
        "train",
        "test",
        "defMR",
        "avgQ"
    );
    let jobs: Vec<_> = models
        .iter()
        .map(|model| {
            move || {
                let program = model.program();
                let train = model.training_trace(records);
                let test = model.testing_trace(records);

                let profile = Profiler::new(program, cache).profile(&train);
                let popular = &profile.popular;
                let default_layout = Layout::source_order(program);
                let stats = simulate(program, &default_layout, &test, cache);

                let line = format!(
                    "{:<12} {:>7}K {:>6} | {:>7}K {:>6} | {:>9} {:>9} | {:>7.2}% {:>7.1}",
                    model.name(),
                    program.total_size() / 1024,
                    program.len(),
                    popular.popular_size(program) / 1024,
                    popular.count(),
                    train.len(),
                    test.len(),
                    stats.miss_rate() * 100.0,
                    profile.q_stats.average,
                );
                (line, stats)
            }
        })
        .collect();
    for (line, stats) in ctx.run_jobs(jobs)? {
        ctx.tally(stats);
        outln!(ctx, "{line}");
    }
    outln!(
        ctx,
        "\npaper (Table 1):  gcc 2277K/2005 351K/136 4.86% 11.8 | go 590K/3221 134K/112 3.34% 16.0"
    );
    outln!(
        ctx,
        "  gs 1817K/372 104K/216 2.63% 18.7 | m88k 549K/460 21K/31 2.92% 8.5 | perl 664K/271 83K/36 4.19% 7.1 | vortex 1073K/923 117K/156 6.29% 26.4"
    );
    Ok(())
}
