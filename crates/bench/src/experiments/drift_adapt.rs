//! Drift adaptation: incremental engine vs a frozen training-run layout.
//!
//! The one-shot pipeline places once, on the training input, and the
//! layout then rides out whatever the deployed workload does. This
//! experiment measures what that costs under input drift, and what the
//! incremental [`Engine`](tempo::Engine) buys back:
//!
//! 1. **frozen** — GBSC placed over the training trace, never touched
//!    again; every epoch of the drifted (testing-input) stream is
//!    simulated against it.
//! 2. **adaptive** — an engine seeded with the frozen layout consumes the
//!    same drifted stream in epochs with a decaying window; the drift
//!    check skips re-placement while the incumbent's miss-bound ceiling
//!    tracks the anchor, and adopts a fresh candidate only on a
//!    threshold-clearing improvement.
//! 3. **every-epoch** — the same engine with the drift check disabled: a
//!    fresh candidate is placed every epoch under the identical adoption
//!    rule. The drift check is sound exactly when this run's final layout
//!    matches the adaptive run's (`match` column).
//! 4. **replace-always** — a negative threshold adopts the fresh
//!    placement every epoch: the upper bound on adaptation.
//!
//! Both engine runs evaluate each epoch against the layout in force
//! *during* that epoch, so the adaptive miss counts include the epochs
//! spent discovering the drift. The frozen baseline is simulated with the
//! same per-epoch restarts, keeping cold-start effects identical across
//! the three columns.

use tempo::prelude::*;
use tempo::workloads::suite;
use tempo::workloads::{BenchmarkModel, InputSpec};
use tempo::{EngineConfig, EpochReport};

use crate::harness::{outln, Ctx, ExperimentError};

/// Records in the training trace and again in the drifted stream. The
/// scenario is curated: drift amplitude, epoch count, decay, and
/// threshold are calibrated together at this scale so the frozen layout
/// genuinely goes stale and the drift check has stable stretches to
/// absorb — a global `--records` override would silently break that
/// calibration, so this experiment pins its own scale (and says so in
/// the report header).
const RECORDS: usize = 60_000;
/// Epochs the drifted stream is cut into. Enough post-adoption epochs for
/// the decayed window to converge on the drifted distribution, so the
/// thresholded run's final layout matches replace-always.
const EPOCHS: usize = 10;
/// Window decay per epoch: old evidence halves every epoch, so the
/// training-era profile stops dominating the window quickly after a shift
/// and the window converges fast on the post-shift distribution.
const DECAY: f64 = 0.5;
/// Fractional miss-bound improvement required to adopt a fresh layout.
const THRESHOLD: f64 = 0.02;

struct Outcome {
    reports: Vec<EpochReport>,
    layout: Layout,
}

/// Runs one engine over `epochs`, seeded with `frozen`, returning the
/// per-epoch reports and the final layout.
fn run_engine(
    model: &BenchmarkModel,
    frozen: &Layout,
    epochs: &[Trace],
    threshold: f64,
    drift_check: bool,
) -> Outcome {
    let mut config = EngineConfig::new(CacheConfig::direct_mapped_8k());
    config.selector = PopularitySelector::all();
    config.decay = DECAY;
    config.replace_threshold = threshold;
    config.drift_check = drift_check;
    config.evaluate = true;
    let algorithm = Gbsc::new();
    let mut engine = Engine::new(model.program(), &algorithm, config).with_layout(frozen.clone());
    let reports: Vec<EpochReport> = epochs.iter().map(|e| engine.observe_epoch(e)).collect();
    let layout = engine
        .layout()
        .expect("engine observed at least one epoch")
        .clone();
    Outcome { reports, layout }
}

/// The post-shift input: the model's own testing input pushed further
/// along every drift axis the generator exposes — the hot working sets
/// rotate far from training, callee skew flattens, and cold calls double.
fn drifted_input(model: &BenchmarkModel) -> InputSpec {
    let mut input = model.testing_input();
    input.phase_shift += 17;
    input.skew_delta += 0.6;
    input.dwell_factor *= 0.5;
    input.cold_factor *= 2.0;
    input
}

fn miss_rate(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let rate = misses as f64 / instructions as f64;
    rate
}

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let records = RECORDS;
    // The three suite models whose drifted inputs actually invalidate the
    // frozen layout: the engine adopts a replacement early and the drift
    // check then absorbs the stable post-shift stretches. (perl and gcc
    // barely drift under the same shift — their frozen layouts stay
    // within the threshold — so they exercise nothing here.)
    let models = [suite::m88ksim(), suite::go(), suite::vortex()];

    outln!(
        ctx,
        "drift adaptation ({records} train + {records} drifted records \
         [curated scale; --records ignored], \
         {EPOCHS} epochs, decay {DECAY}, threshold {THRESHOLD}):"
    );
    outln!(
        ctx,
        "{:<12} {:>9} {:>9} {:>9} {:>11} {:>7}",
        "bench",
        "frozen%",
        "adapt%",
        "always%",
        "repl/skip",
        "match"
    );

    let mut all_match = true;
    let mut total_skip_fraction = 0.0;
    for model in &models {
        let program = model.program();
        // Frozen baseline: the ordinary one-shot pipeline on the
        // training input.
        let train = model.trace(&model.training_input(), records);
        let session = Session::new(program, cache)
            .popularity(PopularitySelector::all())
            .profile(&train);
        let frozen = session.place(&Gbsc::new());

        // The deployed stream drifts: the testing input's phase structure
        // and procedure mix diverge from training. Cut it into the epoch
        // sizes both engines and the frozen baseline share.
        let drifted = model.trace(&drifted_input(model), records);
        let per_epoch = (drifted.len() / EPOCHS).max(1);
        let epochs: Vec<Trace> = drifted
            .records()
            .chunks(per_epoch)
            .map(|c| Trace::from_records(c.to_vec()))
            .collect();

        let adaptive = run_engine(model, &frozen, &epochs, THRESHOLD, true);
        let every_epoch = run_engine(model, &frozen, &epochs, THRESHOLD, false);
        let always = run_engine(model, &frozen, &epochs, f64::NEG_INFINITY, false);

        // Frozen layout, simulated with the same per-epoch restarts the
        // engines pay.
        let mut frozen_misses = 0u64;
        let mut frozen_instructions = 0u64;
        for epoch in &epochs {
            let stats = ctx.tally(simulate(program, &frozen, epoch, cache));
            frozen_misses += stats.misses;
            frozen_instructions += stats.instructions;
        }

        let sum = |reports: &[EpochReport]| -> (u64, u64) {
            reports
                .iter()
                .filter_map(|r| r.stats)
                .fold((0, 0), |(m, i), s| (m + s.misses, i + s.instructions))
        };
        let (adapt_misses, adapt_instructions) = sum(&adaptive.reports);
        let (always_misses, always_instructions) = sum(&always.reports);
        for r in adaptive.reports.iter().chain(&always.reports) {
            if let Some(s) = r.stats {
                ctx.tally(s);
            }
        }

        let replacements = adaptive.reports.iter().filter(|r| r.replaced).count();
        let skips = adaptive.reports.iter().filter(|r| !r.placed).count();
        let layouts_match = adaptive.layout == every_epoch.layout;
        all_match &= layouts_match;
        #[allow(clippy::cast_precision_loss)]
        let skip_fraction = skips as f64 / adaptive.reports.len() as f64;
        total_skip_fraction += skip_fraction;

        let frozen_rate = miss_rate(frozen_misses, frozen_instructions);
        let adapt_rate = miss_rate(adapt_misses, adapt_instructions);
        let always_rate = miss_rate(always_misses, always_instructions);
        outln!(
            ctx,
            "{:<12} {:>8.3}% {:>8.3}% {:>8.3}% {:>6}/{:<4} {:>7}",
            model.name(),
            frozen_rate * 100.0,
            adapt_rate * 100.0,
            always_rate * 100.0,
            replacements,
            skips,
            if layouts_match { "yes" } else { "NO" }
        );

        let tag = model.name().to_string();
        ctx.metric(&format!("{tag}_frozen_miss_rate"), frozen_rate);
        ctx.metric(&format!("{tag}_adapted_miss_rate"), adapt_rate);
        ctx.metric(&format!("{tag}_always_miss_rate"), always_rate);
        ctx.metric(&format!("{tag}_skip_fraction"), skip_fraction);
        ctx.metric(
            &format!("{tag}_layouts_match"),
            if layouts_match { 1.0 } else { 0.0 },
        );
    }

    #[allow(clippy::cast_precision_loss)]
    let mean_skip = total_skip_fraction / models.len() as f64;
    ctx.metric("mean_skip_fraction", mean_skip);
    outln!(
        ctx,
        "\nadapt% counts the epochs spent detecting the drift; always% adopts a\n\
         fresh placement every epoch and is the adaptation ceiling. `match` =\n\
         the drift-checked engine ends on the layout the same engine reaches\n\
         when it pays for a fresh placement every epoch."
    );
    if !all_match {
        outln!(
            ctx,
            "warning: a drift-checked run diverged from its every-epoch layout"
        );
    }
    Ok(())
}
