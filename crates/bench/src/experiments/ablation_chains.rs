//! **Ablation (§4)**: "extra temporal ordering information alone is not
//! sufficient to guarantee lower instruction cache miss rates."
//!
//! Cross of the paper's two ingredients:
//!
//! | | chains (PH placement) | offset scan (GBSC placement) |
//! |---|---|---|
//! | **WCG selection** | PH | WCG+offsets |
//! | **TRG selection** | TRG+chains | GBSC |
//!
//! One pool job per benchmark; each evaluates the default layout plus the
//! four ablation corners on its own profile.

use tempo::place::{TrgChains, WcgOffsets};
use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let records = ctx.args.records;
    let models = suite::standard_suite();

    outln!(
        ctx,
        "{:<12} {:>9} {:>9} {:>11} {:>12} {:>9}",
        "benchmark",
        "default",
        "PH",
        "TRG+chains",
        "WCG+offsets",
        "GBSC"
    );
    let jobs: Vec<_> = models
        .iter()
        .map(|model| {
            move || {
                let program = model.program();
                let train = model.training_trace(records);
                let test = model.testing_trace(records);
                let session = Session::new(program, cache).profile(&train);
                let mut misses = 0u64;
                let mut mr = |alg: &dyn PlacementAlgorithm| {
                    let stats = session.evaluate(&session.place(alg), &test);
                    misses += stats.misses;
                    stats.miss_rate() * 100.0
                };
                let default_stats = session.evaluate(&Layout::source_order(program), &test);
                let line = format!(
                    "{:<12} {:>8.2}% {:>8.2}% {:>10.2}% {:>11.2}% {:>8.2}%",
                    model.name(),
                    default_stats.miss_rate() * 100.0,
                    mr(&PettisHansen::new()),
                    mr(&TrgChains::new()),
                    mr(&WcgOffsets::new()),
                    mr(&Gbsc::new()),
                );
                misses += default_stats.misses;
                (line, misses)
            }
        })
        .collect();
    for (line, misses) in ctx.run_jobs(jobs)? {
        ctx.tally_misses(misses);
        outln!(ctx, "{line}");
    }
    outln!(
        ctx,
        "\npaper's claim: the TRG alone (TRG+chains) does not guarantee wins;"
    );
    outln!(
        ctx,
        "only TRG selection *plus* the cache-aware offset scan (GBSC) does."
    );
    Ok(())
}
