//! **Ablation (§4.1)**: "we have found that a chunk size of 256 bytes
//! works well."
//!
//! Rebuilds each benchmark's program with chunk sizes 64..1024 bytes
//! (the granularity of `TRG_place`), re-profiles, re-places with GBSC,
//! and reports the testing miss rate. Smaller chunks cost profile space
//! and time; larger chunks blur the intra-procedure conflict structure.
//!
//! Parallel structure: stage A generates each benchmark's trace pair,
//! stage B runs the 15 (benchmark, chunk size) cells concurrently.

use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};

/// Rebuilds `program` with a different chunk size (procedures unchanged).
fn with_chunk_size(program: &Program, chunk_size: u32) -> Program {
    let mut b = Program::builder();
    b.chunk_size(chunk_size);
    for (_, p) in program.iter() {
        b.procedure(p.name().to_string(), p.size());
    }
    b.build().expect("same procedures, different chunking")
}

const CHUNKS: [u32; 5] = [64, 128, 256, 512, 1024];

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let records = ctx.args.records;
    let models = [suite::m88ksim(), suite::perl(), suite::go()];

    outln!(
        ctx,
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8}   (GBSC miss rate by chunk size)",
        "benchmark",
        "64B",
        "128B",
        "256B",
        "512B",
        "1024B"
    );
    let trace_jobs: Vec<_> = models
        .iter()
        .map(|model| move || (model.training_trace(records), model.testing_trace(records)))
        .collect();
    let traces = ctx.run_jobs(trace_jobs)?;

    let cell_jobs: Vec<_> = models
        .iter()
        .zip(&traces)
        .flat_map(|(model, (train, test))| {
            CHUNKS.map(move |chunk| {
                move || {
                    let program = with_chunk_size(model.program(), chunk);
                    let session = Session::new(&program, cache).profile(train);
                    let stats = session.evaluate(&session.place(&Gbsc::new()), test);
                    (stats.miss_rate() * 100.0, stats.misses)
                }
            })
        })
        .collect();
    let cells = ctx.run_jobs(cell_jobs)?;

    for (mi, model) in models.iter().enumerate() {
        let mut line = format!("{:<12}", model.name());
        for ci in 0..CHUNKS.len() {
            let (mr, misses) = cells[mi * CHUNKS.len() + ci];
            ctx.tally_misses(misses);
            line.push_str(&format!(" {mr:>7.2}%"));
        }
        outln!(ctx, "{line}");
    }
    outln!(
        ctx,
        "\npaper: 256 bytes is the sweet spot; the curve should be shallow around it."
    );
    Ok(())
}
