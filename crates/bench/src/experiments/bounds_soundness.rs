//! The miss-bound soundness harness: on every Table 1 workload, the
//! simulated conflict misses of every algorithm's layout must fall inside
//! the statically-derived interval (`tempo_analyze::bounds::miss_bounds`).
//!
//! Runs `cross_validate_bounds` in *strict* mode — an interval violation
//! panics with the offending layout and interval instead of degrading
//! into a statistic — so this experiment doubles as the CI gate for the
//! screening prefilter's soundness contract: a prefilter may only skip a
//! candidate on evidence that holds for the winner it keeps.

use tempo::analyze::predictor;
use tempo::prelude::*;
use tempo::workloads::{par as wpar, suite};
use tempo_par::Pool;

use crate::harness::{outln, Ctx, ExperimentError};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let models = suite::standard_suite();
    let records = ctx.args.records;
    let jobs: Vec<_> = models
        .iter()
        .map(|model| {
            move || {
                let (train, _) = wpar::train_test_traces(model, records, &Pool::new(1))
                    .unwrap_or_else(|p| panic!("{p}"));
                let session =
                    Session::new(model.program(), CacheConfig::direct_mapped_8k()).profile(&train);
                let layouts = [
                    ("default", Layout::source_order(model.program())),
                    ("PH", session.place(&PettisHansen::new())),
                    ("HKC", session.place(&CacheColoring::new())),
                    ("GBSC", session.place(&Gbsc::new())),
                ];
                let refs: Vec<&Layout> = layouts.iter().map(|(_, l)| l).collect();
                // Strict: a violated interval panics here, failing the
                // experiment (and CI) loudly.
                let v = predictor::cross_validate_bounds(
                    model.program(),
                    session.profile(),
                    &refs,
                    &train,
                    true,
                );
                let names: Vec<&'static str> = layouts.iter().map(|(n, _)| *n).collect();
                (model.name(), names, v)
            }
        })
        .collect();
    let results = ctx.run_jobs(jobs)?;

    let mut csv = Vec::new();
    let mut intervals = 0usize;
    let mut rank_agreements = 0usize;
    outln!(
        ctx,
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "benchmark",
        "layout",
        "lo",
        "conflict",
        "hi",
        "width"
    );
    for (name, layout_names, v) in &results {
        assert!(v.is_sound(), "strict mode returned with violations");
        for (ln, row) in layout_names.iter().zip(&v.rows) {
            ctx.tally_misses(row.misses);
            intervals += 1;
            outln!(
                ctx,
                "{name:<12} {ln:>8} {:>10} {:>10} {:>10} {:>8}",
                row.bounds.lo,
                row.conflict,
                row.bounds.hi,
                row.bounds.width()
            );
            csv.push(format!(
                "{name},{ln},{},{},{},{}",
                row.bounds.lo, row.conflict, row.bounds.hi, row.bounds.capacity_free
            ));
        }
        rank_agreements += usize::from(v.ranking.agrees());
    }
    outln!(ctx);
    outln!(
        ctx,
        "0 violations across {intervals} intervals on {} workloads (strict mode)",
        results.len()
    );
    outln!(
        ctx,
        "predictor ranking agreed with simulation on {rank_agreements}/{} workloads",
        results.len()
    );

    #[allow(clippy::cast_precision_loss)] // interval counts are tiny
    {
        ctx.metric("bounds.intervals", intervals as f64);
        ctx.metric("bounds.violations", 0.0);
    }
    if let Some(path) = ctx.csv_path() {
        ctx.set_csv("benchmark,layout,lo,conflict,hi,capacity_free", csv);
        outln!(ctx, "wrote {path}");
    }
    Ok(())
}
