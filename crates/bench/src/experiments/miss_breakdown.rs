//! **Diagnostic**: cold / capacity / conflict decomposition per algorithm.
//!
//! Placement can only remove *conflict* misses. This experiment classifies
//! every miss (three-C taxonomy, via a lockstep fully-associative LRU
//! model) for the default, PH, HKC, and GBSC layouts, showing that GBSC's
//! advantage comes exactly from the conflict column while cold/capacity
//! stay constant across layouts of the same trace — the mechanism behind
//! the paper's Figure 5 results.
//!
//! Parallel structure: stage A profiles and places each benchmark's four
//! layouts; stage B classifies the 8 (benchmark, layout) cells
//! concurrently.

use tempo::cache::classify;
use tempo::prelude::*;
use tempo::workloads::suite;

use crate::checked_place;
use crate::harness::{outln, Ctx, ExperimentError};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let records = ctx.args.records;
    let models = [suite::m88ksim(), suite::perl()];

    let prep_jobs: Vec<_> = models
        .iter()
        .map(|model| {
            move || {
                let program = model.program();
                let train = model.training_trace(records);
                let test = model.testing_trace(records);
                let session = Session::new(program, cache).profile(&train);
                let layouts: Vec<(&str, Layout)> = vec![
                    ("default", Layout::source_order(program)),
                    ("PH", checked_place(&session, &PettisHansen::new())),
                    ("HKC", checked_place(&session, &CacheColoring::new())),
                    ("GBSC", checked_place(&session, &Gbsc::new())),
                ];
                (test, layouts)
            }
        })
        .collect();
    let prepared = ctx.run_jobs(prep_jobs)?;

    let cell_jobs: Vec<_> = models
        .iter()
        .zip(&prepared)
        .flat_map(|(model, (test, layouts))| {
            let program = model.program();
            layouts.iter().map(move |(name, layout)| {
                move || {
                    let b = classify(program, layout, test, cache);
                    let line = format!(
                        "{:<8} {:>10} {:>10} {:>10} {:>7.2}% {:>8.1}%",
                        name,
                        b.cold,
                        b.capacity,
                        b.conflict,
                        b.miss_rate() * 100.0,
                        b.conflict_fraction() * 100.0
                    );
                    (line, b.cold + b.capacity + b.conflict)
                }
            })
        })
        .collect();
    let cells = ctx.run_jobs(cell_jobs)?;

    for (mi, model) in models.iter().enumerate() {
        outln!(ctx, "=== {} ===", model.name());
        outln!(
            ctx,
            "{:<8} {:>10} {:>10} {:>10} {:>8} {:>9}",
            "layout",
            "cold",
            "capacity",
            "conflict",
            "MR",
            "conflict%"
        );
        for li in 0..4 {
            let (line, misses) = &cells[mi * 4 + li];
            ctx.tally_misses(*misses);
            outln!(ctx, "{line}");
        }
        outln!(ctx);
    }
    outln!(
        ctx,
        "cold and capacity are layout-invariant; every miss GBSC removes"
    );
    outln!(
        ctx,
        "comes out of the conflict column — the misses the paper targets."
    );
    Ok(())
}
