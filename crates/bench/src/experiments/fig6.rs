//! **Figure 6**: conflict-metric ↔ miss-rate correlation.
//!
//! Generates 80 layouts of the `go` benchmark by randomly re-aligning 0–50
//! procedures of the GBSC placement (exactly the paper's procedure), then
//! plots — as CSV/summary — each layout's simulated miss rate against:
//!
//! * the TRG_place-based conflict metric (top of the paper's figure:
//!   expected to be nearly linear), and
//! * the WCG-based metric (bottom: expected to correlate poorly).
//!
//! Parallel structure: the perturbation phase stays serial (one RNG
//! stream feeds all 80 mutations, exactly like the historical loop), then
//! the expensive part — simulation plus both conflict metrics per layout —
//! fans out across the pool.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempo::place::metric::{trg_conflict_cost, wcg_conflict_cost};
use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};
use crate::pearson;

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let records = ctx.args.records;
    let runs = ctx.args.runs;
    let model = suite::go();
    let program = model.program();
    let (train, test) = tempo::workloads::par::train_test_traces(&model, records, ctx.pool())?;
    let session = Session::new(program, cache).profile(&train);
    let base = Gbsc::new().place_tuples(&session.context());

    // Serial phase: one RNG stream mutates all `runs` tuple sets.
    let mut rng = StdRng::seed_from_u64(ctx.args.seed);
    let mutated: Vec<_> = (0..runs)
        .map(|_| {
            let mut tuples = base.clone();
            // "randomly selecting 0-50 procedures ... and randomly changing
            // their cache-relative offsets" (§5.3).
            let k = rng.gen_range(0..=50usize);
            tuples.randomize_offsets(k, &mut rng);
            (k, tuples)
        })
        .collect();

    // Parallel phase: evaluate every mutated layout independently.
    let session_ref = &session;
    let test_ref = &test;
    let jobs: Vec<_> = mutated
        .into_iter()
        .map(|(k, tuples)| {
            move || {
                let layout = tuples.into_layout(&session_ref.context());
                let stats = session_ref.evaluate(&layout, test_ref);
                let mr = stats.miss_rate() * 100.0;
                let trg_cost =
                    trg_conflict_cost(program, &layout, &session_ref.profile().trg_place, cache);
                let wcg_cost =
                    wcg_conflict_cost(program, &layout, &session_ref.profile().wcg, cache);
                (k, mr, trg_cost, wcg_cost, stats.misses)
            }
        })
        .collect();

    let mut trg_points = Vec::with_capacity(runs);
    let mut wcg_points = Vec::with_capacity(runs);
    let mut csv = Vec::with_capacity(runs);
    for (run, (k, mr, trg_cost, wcg_cost, misses)) in ctx.run_jobs(jobs)?.into_iter().enumerate() {
        ctx.tally_misses(misses);
        trg_points.push((mr, trg_cost));
        wcg_points.push((mr, wcg_cost));
        csv.push(format!("{run},{k},{mr:.4},{trg_cost:.1},{wcg_cost:.1}"));
    }

    let r_trg = pearson(&trg_points);
    let r_wcg = pearson(&wcg_points);
    outln!(ctx, "{} layouts of go ({} records):", runs, records);
    outln!(
        ctx,
        "  TRG metric vs miss rate: pearson r = {r_trg:.3}   (paper: near-linear)"
    );
    outln!(
        ctx,
        "  WCG metric vs miss rate: pearson r = {r_wcg:.3}   (paper: poor predictor)"
    );
    let spread = |pts: &[(f64, f64)]| {
        let mrs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let lo = mrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = mrs.iter().cloned().fold(0.0, f64::max);
        (lo, hi)
    };
    let (lo, hi) = spread(&trg_points);
    outln!(
        ctx,
        "  miss-rate range across layouts: {lo:.2}% .. {hi:.2}%"
    );

    if let Some(path) = ctx.csv_path() {
        ctx.set_csv("run,k_mutated,miss_rate_pct,trg_cost,wcg_cost", csv);
        outln!(ctx, "wrote {path}");
    }
    Ok(())
}
