//! **§8 extension**: procedure splitting combined with GBSC.
//!
//! The paper's conclusion lists procedure splitting (Pettis–Hansen) as an
//! orthogonal technique that "can therefore be combined with our technique
//! to achieve further improvements". This experiment derives hot/cold
//! boundaries from the training trace, rewrites each benchmark, and
//! compares GBSC on the original vs. the split program (both evaluated on
//! the testing trace, the split one on the transformed testing trace —
//! same instruction stream, different code addresses). One pool job per
//! benchmark.

use tempo::place::splitting::{SplitPlan, SplitProgram};
use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let records = ctx.args.records;
    let models = suite::standard_suite();

    outln!(
        ctx,
        "{:<12} {:>7} {:>12} {:>11} {:>11} {:>9}",
        "benchmark",
        "split#",
        "hot bytes",
        "GBSC",
        "GBSC+split",
        "delta"
    );
    let jobs: Vec<_> = models
        .iter()
        .map(|model| {
            move || {
                let program = model.program();
                let train = model.training_trace(records);
                let test = model.testing_trace(records);

                // Baseline: GBSC on the unsplit program.
                let session = Session::new(program, cache).profile(&train);
                let base_stats = session.evaluate(&session.place(&Gbsc::new()), &test);
                let base = base_stats.miss_rate() * 100.0;

                // Split: boundaries at the 90th percentile of observed extents.
                let plan = SplitPlan::from_trace(program, &train, 0.90, 32);
                let sp = SplitProgram::split(program, &plan).expect("split is valid");
                let strain = sp.transform_trace(&train);
                let stest = sp.transform_trace(&test);
                let ssession = Session::new(sp.program(), cache).profile(&strain);
                let split_stats = ssession.evaluate(&ssession.place(&Gbsc::new()), &stest);
                let split = split_stats.miss_rate() * 100.0;

                let hot_bytes: u64 = program
                    .ids()
                    .map(|id| u64::from(sp.program().size_of(sp.hot_part(id))))
                    .sum();
                let line = format!(
                    "{:<12} {:>7} {:>11}K {:>10.2}% {:>10.2}% {:>+8.2}pp",
                    model.name(),
                    sp.split_count(),
                    hot_bytes / 1024,
                    base,
                    split,
                    split - base
                );
                (line, base_stats.misses + split_stats.misses)
            }
        })
        .collect();
    for (line, misses) in ctx.run_jobs(jobs)? {
        ctx.tally_misses(misses);
        outln!(ctx, "{line}");
    }
    outln!(
        ctx,
        "\npaper: splitting is orthogonal and should compound with GBSC"
    );
    outln!(ctx, "(negative delta = splitting helped).");
    Ok(())
}
