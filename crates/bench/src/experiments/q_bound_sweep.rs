//! **Ablation (§3)**: "Empirically, we have found that a bound on Q of
//! twice the cache size works quite well."
//!
//! Sweeps the Q capacity bound from 1x to 8x the cache size and reports
//! GBSC's testing miss rate plus the resulting profile sizes. Too small a
//! bound truncates real temporal relationships; too large a bound adds
//! stale capacity-eviction "relationships" (and profile bulk) without
//! improving placements.
//!
//! Parallel structure: stage A generates each benchmark's trace pair,
//! stage B runs the 8 (benchmark, bound factor) cells concurrently.

use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};

const FACTORS: [u64; 4] = [1, 2, 4, 8];

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let records = ctx.args.records;
    let models = [suite::m88ksim(), suite::go()];

    let trace_jobs: Vec<_> = models
        .iter()
        .map(|model| move || (model.training_trace(records), model.testing_trace(records)))
        .collect();
    let traces = ctx.run_jobs(trace_jobs)?;

    let cell_jobs: Vec<_> = models
        .iter()
        .zip(&traces)
        .flat_map(|(model, (train, test))| {
            FACTORS.map(move |factor| {
                move || {
                    let program = model.program();
                    let profile = Profiler::new(program, cache)
                        .q_bound_factor(factor)
                        .profile(train);
                    let session = tempo::ProfiledSession::from_profile(program, profile);
                    let stats = session.evaluate(&session.place(&Gbsc::new()), test);
                    let line = format!(
                        "{:>5}x {:>9.1} {:>12} {:>10} {:>8.2}%",
                        factor,
                        session.profile().q_stats.average,
                        session.profile().trg_select.edge_count(),
                        session.profile().trg_place.edge_count(),
                        stats.miss_rate() * 100.0
                    );
                    (line, stats.misses)
                }
            })
        })
        .collect();
    let cells = ctx.run_jobs(cell_jobs)?;

    for (mi, model) in models.iter().enumerate() {
        outln!(ctx, "=== {} ===", model.name());
        outln!(
            ctx,
            "{:>7} {:>9} {:>12} {:>10} {:>9}",
            "bound",
            "avg Q",
            "TRG edges",
            "place edges",
            "GBSC MR"
        );
        for fi in 0..FACTORS.len() {
            let (line, misses) = &cells[mi * FACTORS.len() + fi];
            ctx.tally_misses(*misses);
            outln!(ctx, "{line}");
        }
        outln!(ctx);
    }
    outln!(
        ctx,
        "paper: 2x is the empirical sweet spot — gains flatten beyond it while"
    );
    outln!(ctx, "profile size keeps growing.");
    Ok(())
}
