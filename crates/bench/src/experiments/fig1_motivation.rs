//! **Figure 1**: the motivating example.
//!
//! `M` calls three leaves: each iteration runs `M`, then `X` or `Y`
//! depending on `cond`, plus `Z` every fourth iteration. Two `cond`
//! patterns produce the *same* weighted call graph:
//!
//! * trace #1 — `cond` alternates: `M X M Y M X M Y (Z) ...`
//! * trace #2 — `cond` true 40 times then false 40 times.
//!
//! With a direct-mapped cache holding three procedure-sized slots and one
//! reserved for `M`, trace #1 wants `X` and `Y` on distinct slots (`Z`
//! sharing one of them), while trace #2 wants `X` and `Y` to share a slot
//! and `Z` to get its own. This experiment simulates both layouts under
//! both traces and shows GBSC picking the right one each time —
//! information the WCG cannot provide.

use tempo::prelude::*;

use crate::harness::{outln, Ctx, ExperimentError};

const SLOT: u64 = 672; // 21 cache lines: three slots fill a 2 KB cache

#[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let program = Program::builder()
        .procedure("M", SLOT as u32)
        .procedure("X", SLOT as u32)
        .procedure("Y", SLOT as u32)
        .procedure("Z", SLOT as u32)
        .chunk_size(1024)
        .build()
        .expect("valid program");
    let ids: Vec<ProcId> = program.ids().collect();
    let (m, x, y, z) = (ids[0], ids[1], ids[2], ids[3]);
    let cache = CacheConfig::direct_mapped(2048).expect("valid cache");

    let make_trace = |cond: &dyn Fn(usize) -> bool| {
        let mut refs = Vec::new();
        for i in 0..80 {
            refs.push(m);
            refs.push(if cond(i) { x } else { y });
            if i % 4 == 3 {
                refs.push(z);
            }
        }
        Trace::from_full_records(&program, refs)
    };
    let trace1 = make_trace(&|i| i % 2 == 0);
    let trace2 = make_trace(&|i| i < 40);

    // Layout A — X and Y distinct, Z shares X's slot (trace #1's winner).
    let xy_distinct = Layout::from_addresses(vec![0, SLOT, 2 * SLOT, SLOT + 2048]);
    // Layout B — X and Y share a slot, Z gets its own (trace #2's winner).
    let xy_shared = Layout::from_addresses(vec![0, SLOT, SLOT + 2048, 2 * SLOT]);
    xy_distinct.validate(&program).expect("layout A valid");
    xy_shared.validate(&program).expect("layout B valid");

    outln!(ctx, "cache: {cache}; every procedure is one 21-line slot\n");
    for (tname, trace) in [
        ("trace #1 (alternating)", &trace1),
        ("trace #2 (phased)", &trace2),
    ] {
        let profile = Profiler::new(&program, cache)
            .popularity(PopularitySelector::all())
            .profile(trace);
        outln!(ctx, "{tname}:");
        outln!(
            ctx,
            "  WCG edges : M-X {:>3} M-Y {:>3} M-Z {:>3} X-Z {:>3} Y-Z {:>3} X-Y {:>3}",
            profile.wcg.weight(0, 1),
            profile.wcg.weight(0, 2),
            profile.wcg.weight(0, 3),
            profile.wcg.weight(1, 3),
            profile.wcg.weight(2, 3),
            profile.wcg.weight(1, 2),
        );
        outln!(
            ctx,
            "  TRG edges : M-X {:>3} M-Y {:>3} M-Z {:>3} X-Z {:>3} Y-Z {:>3} X-Y {:>3}",
            profile.trg_select.weight(0, 1),
            profile.trg_select.weight(0, 2),
            profile.trg_select.weight(0, 3),
            profile.trg_select.weight(1, 3),
            profile.trg_select.weight(2, 3),
            profile.trg_select.weight(1, 2),
        );
        let sa = ctx.tally(simulate(&program, &xy_distinct, trace, cache));
        let sb = ctx.tally(simulate(&program, &xy_shared, trace, cache));
        let session = Session::new(&program, cache)
            .popularity(PopularitySelector::all())
            .profile(trace);
        let sg = ctx.tally(session.evaluate(&session.place(&Gbsc::new()), trace));
        let sp = ctx.tally(session.evaluate(&session.place(&PettisHansen::new()), trace));
        outln!(
            ctx,
            "  misses: X|Y distinct {:>5}   X=Y shared {:>5}   GBSC {:>5}   PH {:>5}",
            sa.misses,
            sb.misses,
            sg.misses,
            sp.misses
        );
        let best = if sa.misses < sb.misses {
            "distinct"
        } else {
            "shared"
        };
        outln!(ctx, "  -> best fixed layout: X/Y {best}\n");
    }
    outln!(
        ctx,
        "paper: the two traces share a WCG yet want opposite layouts; only the"
    );
    outln!(
        ctx,
        "TRG (which records the X-Y interleaving, or its absence) can tell."
    );
    Ok(())
}
