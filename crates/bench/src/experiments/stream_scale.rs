//! Paper-scale streaming experiment: profile and evaluate m88ksim from
//! lazy trace sources without ever materializing a trace.
//!
//! The paper's traces run 17M–146M basic blocks — far beyond what the
//! other experiments materialize. This experiment drives the full
//! pipeline (popularity pass, Q pass, shared-stream layout evaluation)
//! through `TraceSource` streaming at a default of 20M records, so its
//! peak memory stays flat no matter the trace length. CI runs it under a
//! hard `ulimit -v` ceiling that the materialized path cannot meet.
//!
//! The evaluation pass reads a TMP2 container from disk through
//! `open_v2_auto`, so it exercises the zero-copy whole-buffer decoder when
//! the file fits the map budget and the constant-memory streaming reader
//! when it does not (the 20M-record CI file deliberately overflows the
//! budget). Records reach the simulators in SoA blocks, one decode shared
//! by all layouts. Set `TEMPO_STREAM_INGEST=map|stream` to force a path;
//! the text report is byte-identical either way, which CI asserts.
//!
//! The text report carries only deterministic results (miss counts per
//! layout). Peak RSS, throughput, and the ingestion path taken are
//! machine- or environment-dependent, so they go into `BENCH_run.json`
//! via [`Ctx::metric`] instead.

use std::time::Instant;

use tempo::prelude::*;
use tempo::trace::open_v2_auto;
use tempo::workloads::suite;

use crate::checked_place;
use crate::harness::{outln, peak_rss_kb, Ctx, ExperimentError};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let records = ctx.args.records;
    let cache = CacheConfig::direct_mapped_8k();
    let model = suite::m88ksim();
    let program = model.program();

    // Serialize the testing stream into a TMP2 container on disk, outside
    // the timed window: ingestion is part of the pipeline under test,
    // producing the fixture is not. The writer consumes the generator
    // record by record, so nothing is materialized here either.
    let path = std::env::temp_dir().join(format!("tempo_stream_scale_{records}.v2"));
    tempo::trace::testkit::write_v2_file(&path, &mut model.testing_source(records))?;

    let start = Instant::now();
    // Two streaming passes (popularity, then Q) over the training input.
    let (session, _warnings) = Session::new(program, cache)
        .profile_with(|| Ok(model.training_source(records)))
        .expect("generator sources cannot fail");

    let layouts = [
        ("default", Layout::source_order(program)),
        ("ph", checked_place(&session, &PettisHansen::new())),
        ("gbsc", checked_place(&session, &Gbsc::new())),
    ];
    // One shared pass over the TMP2 file evaluates every layout: blocks
    // are decoded once and stepped through all simulators.
    let layout_list: Vec<Layout> = layouts.iter().map(|(_, l)| l.clone()).collect();
    let source = open_v2_auto(&path, None)?;
    let mapped = source.is_mapped();
    let stats = session
        .evaluate_layouts_streamed(&layout_list, source)
        .map_err(ExperimentError::Trace)?;
    ctx.note_cells(layout_list.len());
    let wall = start.elapsed().as_secs_f64();

    let streamed = 3 * records as u64;
    ctx.metric("streamed_records", streamed as f64);
    if wall > 0.0 {
        ctx.metric("records_per_sec", streamed as f64 / wall);
    }
    if let Some(kb) = peak_rss_kb() {
        ctx.metric("peak_rss_kb", kb as f64);
    }
    ctx.metric("ingest_mapped", if mapped { 1.0 } else { 0.0 });

    outln!(
        ctx,
        "stream-scale: m88ksim, {records} training + {records} testing records"
    );
    outln!(
        ctx,
        "profiled through TraceSource streaming; evaluated from a TMP2 container\n(zero-copy when it fits the map budget, streamed otherwise)"
    );
    outln!(ctx);
    outln!(ctx, "{:<8} {:>14} {:>10}", "layout", "misses", "miss rate");
    for ((name, _), s) in layouts.iter().zip(stats) {
        let s = ctx.tally(s);
        outln!(
            ctx,
            "{name:<8} {:>14} {:>9.3}%",
            s.misses,
            s.miss_rate() * 100.0
        );
    }
    outln!(ctx);
    outln!(
        ctx,
        "peak RSS, records/sec, and the ingestion path are recorded in\nBENCH_run.json, not here: the report must stay byte-identical across\nmachines, --jobs values, and TEMPO_STREAM_INGEST settings."
    );
    let _ = std::fs::remove_file(&path);
    Ok(())
}
