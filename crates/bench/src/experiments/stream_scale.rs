//! Paper-scale streaming experiment: profile and evaluate m88ksim from
//! lazy trace sources without ever materializing a trace.
//!
//! The paper's traces run 17M–146M basic blocks — far beyond what the
//! other experiments materialize. This experiment drives the full
//! pipeline (popularity pass, Q pass, shared-stream layout evaluation)
//! through `TraceSource` streaming at a default of 20M records, so its
//! peak memory stays flat no matter the trace length. CI runs it under a
//! hard `ulimit -v` ceiling that the materialized path cannot meet.
//!
//! The text report carries only deterministic results (miss counts per
//! layout). Peak RSS and throughput are machine-dependent, so they go
//! into `BENCH_run.json` via [`Ctx::metric`] instead.

use std::time::Instant;

use tempo::prelude::*;
use tempo::workloads::suite;

use crate::checked_place;
use crate::harness::{outln, peak_rss_kb, Ctx, ExperimentError};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let records = ctx.args.records;
    let cache = CacheConfig::direct_mapped_8k();
    let model = suite::m88ksim();
    let program = model.program();

    let start = Instant::now();
    // Two streaming passes (popularity, then Q) over the training input.
    let (session, _warnings) = Session::new(program, cache)
        .profile_with(|| Ok(model.training_source(records)))
        .expect("generator sources cannot fail");

    let layouts = [
        ("default", Layout::source_order(program)),
        ("ph", checked_place(&session, &PettisHansen::new())),
        ("gbsc", checked_place(&session, &Gbsc::new())),
    ];
    // One shared pass over the testing input evaluates every layout.
    let layout_list: Vec<Layout> = layouts.iter().map(|(_, l)| l.clone()).collect();
    let stats = session
        .evaluate_layouts_streamed(&layout_list, model.testing_source(records))
        .expect("generator sources cannot fail");
    ctx.note_cells(layout_list.len());
    let wall = start.elapsed().as_secs_f64();

    let streamed = 3 * records as u64;
    ctx.metric("streamed_records", streamed as f64);
    if wall > 0.0 {
        ctx.metric("records_per_sec", streamed as f64 / wall);
    }
    if let Some(kb) = peak_rss_kb() {
        ctx.metric("peak_rss_kb", kb as f64);
    }

    outln!(
        ctx,
        "stream-scale: m88ksim, {records} training + {records} testing records"
    );
    outln!(
        ctx,
        "profiled and evaluated through TraceSource streaming (no materialized trace)"
    );
    outln!(ctx);
    outln!(ctx, "{:<8} {:>14} {:>10}", "layout", "misses", "miss rate");
    for ((name, _), s) in layouts.iter().zip(stats) {
        let s = ctx.tally(s);
        outln!(
            ctx,
            "{name:<8} {:>14} {:>9.3}%",
            s.misses,
            s.miss_rate() * 100.0
        );
    }
    outln!(ctx);
    outln!(
        ctx,
        "peak RSS and records/sec are recorded in BENCH_run.json, not here:\nthe report must stay byte-identical across machines and --jobs values."
    );
    Ok(())
}
