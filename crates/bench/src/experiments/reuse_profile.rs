//! **Diagnostic (§3)**: reuse-distance support for the Q-set bound.
//!
//! The paper keeps a block in `Q` until twice the cache size of unique
//! code has passed since its last reference, arguing that reuses beyond
//! that are capacity-doomed anyway. This experiment computes each
//! benchmark's byte reuse-distance distribution and reports what fraction
//! of reuses fall within one and two cache sizes — i.e. how much of the
//! temporal structure the Q bound captures — plus the per-phase
//! working-set sizes that determine the conflict pressure. One pool job
//! per benchmark.

use tempo::prelude::*;
use tempo::trace::analysis::{reuse_distances, working_set_sizes};
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let c = u64::from(cache.size());
    let records = ctx.args.records;
    let models = suite::standard_suite();

    outln!(
        ctx,
        "{:<12} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "benchmark",
        "reuses",
        "<=1x",
        "<=2x",
        "<=4x",
        "medianWS",
        "maxWS"
    );
    let jobs: Vec<_> = models
        .iter()
        .map(|model| {
            move || {
                let program = model.program();
                let trace = model.training_trace(records);
                let s = reuse_distances(program, &trace, &[c, 2 * c, 4 * c]);
                let pct = |i: usize| 100.0 * s.at_or_below[i] as f64 / s.count.max(1) as f64;
                let mut ws = working_set_sizes(program, &trace, 2_000);
                ws.sort_unstable();
                let median_ws = ws.get(ws.len() / 2).copied().unwrap_or(0);
                let max_ws = ws.last().copied().unwrap_or(0);
                format!(
                    "{:<12} {:>9} {:>7.1}% {:>7.1}% {:>7.1}% {:>9}K {:>9}K",
                    model.name(),
                    s.count,
                    pct(0),
                    pct(1),
                    pct(2),
                    median_ws / 1024,
                    max_ws / 1024
                )
            }
        })
        .collect();
    for line in ctx.run_jobs(jobs)? {
        outln!(ctx, "{line}");
    }
    outln!(
        ctx,
        "\nIf the <=2x column is close to the <=4x column, the paper's Q bound of"
    );
    outln!(
        ctx,
        "twice the cache size captures almost every placement-relevant reuse."
    );
    Ok(())
}
