//! **§5.1 / Blackwell**: perturbation-scale sweep.
//!
//! The paper (citing Blackwell's thesis) notes that perturbation scales as
//! low as s = 0.01 already elicit most of the performance variation, while
//! s as high as 2.0 "does not degrade the average performance very much".
//! This experiment sweeps s over {0, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0} for
//! GBSC on `go` and reports the spread of testing miss rates at each
//! scale. Each scale is one pool job with its own freshly seeded RNG
//! stream (exactly the serial per-scale stream).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};
use crate::{median, sorted};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let records = ctx.args.records;
    let runs = ctx.args.runs;
    let seed = ctx.args.seed;
    let model = suite::go();
    let program = model.program();
    let (train, test) = tempo::workloads::par::train_test_traces(&model, records, ctx.pool())?;
    let session = Session::new(program, cache).profile(&train);

    outln!(
        ctx,
        "go, GBSC, {} perturbed placements per scale ({} records):",
        runs,
        records
    );
    outln!(
        ctx,
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "s",
        "min",
        "median",
        "max",
        "range"
    );
    let session_ref = &session;
    let test_ref = &test;
    let jobs: Vec<_> = [0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0]
        .into_iter()
        .map(|s| {
            move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut misses = 0u64;
                let rates: Vec<f64> = (0..runs)
                    .map(|_| {
                        let perturbed = session_ref.perturbed(s, &mut rng);
                        let layout = perturbed.place(&Gbsc::new());
                        let stats = perturbed.evaluate(&layout, test_ref);
                        misses += stats.misses;
                        stats.miss_rate() * 100.0
                    })
                    .collect();
                (s, rates, misses)
            }
        })
        .collect();
    for (s, rates, misses) in ctx.run_jobs(jobs)? {
        ctx.tally_misses(misses);
        let v = sorted(&rates);
        outln!(
            ctx,
            "{s:>6.2} {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}pp",
            v[0],
            median(&rates),
            v[v.len() - 1],
            v[v.len() - 1] - v[0]
        );
    }
    outln!(
        ctx,
        "\npaper: most of the variation appears by s = 0.01; s = 2.0 does not"
    );
    outln!(
        ctx,
        "degrade the average much (the placement relies on weight *order*)."
    );
    Ok(())
}
