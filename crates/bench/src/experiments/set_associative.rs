//! **§6**: placement for set-associative caches.
//!
//! On a 2-way 8 KB LRU cache, compares: the default layout, PH, the
//! direct-mapped GBSC layout (trained as if the cache were direct-mapped),
//! and GBSC-SA using the §6 pair database D(p, {r, s}). The two benchmark
//! blocks run as independent pool jobs (each double-profiles its training
//! trace: once with the pair database, once direct-mapped).

use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let sa_cache = CacheConfig::two_way_8k();
    let records = ctx.args.records;
    let models = [suite::m88ksim(), suite::perl()];

    let jobs: Vec<_> = models
        .iter()
        .map(|model| {
            move || {
                let program = model.program();
                let train = model.training_trace(records);
                let test = model.testing_trace(records);

                // Profile twice: once with the pair database for the SA cache,
                // once as direct-mapped for the DM-trained GBSC reference.
                let sa_session = Session::new(program, sa_cache)
                    .with_pair_db(true)
                    .profile(&train);
                let dm_session =
                    Session::new(program, CacheConfig::direct_mapped_8k()).profile(&train);

                let mut lines = Vec::new();
                let mut misses = 0u64;
                lines.push(format!("=== {} on {} ===", model.name(), sa_cache));
                lines.push(format!(
                    "pair database: {} associations",
                    sa_session
                        .profile()
                        .pair_db
                        .as_ref()
                        .map_or(0, |db| db.len())
                ));
                let mut mr = |layout: &Layout| {
                    let stats = simulate(program, layout, &test, sa_cache);
                    misses += stats.misses;
                    stats.miss_rate() * 100.0
                };
                lines.push(format!(
                    "{:<22} {:>8.2}%",
                    "default",
                    mr(&Layout::source_order(program))
                ));
                lines.push(format!(
                    "{:<22} {:>8.2}%",
                    "PH",
                    mr(&sa_session.place(&PettisHansen::new()))
                ));
                lines.push(format!(
                    "{:<22} {:>8.2}%",
                    "GBSC (DM-trained)",
                    mr(&dm_session.place(&Gbsc::new()))
                ));
                lines.push(format!(
                    "{:<22} {:>8.2}%",
                    "GBSC-SA (pair db)",
                    mr(&sa_session.place(&GbscSetAssoc::new()))
                ));
                lines.push(String::new());
                (lines, misses)
            }
        })
        .collect();
    for (lines, misses) in ctx.run_jobs(jobs)? {
        ctx.tally_misses(misses);
        for line in lines {
            outln!(ctx, "{line}");
        }
    }
    outln!(
        ctx,
        "paper: the DM assumption (one intervening block evicts) is conservative"
    );
    outln!(
        ctx,
        "for LRU associative caches; the pair database models the two-victim rule."
    );
    Ok(())
}
