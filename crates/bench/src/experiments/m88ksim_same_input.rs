//! **§5.3 note**: m88ksim with train = test.
//!
//! The paper's m88ksim train/test pair is a poor match ("dcrand is a poor
//! training set for dhry"), so its headline numbers are inconclusive; when
//! training and testing on the *same* input (dcrand) the paper reports
//! 0.13% (GBSC), 0.19% (HKC), 0.23% (PH). This experiment reproduces both
//! views: cross-input and same-input miss rates for all three algorithms,
//! one pool job per algorithm.

use tempo::prelude::*;
use tempo::workloads::suite;

use crate::harness::{outln, Ctx, ExperimentError};

fn algorithm(index: usize) -> Box<dyn PlacementAlgorithm> {
    match index {
        0 => Box::new(PettisHansen::new()),
        1 => Box::new(CacheColoring::new()),
        _ => Box::new(Gbsc::new()),
    }
}

pub(crate) fn run(ctx: &mut Ctx) -> Result<(), ExperimentError> {
    let cache = CacheConfig::direct_mapped_8k();
    let records = ctx.args.records;
    let model = suite::m88ksim();
    let program = model.program();
    let (train, test) = tempo::workloads::par::train_test_traces(&model, records, ctx.pool())?;
    let session = Session::new(program, cache).profile(&train);

    let session_ref = &session;
    let (train_ref, test_ref) = (&train, &test);
    let jobs: Vec<_> = (0..3)
        .map(|ai| {
            move || {
                let alg = algorithm(ai);
                let layout = session_ref.place(alg.as_ref());
                let cross_stats = session_ref.evaluate(&layout, test_ref);
                let same_stats = session_ref.evaluate(&layout, train_ref);
                (
                    alg.name().to_string(),
                    cross_stats.miss_rate() * 100.0,
                    same_stats.miss_rate() * 100.0,
                    cross_stats.misses + same_stats.misses,
                )
            }
        })
        .collect();
    let results = ctx.run_jobs(jobs)?;

    outln!(ctx, "m88ksim ({records} records):");
    outln!(
        ctx,
        "{:<6} {:>16} {:>16}",
        "alg",
        "train->test",
        "train->train"
    );
    for (name, cross, same, misses) in results {
        ctx.tally_misses(misses);
        outln!(ctx, "{name:<6} {cross:>15.2}% {same:>15.2}%");
    }
    let d = Layout::source_order(program);
    let d_cross = ctx.tally(session.evaluate(&d, &test)).miss_rate() * 100.0;
    let d_same = ctx.tally(session.evaluate(&d, &train)).miss_rate() * 100.0;
    outln!(ctx, "{:<6} {d_cross:>15.2}% {d_same:>15.2}%", "default");
    outln!(
        ctx,
        "\npaper (train = test = dcrand): GBSC 0.13% < HKC 0.19% < PH 0.23% —\nthe ordering, not the absolute level, is the reproduction target."
    );
    Ok(())
}
