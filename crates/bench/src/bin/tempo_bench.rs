//! The unified evaluation driver.
//!
//! Subcommands:
//!
//! * `run-all` — run every registered experiment (or a `--only` subset)
//!   through the shared harness, writing `results/`-style outputs plus a
//!   machine-readable `BENCH_run.json`. Exit 0 when every experiment
//!   completed, 1 when any failed, 2 on usage/filesystem errors.
//! * `list` — print the experiment registry.
//! * `check-regression` — compare a `BENCH_run.json` against a checked-in
//!   baseline: simulated miss counts must match exactly, total wall time
//!   must stay within the slack, and per-experiment streaming throughput
//!   must stay above the ratchet floor. Exit 0 pass, 1 fail, 2 on errors.

use std::path::PathBuf;
use std::process::ExitCode;

use tempo_bench::harness::{self, RunAllOpts, RunAllReport};

const USAGE: &str = "usage: tempo-bench <command> [options]

commands:
  run-all            run every experiment through the shared harness
    --records N        override every experiment's trace length
    --runs N           override every experiment's randomized-run count
    --jobs N           worker threads (default: available parallelism)
    --seed N           RNG seed (default 0xBA5E)
    --out-dir DIR      output directory (default: results)
    --bench-json PATH  machine-readable run record (default: BENCH_run.json)
    --no-bench-json    skip the run record
    --only NAMES       comma-separated subset of experiments
    --quiet            suppress per-experiment progress on stderr
    --prefilter        screen candidate layouts with the static
                       miss-bound analyzer before simulating
                       (experiments that support it: cache_sweep)
  list               print the experiment registry
  check-regression   compare a run record against a baseline
    --current PATH     run record to check (default: BENCH_run.json)
    --baseline PATH    baseline record (default: results/bench_baseline.json)
    --wall-slack PCT   allowed total wall-time regression (default 20)
    --throughput-floor PCT
                       minimum records/sec retained per experiment, as a
                       percentage of the baseline's records_per_sec
                       metric (default 70; experiments without the
                       metric are exempt)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run-all") => run_all(&args[1..]),
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("check-regression") => check_regression(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("tempo-bench: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn list() {
    println!(
        "{:<22} {:>8} {:>5} {:>4}  title",
        "experiment", "records", "runs", "csv"
    );
    for spec in harness::REGISTRY {
        println!(
            "{:<22} {:>8} {:>5} {:>4}  {}",
            spec.name,
            spec.default_records,
            spec.default_runs,
            if spec.has_csv { "yes" } else { "no" },
            spec.title
        );
    }
}

fn run_all(args: &[String]) -> ExitCode {
    let mut opts = RunAllOpts {
        verbose: true,
        ..RunAllOpts::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--records" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) => opts.records = Some(v),
                None => return usage_error("--records needs a number"),
            },
            "--runs" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) => opts.runs = Some(v),
                None => return usage_error("--runs needs a number"),
            },
            "--jobs" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) => opts.jobs = v,
                None => return usage_error("--jobs needs a number"),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) => opts.seed = v,
                None => return usage_error("--seed needs a number"),
            },
            "--out-dir" => match it.next() {
                Some(v) => opts.out_dir = PathBuf::from(v),
                None => return usage_error("--out-dir needs a path"),
            },
            "--bench-json" => match it.next() {
                Some(v) => opts.bench_json = Some(PathBuf::from(v)),
                None => return usage_error("--bench-json needs a path"),
            },
            "--no-bench-json" => opts.bench_json = None,
            "--only" => match it.next() {
                Some(v) => {
                    opts.only = Some(v.split(',').map(|s| s.trim().to_string()).collect());
                }
                None => return usage_error("--only needs a comma-separated list"),
            },
            "--quiet" => opts.verbose = false,
            "--prefilter" => opts.prefilter = true,
            other => return usage_error(&format!("unknown run-all flag `{other}`")),
        }
    }

    match harness::run_all(&opts) {
        Ok(report) => {
            let failed: Vec<&str> = report
                .experiments
                .iter()
                .filter(|e| !e.ok)
                .map(|e| e.name.as_str())
                .collect();
            eprintln!(
                "tempo-bench: {} experiments, {:.1} s wall, {} jobs{}",
                report.experiments.len(),
                report.total_wall_ms / 1e3,
                report.jobs,
                if failed.is_empty() {
                    String::new()
                } else {
                    format!(", FAILED: {}", failed.join(", "))
                }
            );
            if failed.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tempo-bench: {e}");
            ExitCode::from(2)
        }
    }
}

fn check_regression(args: &[String]) -> ExitCode {
    let mut current = PathBuf::from("BENCH_run.json");
    let mut baseline = PathBuf::from("results/bench_baseline.json");
    let mut wall_slack = 20.0f64;
    let mut throughput_floor = 70.0f64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--current" => match it.next() {
                Some(v) => current = PathBuf::from(v),
                None => return usage_error("--current needs a path"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline = PathBuf::from(v),
                None => return usage_error("--baseline needs a path"),
            },
            "--wall-slack" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) => wall_slack = v,
                None => return usage_error("--wall-slack needs a number"),
            },
            "--throughput-floor" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) => throughput_floor = v,
                None => return usage_error("--throughput-floor needs a number"),
            },
            other => return usage_error(&format!("unknown check-regression flag `{other}`")),
        }
    }

    let load = |path: &PathBuf| -> Result<RunAllReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        RunAllReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let (cur, base) = match (load(&current), load(&baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("tempo-bench: {e}");
            return ExitCode::from(2);
        }
    };

    let verdict = harness::check_regression(&cur, &base, wall_slack, throughput_floor);
    for note in &verdict.notes {
        eprintln!("tempo-bench: note: {note}");
    }
    if verdict.ok() {
        eprintln!(
            "tempo-bench: regression gate PASSED ({} baseline experiments)",
            base.experiments.len()
        );
        ExitCode::SUCCESS
    } else {
        for failure in &verdict.failures {
            eprintln!("tempo-bench: FAIL: {failure}");
        }
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("tempo-bench: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
