//! **§5.3 note**: m88ksim with train = test.
//!
//! The paper's m88ksim train/test pair is a poor match ("dcrand is a poor
//! training set for dhry"), so its headline numbers are inconclusive; when
//! training and testing on the *same* input (dcrand) the paper reports
//! 0.13% (GBSC), 0.19% (HKC), 0.23% (PH). This binary reproduces both
//! views: cross-input and same-input miss rates for all three algorithms.
//!
//! Run: `cargo run --release -p tempo-bench --bin m88ksim_same_input
//!       [--records N]`

use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse(200_000, 1);
    let cache = CacheConfig::direct_mapped_8k();
    let model = suite::m88ksim();
    let program = model.program();
    let train = model.training_trace(args.records);
    let test = model.testing_trace(args.records);
    let session = Session::new(program, cache).profile(&train);

    let algorithms: &[&dyn PlacementAlgorithm] =
        &[&PettisHansen::new(), &CacheColoring::new(), &Gbsc::new()];

    println!("m88ksim ({} records):", args.records);
    println!("{:<6} {:>16} {:>16}", "alg", "train->test", "train->train");
    for alg in algorithms {
        let layout = session.place(*alg);
        let cross = session.evaluate(&layout, &test).miss_rate() * 100.0;
        let same = session.evaluate(&layout, &train).miss_rate() * 100.0;
        println!("{:<6} {cross:>15.2}% {same:>15.2}%", alg.name());
    }
    let d = Layout::source_order(program);
    println!(
        "{:<6} {:>15.2}% {:>15.2}%",
        "default",
        session.evaluate(&d, &test).miss_rate() * 100.0,
        session.evaluate(&d, &train).miss_rate() * 100.0
    );
    println!(
        "\npaper (train = test = dcrand): GBSC 0.13% < HKC 0.19% < PH 0.23% —\nthe ordering, not the absolute level, is the reproduction target."
    );
}
