//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::m88ksim_same_input`].

fn main() {
    tempo_bench::harness::bin_main("m88ksim_same_input");
}
