//! **§5.2 remark**: "We also experimented with smaller cache sizes and
//! obtained similar results."
//!
//! Sweeps the direct-mapped cache size from 2 KB to 16 KB and reports the
//! testing miss rate of default, PH, HKC, and GBSC for each size (each
//! algorithm re-profiled and re-placed per size, since the Q bound and the
//! offset space depend on the geometry).
//!
//! Run: `cargo run --release -p tempo-bench --bin cache_sweep
//!       [--records N] [--out sweep.csv]`

use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::{checked_place, CommonArgs};

fn main() {
    let args = CommonArgs::parse(150_000, 1);
    let mut csv = Vec::new();

    for model in [suite::m88ksim(), suite::perl(), suite::go()] {
        let program = model.program();
        let train = model.training_trace(args.records);
        let test = model.testing_trace(args.records);
        println!("=== {} ===", model.name());
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>9}",
            "cache", "default", "PH", "HKC", "GBSC"
        );
        for kb in [2u32, 4, 8, 16] {
            let cache = CacheConfig::direct_mapped(kb * 1024).expect("valid size");
            let session = Session::new(program, cache).profile(&train);
            let mr = |l: &Layout| session.evaluate(l, &test).miss_rate() * 100.0;
            let d = mr(&Layout::source_order(program));
            let ph = mr(&checked_place(&session, &PettisHansen::new()));
            let hkc = mr(&checked_place(&session, &CacheColoring::new()));
            let gbsc = mr(&checked_place(&session, &Gbsc::new()));
            println!("{kb:>6}KB {d:>8.2}% {ph:>8.2}% {hkc:>8.2}% {gbsc:>8.2}%");
            csv.push(format!(
                "{},{kb},{d:.4},{ph:.4},{hkc:.4},{gbsc:.4}",
                model.name()
            ));
        }
        println!();
    }

    if let Some(path) = &args.out {
        tempo_bench::write_csv(path, "benchmark,cache_kb,default,ph,hkc,gbsc", &csv)
            .expect("write csv");
        println!("wrote {path}");
    }
    println!("paper: the GBSC advantage persists across smaller cache sizes.");
}
