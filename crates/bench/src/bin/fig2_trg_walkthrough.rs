//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::fig2_trg_walkthrough`].

fn main() {
    tempo_bench::harness::bin_main("fig2_trg_walkthrough");
}
