//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::stream_scale`].

fn main() {
    tempo_bench::harness::bin_main("stream_scale");
}
