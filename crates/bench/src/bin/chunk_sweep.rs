//! **Ablation (§4.1)**: "we have found that a chunk size of 256 bytes
//! works well."
//!
//! Rebuilds each benchmark's program with chunk sizes 64..1024 bytes
//! (the granularity of `TRG_place`), re-profiles, re-places with GBSC,
//! and reports the testing miss rate. Smaller chunks cost profile space
//! and time; larger chunks blur the intra-procedure conflict structure.
//!
//! Run: `cargo run --release -p tempo-bench --bin chunk_sweep [--records N]`

use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::CommonArgs;

/// Rebuilds `program` with a different chunk size (procedures unchanged).
fn with_chunk_size(program: &Program, chunk_size: u32) -> Program {
    let mut b = Program::builder();
    b.chunk_size(chunk_size);
    for (_, p) in program.iter() {
        b.procedure(p.name().to_string(), p.size());
    }
    b.build().expect("same procedures, different chunking")
}

fn main() {
    let args = CommonArgs::parse(150_000, 1);
    let cache = CacheConfig::direct_mapped_8k();

    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8}   (GBSC miss rate by chunk size)",
        "benchmark", "64B", "128B", "256B", "512B", "1024B"
    );
    for model in [suite::m88ksim(), suite::perl(), suite::go()] {
        let train = model.training_trace(args.records);
        let test = model.testing_trace(args.records);
        print!("{:<12}", model.name());
        for chunk in [64u32, 128, 256, 512, 1024] {
            let program = with_chunk_size(model.program(), chunk);
            let session = Session::new(&program, cache).profile(&train);
            let mr = session
                .evaluate(&session.place(&Gbsc::new()), &test)
                .miss_rate()
                * 100.0;
            print!(" {mr:>7.2}%");
        }
        println!();
    }
    println!("\npaper: 256 bytes is the sweet spot; the curve should be shallow around it.");
}
