//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::chunk_sweep`].

fn main() {
    tempo_bench::harness::bin_main("chunk_sweep");
}
