//! **Figure 6**: conflict-metric ↔ miss-rate correlation.
//!
//! Generates 80 layouts of the `go` benchmark by randomly re-aligning 0–50
//! procedures of the GBSC placement (exactly the paper's procedure), then
//! plots — as CSV/summary — each layout's simulated miss rate against:
//!
//! * the TRG_place-based conflict metric (top of the paper's figure:
//!   expected to be nearly linear), and
//! * the WCG-based metric (bottom: expected to correlate poorly).
//!
//! Run: `cargo run --release -p tempo-bench --bin fig6
//!       [--records N] [--runs N] [--seed N] [--out fig6.csv]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempo::place::metric::{trg_conflict_cost, wcg_conflict_cost};
use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::{pearson, CommonArgs};

fn main() {
    let args = CommonArgs::parse(200_000, 80);
    let cache = CacheConfig::direct_mapped_8k();
    let model = suite::go();
    let program = model.program();
    let train = model.training_trace(args.records);
    let test = model.testing_trace(args.records);
    let session = Session::new(program, cache).profile(&train);
    let base = Gbsc::new().place_tuples(&session.context());

    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut trg_points = Vec::with_capacity(args.runs);
    let mut wcg_points = Vec::with_capacity(args.runs);
    let mut csv = Vec::with_capacity(args.runs);
    for run in 0..args.runs {
        let mut tuples = base.clone();
        // "randomly selecting 0-50 procedures ... and randomly changing
        // their cache-relative offsets" (§5.3).
        let k = rng.gen_range(0..=50usize);
        tuples.randomize_offsets(k, &mut rng);
        let layout = tuples.into_layout(&session.context());
        let stats = session.evaluate(&layout, &test);
        let mr = stats.miss_rate() * 100.0;
        let trg_cost = trg_conflict_cost(program, &layout, &session.profile().trg_place, cache);
        let wcg_cost = wcg_conflict_cost(program, &layout, &session.profile().wcg, cache);
        trg_points.push((mr, trg_cost));
        wcg_points.push((mr, wcg_cost));
        csv.push(format!("{run},{k},{mr:.4},{trg_cost:.1},{wcg_cost:.1}"));
    }

    let r_trg = pearson(&trg_points);
    let r_wcg = pearson(&wcg_points);
    println!("{} layouts of go ({} records):", args.runs, args.records);
    println!("  TRG metric vs miss rate: pearson r = {r_trg:.3}   (paper: near-linear)");
    println!("  WCG metric vs miss rate: pearson r = {r_wcg:.3}   (paper: poor predictor)");
    let spread = |pts: &[(f64, f64)]| {
        let mrs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let lo = mrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = mrs.iter().cloned().fold(0.0, f64::max);
        (lo, hi)
    };
    let (lo, hi) = spread(&trg_points);
    println!("  miss-rate range across layouts: {lo:.2}% .. {hi:.2}%");

    if let Some(path) = &args.out {
        tempo_bench::write_csv(path, "run,k_mutated,miss_rate_pct,trg_cost,wcg_cost", &csv)
            .expect("write csv");
        println!("wrote {path}");
    }
}
