//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::fig6`].

fn main() {
    tempo_bench::harness::bin_main("fig6");
}
