//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::reuse_profile`].

fn main() {
    tempo_bench::harness::bin_main("reuse_profile");
}
