//! **Diagnostic (§3)**: reuse-distance support for the Q-set bound.
//!
//! The paper keeps a block in `Q` until twice the cache size of unique
//! code has passed since its last reference, arguing that reuses beyond
//! that are capacity-doomed anyway. This binary computes each benchmark's
//! byte reuse-distance distribution and reports what fraction of reuses
//! fall within one and two cache sizes — i.e. how much of the temporal
//! structure the Q bound captures — plus the per-phase working-set sizes
//! that determine the conflict pressure.
//!
//! Run: `cargo run --release -p tempo-bench --bin reuse_profile
//!       [--records N]`

use tempo::prelude::*;
use tempo::trace::analysis::{reuse_distances, working_set_sizes};
use tempo::workloads::suite;
use tempo_bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse(100_000, 1);
    let cache = CacheConfig::direct_mapped_8k();
    let c = u64::from(cache.size());

    println!(
        "{:<12} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "benchmark", "reuses", "<=1x", "<=2x", "<=4x", "medianWS", "maxWS"
    );
    for model in suite::standard_suite() {
        let program = model.program();
        let trace = model.training_trace(args.records);
        let s = reuse_distances(program, &trace, &[c, 2 * c, 4 * c]);
        let pct = |i: usize| 100.0 * s.at_or_below[i] as f64 / s.count.max(1) as f64;
        let mut ws = working_set_sizes(program, &trace, 2_000);
        ws.sort_unstable();
        let median_ws = ws.get(ws.len() / 2).copied().unwrap_or(0);
        let max_ws = ws.last().copied().unwrap_or(0);
        println!(
            "{:<12} {:>9} {:>7.1}% {:>7.1}% {:>7.1}% {:>9}K {:>9}K",
            model.name(),
            s.count,
            pct(0),
            pct(1),
            pct(2),
            median_ws / 1024,
            max_ws / 1024
        );
    }
    println!("\nIf the <=2x column is close to the <=4x column, the paper's Q bound of");
    println!("twice the cache size captures almost every placement-relevant reuse.");
}
