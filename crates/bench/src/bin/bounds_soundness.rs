//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::bounds_soundness`].

fn main() {
    tempo_bench::harness::bin_main("bounds_soundness");
}
