//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::ablation_chains`].

fn main() {
    tempo_bench::harness::bin_main("ablation_chains");
}
