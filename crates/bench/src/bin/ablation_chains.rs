//! **Ablation (§4)**: "extra temporal ordering information alone is not
//! sufficient to guarantee lower instruction cache miss rates."
//!
//! Cross of the paper's two ingredients:
//!
//! | | chains (PH placement) | offset scan (GBSC placement) |
//! |---|---|---|
//! | **WCG selection** | PH | WCG+offsets |
//! | **TRG selection** | TRG+chains | GBSC |
//!
//! Run: `cargo run --release -p tempo-bench --bin ablation_chains
//!       [--records N]`

use tempo::place::{TrgChains, WcgOffsets};
use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse(150_000, 1);
    let cache = CacheConfig::direct_mapped_8k();

    println!(
        "{:<12} {:>9} {:>9} {:>11} {:>12} {:>9}",
        "benchmark", "default", "PH", "TRG+chains", "WCG+offsets", "GBSC"
    );
    for model in suite::standard_suite() {
        let program = model.program();
        let train = model.training_trace(args.records);
        let test = model.testing_trace(args.records);
        let session = Session::new(program, cache).profile(&train);
        let mr = |alg: &dyn PlacementAlgorithm| {
            session.evaluate(&session.place(alg), &test).miss_rate() * 100.0
        };
        println!(
            "{:<12} {:>8.2}% {:>8.2}% {:>10.2}% {:>11.2}% {:>8.2}%",
            model.name(),
            session
                .evaluate(&Layout::source_order(program), &test)
                .miss_rate()
                * 100.0,
            mr(&PettisHansen::new()),
            mr(&TrgChains::new()),
            mr(&WcgOffsets::new()),
            mr(&Gbsc::new()),
        );
    }
    println!("\npaper's claim: the TRG alone (TRG+chains) does not guarantee wins;");
    println!("only TRG selection *plus* the cache-aware offset scan (GBSC) does.");
}
