//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::drift_adapt`].

fn main() {
    tempo_bench::harness::bin_main("drift_adapt");
}
