//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::table1`].

fn main() {
    tempo_bench::harness::bin_main("table1");
}
