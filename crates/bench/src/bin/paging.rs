//! **§8 outlook**: layout effects on the next layer of the memory
//! hierarchy.
//!
//! The paper's §4.3 notes the linearization could be adapted to reduce
//! paging problems, and §8 plans to extend the temporal techniques to
//! "other layers of the memory hierarchy". This binary measures what the
//! cache-driven layouts do to *page-level* locality: each layout is run
//! against a small fully-associative LRU page buffer (4 KB pages — an
//! ITLB/page-cache stand-in, modeled with the same simulator, since a
//! fully-associative LRU cache with page-sized lines *is* a page buffer).
//!
//! Run: `cargo run --release -p tempo-bench --bin paging [--records N]`

use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse(150_000, 1);
    let icache = CacheConfig::direct_mapped_8k();
    // 32-entry fully-associative LRU buffer of 4 KB pages.
    let pages = CacheConfig::new(32 * 4096, 4096, 32).expect("valid page buffer");

    for model in [suite::gcc(), suite::vortex()] {
        let program = model.program();
        let train = model.training_trace(args.records);
        let test = model.testing_trace(args.records);
        let session = Session::new(program, icache).profile(&train);

        println!("=== {} (32 x 4 KB LRU page buffer) ===", model.name());
        println!(
            "{:<8} {:>10} {:>12} {:>10} {:>9}",
            "layout", "span", "page faults", "fault MR", "I$ MR"
        );
        let layouts: Vec<(&str, Layout)> = vec![
            ("default", Layout::source_order(program)),
            ("PH", session.place(&PettisHansen::new())),
            ("GBSC", session.place(&Gbsc::new())),
        ];
        for (name, layout) in &layouts {
            let pstats = simulate(program, layout, &test, pages);
            let istats = simulate(program, layout, &test, icache);
            println!(
                "{:<8} {:>9}K {:>12} {:>9.3}% {:>8.2}%",
                name,
                layout.span(program) / 1024,
                pstats.misses,
                pstats.line_miss_rate() * 100.0,
                istats.miss_rate() * 100.0
            );
        }
        println!();
    }
    println!("The smallest-gap linearization keeps popular procedures dense, so the");
    println!("cache-optimized layouts also page as well as (or better than) default —");
    println!("the gaps are filled with unpopular code, not holes.");
}
