//! **§8 extension**: procedure splitting combined with GBSC.
//!
//! The paper's conclusion lists procedure splitting (Pettis–Hansen) as an
//! orthogonal technique that "can therefore be combined with our technique
//! to achieve further improvements". This binary derives hot/cold
//! boundaries from the training trace, rewrites each benchmark, and
//! compares GBSC on the original vs. the split program (both evaluated on
//! the testing trace, the split one on the transformed testing trace —
//! same instruction stream, different code addresses).
//!
//! Run: `cargo run --release -p tempo-bench --bin splitting [--records N]`

use tempo::place::splitting::{SplitPlan, SplitProgram};
use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse(150_000, 1);
    let cache = CacheConfig::direct_mapped_8k();

    println!(
        "{:<12} {:>7} {:>12} {:>11} {:>11} {:>9}",
        "benchmark", "split#", "hot bytes", "GBSC", "GBSC+split", "delta"
    );
    for model in suite::standard_suite() {
        let program = model.program();
        let train = model.training_trace(args.records);
        let test = model.testing_trace(args.records);

        // Baseline: GBSC on the unsplit program.
        let session = Session::new(program, cache).profile(&train);
        let base = session
            .evaluate(&session.place(&Gbsc::new()), &test)
            .miss_rate()
            * 100.0;

        // Split: boundaries at the 90th percentile of observed extents.
        let plan = SplitPlan::from_trace(program, &train, 0.90, 32);
        let sp = SplitProgram::split(program, &plan).expect("split is valid");
        let strain = sp.transform_trace(&train);
        let stest = sp.transform_trace(&test);
        let ssession = Session::new(sp.program(), cache).profile(&strain);
        let split = ssession
            .evaluate(&ssession.place(&Gbsc::new()), &stest)
            .miss_rate()
            * 100.0;

        let hot_bytes: u64 = program
            .ids()
            .map(|id| u64::from(sp.program().size_of(sp.hot_part(id))))
            .sum();
        println!(
            "{:<12} {:>7} {:>11}K {:>10.2}% {:>10.2}% {:>+8.2}pp",
            model.name(),
            sp.split_count(),
            hot_bytes / 1024,
            base,
            split,
            split - base
        );
    }
    println!("\npaper: splitting is orthogonal and should compound with GBSC");
    println!("(negative delta = splitting helped).");
}
