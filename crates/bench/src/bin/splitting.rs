//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::splitting`].

fn main() {
    tempo_bench::harness::bin_main("splitting");
}
