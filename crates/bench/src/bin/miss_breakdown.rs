//! **Diagnostic**: cold / capacity / conflict decomposition per algorithm.
//!
//! Placement can only remove *conflict* misses. This binary classifies
//! every miss (three-C taxonomy, via a lockstep fully-associative LRU
//! model) for the default, PH, HKC, and GBSC layouts, showing that GBSC's
//! advantage comes exactly from the conflict column while cold/capacity
//! stay constant across layouts of the same trace — the mechanism behind
//! the paper's Figure 5 results.
//!
//! Run: `cargo run --release -p tempo-bench --bin miss_breakdown
//!       [--records N]`

use tempo::cache::classify;
use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::{checked_place, CommonArgs};

fn main() {
    let args = CommonArgs::parse(150_000, 1);
    let cache = CacheConfig::direct_mapped_8k();

    for model in [suite::m88ksim(), suite::perl()] {
        let program = model.program();
        let train = model.training_trace(args.records);
        let test = model.testing_trace(args.records);
        let session = Session::new(program, cache).profile(&train);

        println!("=== {} ===", model.name());
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>8} {:>9}",
            "layout", "cold", "capacity", "conflict", "MR", "conflict%"
        );
        let layouts: Vec<(&str, Layout)> = vec![
            ("default", Layout::source_order(program)),
            ("PH", checked_place(&session, &PettisHansen::new())),
            ("HKC", checked_place(&session, &CacheColoring::new())),
            ("GBSC", checked_place(&session, &Gbsc::new())),
        ];
        for (name, layout) in &layouts {
            let b = classify(program, layout, &test, cache);
            println!(
                "{:<8} {:>10} {:>10} {:>10} {:>7.2}% {:>8.1}%",
                name,
                b.cold,
                b.capacity,
                b.conflict,
                b.miss_rate() * 100.0,
                b.conflict_fraction() * 100.0
            );
        }
        println!();
    }
    println!("cold and capacity are layout-invariant; every miss GBSC removes");
    println!("comes out of the conflict column — the misses the paper targets.");
}
