//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::miss_breakdown`].

fn main() {
    tempo_bench::harness::bin_main("miss_breakdown");
}
