//! **§5.1 anecdote**: layout fragility under trivial padding.
//!
//! The paper pads every procedure of a perl layout by one 32-byte cache
//! line and watches the miss rate jump from 3.8% to 5.4%. This binary
//! reproduces the experiment: take the GBSC layout of perl, add k lines of
//! padding after every procedure for k = 0..8, and report the miss rate of
//! each variant.
//!
//! Run: `cargo run --release -p tempo-bench --bin padding_sensitivity
//!       [--records N]`

use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse(200_000, 1);
    let cache = CacheConfig::direct_mapped_8k();
    let model = suite::perl();
    let program = model.program();
    let train = model.training_trace(args.records);
    let test = model.testing_trace(args.records);
    let session = Session::new(program, cache).profile(&train);
    let layout = session.place(&Gbsc::new());

    let base = session.evaluate(&layout, &test);
    println!(
        "perl, GBSC layout: {:.2}% miss rate",
        base.miss_rate() * 100.0
    );
    println!("\nsame procedure order, repacked with k bytes of padding after every");
    println!("procedure (k = 0 drops GBSC's alignment gaps entirely):");
    println!("{:>8} {:>10} {:>8}", "pad", "misses", "MR");
    for pad_lines in 0u64..=8 {
        let padded = layout.with_uniform_padding(program, pad_lines * 32);
        let stats = session.evaluate(&padded, &test);
        println!(
            "{:>5} B {:>10} {:>7.2}%",
            pad_lines * 32,
            stats.misses,
            stats.miss_rate() * 100.0,
        );
    }
    println!(
        "\npaper saw 3.8% -> 5.4% for perl from a single line of padding; the\nreproduction target is the *swing* from trivial layout changes, plus the\ngap between the aligned GBSC layout and any repacked variant."
    );
}
