//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::padding_sensitivity`].

fn main() {
    tempo_bench::harness::bin_main("padding_sensitivity");
}
