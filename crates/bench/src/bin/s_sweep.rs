//! **§5.1 / Blackwell**: perturbation-scale sweep.
//!
//! The paper (citing Blackwell's thesis) notes that perturbation scales as
//! low as s = 0.01 already elicit most of the performance variation, while
//! s as high as 2.0 "does not degrade the average performance very much".
//! This binary sweeps s over {0, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0} for GBSC
//! on `go` and reports the spread of testing miss rates at each scale.
//!
//! Run: `cargo run --release -p tempo-bench --bin s_sweep
//!       [--records N] [--runs N] [--seed N]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::{median, sorted, CommonArgs};

fn main() {
    let args = CommonArgs::parse(150_000, 15);
    let cache = CacheConfig::direct_mapped_8k();
    let model = suite::go();
    let program = model.program();
    let train = model.training_trace(args.records);
    let test = model.testing_trace(args.records);
    let session = Session::new(program, cache).profile(&train);

    println!(
        "go, GBSC, {} perturbed placements per scale ({} records):",
        args.runs, args.records
    );
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "s", "min", "median", "max", "range"
    );
    for s in [0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0] {
        let mut rng = StdRng::seed_from_u64(args.seed);
        let rates: Vec<f64> = (0..args.runs)
            .map(|_| {
                let perturbed = session.perturbed(s, &mut rng);
                let layout = perturbed.place(&Gbsc::new());
                perturbed.evaluate(&layout, &test).miss_rate() * 100.0
            })
            .collect();
        let v = sorted(&rates);
        println!(
            "{s:>6.2} {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}pp",
            v[0],
            median(&rates),
            v[v.len() - 1],
            v[v.len() - 1] - v[0]
        );
    }
    println!("\npaper: most of the variation appears by s = 0.01; s = 2.0 does not");
    println!("degrade the average much (the placement relies on weight *order*).");
}
