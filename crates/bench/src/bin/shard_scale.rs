//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::shard_scale`].

fn main() {
    tempo_bench::harness::bin_main("shard_scale");
}
