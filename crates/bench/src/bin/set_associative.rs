//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::set_associative`].

fn main() {
    tempo_bench::harness::bin_main("set_associative");
}
