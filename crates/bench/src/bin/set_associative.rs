//! **§6**: placement for set-associative caches.
//!
//! On a 2-way 8 KB LRU cache, compares: the default layout, PH, the
//! direct-mapped GBSC layout (trained as if the cache were direct-mapped),
//! and GBSC-SA using the §6 pair database D(p, {r, s}).
//!
//! Run: `cargo run --release -p tempo-bench --bin set_associative
//!       [--records N]`

use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse(120_000, 1);
    let sa_cache = CacheConfig::two_way_8k();

    for model in [suite::m88ksim(), suite::perl()] {
        let program = model.program();
        let train = model.training_trace(args.records);
        let test = model.testing_trace(args.records);

        // Profile twice: once with the pair database for the SA cache,
        // once as direct-mapped for the DM-trained GBSC reference.
        let sa_session = Session::new(program, sa_cache)
            .with_pair_db(true)
            .profile(&train);
        let dm_session = Session::new(program, CacheConfig::direct_mapped_8k()).profile(&train);

        println!("=== {} on {} ===", model.name(), sa_cache);
        println!(
            "pair database: {} associations",
            sa_session
                .profile()
                .pair_db
                .as_ref()
                .map_or(0, |db| db.len())
        );
        let mr = |layout: &Layout| simulate(program, layout, &test, sa_cache).miss_rate() * 100.0;
        println!(
            "{:<22} {:>8.2}%",
            "default",
            mr(&Layout::source_order(program))
        );
        println!(
            "{:<22} {:>8.2}%",
            "PH",
            mr(&sa_session.place(&PettisHansen::new()))
        );
        println!(
            "{:<22} {:>8.2}%",
            "GBSC (DM-trained)",
            mr(&dm_session.place(&Gbsc::new()))
        );
        println!(
            "{:<22} {:>8.2}%",
            "GBSC-SA (pair db)",
            mr(&sa_session.place(&GbscSetAssoc::new()))
        );
        println!();
    }
    println!("paper: the DM assumption (one intervening block evicts) is conservative");
    println!("for LRU associative caches; the pair database models the two-victim rule.");
}
