//! **Figure 5**: sorted miss-rate distributions per benchmark.
//!
//! For each of the six benchmarks and each algorithm (PH, HKC, GBSC), run
//! 40 placements on multiplicatively perturbed profiles (s = 0.1), simulate
//! the testing trace, and print the sorted miss rates — the CDF the paper
//! plots — plus the miss rate of each algorithm on the unperturbed profile
//! (the "MR" inset tables of Figure 5).
//!
//! Run: `cargo run --release -p tempo-bench --bin fig5
//!       [--records N] [--runs N] [--seed N] [--out fig5.csv]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::{sorted, CommonArgs};

fn main() {
    let args = CommonArgs::parse(200_000, 40);
    let cache = CacheConfig::direct_mapped_8k();
    let mut csv: Vec<String> = Vec::new();

    for model in suite::standard_suite() {
        let program = model.program();
        let train = model.training_trace(args.records);
        let test = model.testing_trace(args.records);
        let session = Session::new(program, cache).profile(&train);

        println!("=== {} ===", model.name());
        let default_mr = session
            .evaluate(&Layout::source_order(program), &test)
            .miss_rate()
            * 100.0;
        println!("default layout MR: {default_mr:.2}%");

        let algorithms: &[&dyn PlacementAlgorithm] =
            &[&PettisHansen::new(), &CacheColoring::new(), &Gbsc::new()];
        for alg in algorithms {
            // Unperturbed run (the inset MR table of Figure 5).
            let clean = session.evaluate(&session.place(*alg), &test).miss_rate() * 100.0;

            let mut rng = StdRng::seed_from_u64(args.seed);
            let rates: Vec<f64> = (0..args.runs)
                .map(|_| {
                    let perturbed = session.perturbed(0.1, &mut rng);
                    let layout = perturbed.place(*alg);
                    perturbed.evaluate(&layout, &test).miss_rate() * 100.0
                })
                .collect();
            let s = sorted(&rates);
            println!(
                "{:<5} MR {:>5.2}%  perturbed: min {:.2}% / median {:.2}% / max {:.2}%",
                alg.name(),
                clean,
                s[0],
                s[s.len() / 2],
                s[s.len() - 1]
            );
            // CDF points: x = miss rate, y = fraction of placements <= x.
            for (i, mr) in s.iter().enumerate() {
                csv.push(format!(
                    "{},{},{:.4},{:.4}",
                    model.name(),
                    alg.name(),
                    mr,
                    (i + 1) as f64 / s.len() as f64
                ));
            }
        }
        println!();
    }

    if let Some(path) = &args.out {
        tempo_bench::write_csv(path, "benchmark,algorithm,miss_rate_pct,cdf", &csv)
            .expect("write csv");
        println!("wrote {path}");
    }
    println!("paper: GBSC's point cloud sits left of PH and HKC for all benchmarks");
    println!("except m88ksim and perl, where the ranges overlap.");
}
