//! **Ablation (§3)**: "Empirically, we have found that a bound on Q of
//! twice the cache size works quite well."
//!
//! Sweeps the Q capacity bound from 1x to 8x the cache size and reports
//! GBSC's testing miss rate plus the resulting profile sizes. Too small a
//! bound truncates real temporal relationships; too large a bound adds
//! stale capacity-eviction "relationships" (and profile bulk) without
//! improving placements.
//!
//! Run: `cargo run --release -p tempo-bench --bin q_bound_sweep
//!       [--records N]`

use tempo::prelude::*;
use tempo::workloads::suite;
use tempo_bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse(150_000, 1);
    let cache = CacheConfig::direct_mapped_8k();

    for model in [suite::m88ksim(), suite::go()] {
        let program = model.program();
        let train = model.training_trace(args.records);
        let test = model.testing_trace(args.records);
        println!("=== {} ===", model.name());
        println!(
            "{:>7} {:>9} {:>12} {:>10} {:>9}",
            "bound", "avg Q", "TRG edges", "place edges", "GBSC MR"
        );
        for factor in [1u64, 2, 4, 8] {
            let profile = Profiler::new(program, cache)
                .q_bound_factor(factor)
                .profile(&train);
            let session = tempo::ProfiledSession::from_profile(program, profile);
            let mr = session
                .evaluate(&session.place(&Gbsc::new()), &test)
                .miss_rate()
                * 100.0;
            println!(
                "{:>5}x {:>9.1} {:>12} {:>10} {:>8.2}%",
                factor,
                session.profile().q_stats.average,
                session.profile().trg_select.edge_count(),
                session.profile().trg_place.edge_count(),
                mr
            );
        }
        println!();
    }
    println!("paper: 2x is the empirical sweet spot — gains flatten beyond it while");
    println!("profile size keeps growing.");
}
