//! Thin wrapper over the shared harness; the experiment body lives in
//! [`tempo_bench::experiments::q_bound_sweep`].

fn main() {
    tempo_bench::harness::bin_main("q_bound_sweep");
}
