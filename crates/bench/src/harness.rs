//! The shared experiment harness: one registry, one execution context,
//! one driver.
//!
//! Every experiment (one per paper table/figure/ablation — see DESIGN.md
//! §4) is a plain function `fn(&mut Ctx) -> Result<(), ExperimentError>`
//! registered in [`REGISTRY`]. The
//! context collects the experiment's console report, optional CSV rows,
//! and evaluation counters instead of letting the experiment touch stdout
//! or the filesystem; that indirection is what makes the same experiment
//! runnable three ways with byte-identical output:
//!
//! * as its historical standalone binary ([`bin_main`]),
//! * through `tempo-bench run-all` / `tempo-cli bench` ([`run_all`]),
//! * from tests against temp dirs (determinism suite).
//!
//! Parallelism flows through [`Ctx::run_jobs`]: an experiment expands its
//! benchmark × algorithm × config matrix into jobs and the context runs
//! them on a [`tempo_par::Pool`] sized by `--jobs`. Because the pool
//! returns results in submission order and every job owns its RNG stream,
//! reports are byte-identical for every worker count (the determinism
//! contract, DESIGN.md §9).

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

use tempo::prelude::SimStats;
use tempo_par::{JobPanic, Pool};

use crate::json::Json;
use crate::CommonArgs;

/// A failure inside an experiment body, surfaced as a value so the
/// driver records it (and `run-all` carries on) without unwinding.
///
/// Every parallel helper an experiment leans on reports its worker
/// panics typed — [`JobPanic`] from [`Ctx::run_jobs`] and the
/// tempo-workloads generators, [`SweepPanic`](tempo::cache::SweepPanic)
/// from the tempo-cache sweep helpers — and the `From` impls fold them
/// all into this one type so experiment bodies just use `?`.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExperimentError {
    /// A parallel job panicked on a pool worker.
    Job(JobPanic),
    /// A parallel sweep simulation cell panicked.
    Sweep(tempo::cache::SweepPanic),
    /// Streaming trace I/O failed.
    Trace(tempo::trace::io::TraceIoError),
    /// Sharded profiling failed at the supervisor level.
    Shard(tempo::ShardError),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Anything else, stringified.
    Other(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Job(p) => write!(f, "parallel {p}"),
            ExperimentError::Sweep(p) => write!(f, "{p}"),
            ExperimentError::Trace(e) => write!(f, "trace i/o failed: {e}"),
            ExperimentError::Shard(e) => write!(f, "sharded profiling failed: {e}"),
            ExperimentError::Io(e) => write!(f, "i/o error: {e}"),
            ExperimentError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Job(p) => Some(p),
            ExperimentError::Sweep(p) => Some(p),
            ExperimentError::Trace(e) => Some(e),
            ExperimentError::Shard(e) => Some(e),
            ExperimentError::Io(e) => Some(e),
            ExperimentError::Other(_) => None,
        }
    }
}

impl From<JobPanic> for ExperimentError {
    fn from(p: JobPanic) -> Self {
        ExperimentError::Job(p)
    }
}

impl From<tempo::cache::SweepPanic> for ExperimentError {
    fn from(p: tempo::cache::SweepPanic) -> Self {
        ExperimentError::Sweep(p)
    }
}

impl From<tempo::trace::io::TraceIoError> for ExperimentError {
    fn from(e: tempo::trace::io::TraceIoError) -> Self {
        ExperimentError::Trace(e)
    }
}

impl From<tempo::ShardError> for ExperimentError {
    fn from(e: tempo::ShardError) -> Self {
        ExperimentError::Shard(e)
    }
}

impl From<std::io::Error> for ExperimentError {
    fn from(e: std::io::Error) -> Self {
        ExperimentError::Io(e)
    }
}

/// Appends a line to an experiment's report: `outln!(ctx, "fmt", ...)`.
macro_rules! outln {
    ($ctx:expr $(,)?) => { $crate::harness::Ctx::line($ctx, format_args!("")) };
    ($ctx:expr, $($arg:tt)*) => { $crate::harness::Ctx::line($ctx, format_args!($($arg)*)) };
}
pub(crate) use outln;

/// Execution context handed to every experiment.
///
/// Collects the textual report ([`Ctx::line`] / the `outln!` macro),
/// optional CSV output ([`Ctx::set_csv`]), and the evaluation counters
/// that feed `BENCH_run.json` ([`Ctx::tally`]).
#[derive(Debug)]
pub struct Ctx {
    /// Parsed common arguments (records, runs, seed, jobs, ...).
    pub args: CommonArgs,
    pool: Pool,
    csv_path: Option<String>,
    text: String,
    csv: Option<Csv>,
    misses: u64,
    cells: usize,
    metrics: Vec<(String, f64)>,
}

/// CSV payload produced by an experiment (header + data rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csv {
    /// Header line (no trailing newline).
    pub header: &'static str,
    /// Data rows (no trailing newlines).
    pub rows: Vec<String>,
}

/// Everything an experiment produced, ready to print or persist.
#[derive(Debug)]
pub struct ExperimentOutput {
    /// The console report (what the standalone binary prints).
    pub text: String,
    /// CSV payload, when the experiment emits one.
    pub csv: Option<Csv>,
    /// Total simulated cache misses tallied across all evaluations.
    pub misses: u64,
    /// Jobs executed through the pool.
    pub cells: usize,
    /// Machine-readable side metrics (peak RSS, throughput, ...) for
    /// `BENCH_run.json`. Never part of the text report: metrics may be
    /// non-deterministic, and the report must stay byte-identical across
    /// runs and `--jobs` values.
    pub metrics: Vec<(String, f64)>,
}

impl Ctx {
    /// A context for `args`, reporting CSV output (if any) at `csv_path`.
    pub fn new(args: CommonArgs, csv_path: Option<String>) -> Ctx {
        let pool = Pool::new(args.jobs);
        Ctx {
            args,
            pool,
            csv_path,
            text: String::new(),
            csv: None,
            misses: 0,
            cells: 0,
            metrics: Vec::new(),
        }
    }

    /// Appends one line to the report (use via `outln!`).
    pub fn line(&mut self, args: fmt::Arguments<'_>) {
        use fmt::Write as _;
        writeln!(self.text, "{args}").expect("writing to a String cannot fail");
    }

    /// The worker pool sized by `--jobs`.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Runs `jobs` on the pool, in submission order, counting them toward
    /// the context's cell total.
    ///
    /// # Errors
    ///
    /// Returns the first job panic as a typed [`ExperimentError::Job`]
    /// carrying the failing job's index; the experiment body propagates
    /// it with `?` and the driver records the failure without unwinding.
    pub fn run_jobs<T, F>(&mut self, jobs: Vec<F>) -> Result<Vec<T>, ExperimentError>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        self.cells += jobs.len();
        self.pool
            .run(jobs)
            .into_iter()
            .map(|r| r.map_err(ExperimentError::from))
            .collect()
    }

    /// Records an evaluation's miss count and passes the stats through.
    pub fn tally(&mut self, stats: SimStats) -> SimStats {
        self.misses += stats.misses;
        stats
    }

    /// Records misses counted inside a parallel job (jobs cannot borrow
    /// the context, so they sum locally and report on aggregation).
    pub fn tally_misses(&mut self, misses: u64) {
        self.misses += misses;
    }

    /// Counts jobs executed outside [`Ctx::run_jobs`] (e.g. through the
    /// tempo-cache sweep helpers or the `SweepRunner`) toward the cell
    /// total.
    pub fn note_cells(&mut self, cells: usize) {
        self.cells += cells;
    }

    /// Records a machine-readable side metric for `BENCH_run.json`.
    ///
    /// Metrics carry measurements that must stay out of the deterministic
    /// text report (wall-clock throughput, peak RSS). Recording the same
    /// name twice keeps both entries, in order.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Sets the experiment's CSV output.
    pub fn set_csv(&mut self, header: &'static str, rows: Vec<String>) {
        self.csv = Some(Csv { header, rows });
    }

    /// Where the CSV will be written, when CSV output was requested —
    /// experiments echo this in their report ("wrote <path>") exactly
    /// where the historical binaries did.
    pub fn csv_path(&self) -> Option<String> {
        self.csv_path.clone()
    }

    /// Consumes the context into its collected output.
    pub fn finish(self) -> ExperimentOutput {
        ExperimentOutput {
            text: self.text,
            csv: self.csv,
            misses: self.misses,
            cells: self.cells,
            metrics: self.metrics,
        }
    }
}

/// One registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Binary/file name (`results/<name>.txt`).
    pub name: &'static str,
    /// One-line description for `tempo-bench list`.
    pub title: &'static str,
    /// Default `--records` (mirrors the historical binary's default).
    pub default_records: usize,
    /// Default `--runs`.
    pub default_runs: usize,
    /// Whether the experiment emits CSV (written to `<out>/<name>.csv`
    /// by the driver, or to `--out` by the standalone binary).
    pub has_csv: bool,
    /// The experiment body.
    pub run: fn(&mut Ctx) -> Result<(), ExperimentError>,
}

/// Every experiment, in the order `run-all` executes them (the historical
/// `scripts/run_all_experiments.sh` order).
pub const REGISTRY: &[ExperimentSpec] = &[
    ExperimentSpec {
        name: "table1",
        title: "Table 1 benchmark statics, default miss rates, average Q sizes",
        default_records: crate::DEFAULT_TRAIN_LEN,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::table1::run,
    },
    ExperimentSpec {
        name: "fig1_motivation",
        title: "Figure 1 motivating example (same WCG, opposite best layouts)",
        default_records: 0,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::fig1_motivation::run,
    },
    ExperimentSpec {
        name: "fig2_trg_walkthrough",
        title: "Figures 2-3 Q-set / TRG construction walkthrough",
        default_records: 0,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::fig2_trg_walkthrough::run,
    },
    ExperimentSpec {
        name: "fig5",
        title: "Figure 5 perturbed miss-rate distributions (CDF points)",
        default_records: 200_000,
        default_runs: 40,
        has_csv: true,
        run: crate::experiments::fig5::run,
    },
    ExperimentSpec {
        name: "fig6",
        title: "Figure 6 conflict-metric vs miss-rate correlation",
        default_records: 200_000,
        default_runs: 80,
        has_csv: true,
        run: crate::experiments::fig6::run,
    },
    ExperimentSpec {
        name: "padding_sensitivity",
        title: "S5.1 padding anecdote (layout fragility)",
        default_records: 200_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::padding_sensitivity::run,
    },
    ExperimentSpec {
        name: "cache_sweep",
        title: "S5.2 cache-size sweep (SweepRunner matrix)",
        default_records: 150_000,
        default_runs: 1,
        has_csv: true,
        run: crate::experiments::cache_sweep::run,
    },
    ExperimentSpec {
        name: "bounds_soundness",
        title: "Miss-bound soundness harness (strict intervals, Table 1 suite)",
        default_records: 80_000,
        default_runs: 1,
        has_csv: true,
        run: crate::experiments::bounds_soundness::run,
    },
    ExperimentSpec {
        name: "m88ksim_same_input",
        title: "S5.3 m88ksim train=test note",
        default_records: 200_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::m88ksim_same_input::run,
    },
    ExperimentSpec {
        name: "set_associative",
        title: "S6 set-associative placement (pair database)",
        default_records: 120_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::set_associative::run,
    },
    ExperimentSpec {
        name: "s_sweep",
        title: "Blackwell perturbation-scale sweep",
        default_records: 150_000,
        default_runs: 15,
        has_csv: false,
        run: crate::experiments::s_sweep::run,
    },
    ExperimentSpec {
        name: "ablation_chains",
        title: "S4 ingredient ablation (TRG+chains / WCG+offsets)",
        default_records: 150_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::ablation_chains::run,
    },
    ExperimentSpec {
        name: "chunk_sweep",
        title: "S4.1 chunk-size sweep",
        default_records: 150_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::chunk_sweep::run,
    },
    ExperimentSpec {
        name: "q_bound_sweep",
        title: "S3 Q-bound sweep",
        default_records: 150_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::q_bound_sweep::run,
    },
    ExperimentSpec {
        name: "miss_breakdown",
        title: "3C miss decomposition per layout",
        default_records: 150_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::miss_breakdown::run,
    },
    ExperimentSpec {
        name: "reuse_profile",
        title: "Reuse distances vs the Q bound",
        default_records: 100_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::reuse_profile::run,
    },
    ExperimentSpec {
        name: "splitting",
        title: "S8 procedure splitting + GBSC",
        default_records: 150_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::splitting::run,
    },
    ExperimentSpec {
        name: "paging",
        title: "S8 page-level locality of cache-driven layouts",
        default_records: 150_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::paging::run,
    },
    ExperimentSpec {
        name: "stream_scale",
        title: "Paper-scale streaming pipeline (constant-memory profile + evaluate)",
        default_records: 20_000_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::stream_scale::run,
    },
    ExperimentSpec {
        name: "drift_adapt",
        title: "Drift adaptation (incremental engine vs frozen layout)",
        default_records: 60_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::drift_adapt::run,
    },
    ExperimentSpec {
        name: "shard_scale",
        title: "Supervised sharded profiling (merge==sequential, per-jobs throughput)",
        default_records: 200_000,
        default_runs: 1,
        has_csv: false,
        run: crate::experiments::shard_scale::run,
    },
];

/// Looks up an experiment by name.
pub fn find(name: &str) -> Option<&'static ExperimentSpec> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// Entry point for the historical one-experiment binaries: parse common
/// flags with the experiment's defaults, run, print the report, write the
/// CSV if `--out` was given.
///
/// # Panics
///
/// Panics (nonzero exit) when the experiment name is not registered, the
/// experiment fails, or the CSV cannot be written — the standalone
/// binaries keep their historical crash-on-error contract.
pub fn bin_main(name: &str) {
    let spec = find(name).unwrap_or_else(|| panic!("experiment `{name}` is not registered"));
    let args = CommonArgs::parse(spec.default_records, spec.default_runs);
    let csv_path = args.out.clone();
    let mut ctx = Ctx::new(args, csv_path.clone());
    if let Err(e) = (spec.run)(&mut ctx) {
        panic!("experiment `{name}` failed: {e}");
    }
    let out = ctx.finish();
    print!("{}", out.text);
    if let (Some(path), Some(csv)) = (&csv_path, &out.csv) {
        crate::write_csv(path, csv.header, &csv.rows).expect("write csv");
    }
}

/// Options for [`run_all`].
#[derive(Debug, Clone)]
pub struct RunAllOpts {
    /// Override every experiment's `--records` (like the historical
    /// script's first positional); `None` keeps per-experiment defaults.
    pub records: Option<usize>,
    /// Override every experiment's `--runs`; `None` keeps defaults
    /// (fig5 40, fig6 80, s_sweep 15).
    pub runs: Option<usize>,
    /// Worker count for every experiment's pool.
    pub jobs: usize,
    /// RNG seed (default `0xBA5E`, the historical seed).
    pub seed: u64,
    /// Directory for `results/`-style text and CSV outputs.
    pub out_dir: PathBuf,
    /// Where to write the machine-readable run record; `None` skips it.
    pub bench_json: Option<PathBuf>,
    /// Restrict to these experiment names (run-all order preserved).
    pub only: Option<Vec<String>>,
    /// Echo per-experiment progress lines to stderr.
    pub verbose: bool,
    /// Enable the static miss-bound prefilter in experiments that
    /// support it (`cache_sweep`). Off by default: the unscreened
    /// reports are the regression baseline.
    pub prefilter: bool,
}

impl Default for RunAllOpts {
    fn default() -> Self {
        RunAllOpts {
            records: None,
            runs: None,
            jobs: tempo_par::available_parallelism(),
            seed: 0xBA5E,
            out_dir: PathBuf::from("results"),
            bench_json: Some(PathBuf::from("BENCH_run.json")),
            only: None,
            verbose: false,
            prefilter: false,
        }
    }
}

/// One experiment's entry in the run record.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment name.
    pub name: String,
    /// Whether the experiment completed (false = it panicked).
    pub ok: bool,
    /// Wall-clock time of the experiment body.
    pub wall_ms: f64,
    /// Jobs executed through the pool.
    pub cells: usize,
    /// Report lines plus CSV rows produced.
    pub rows: usize,
    /// Total simulated cache misses tallied.
    pub misses: u64,
    /// Side metrics recorded via [`Ctx::metric`] (may be empty).
    pub metrics: Vec<(String, f64)>,
    /// Panic message when `ok` is false.
    pub error: Option<String>,
}

/// The aggregate result of a `run-all` sweep (serialized as
/// `BENCH_run.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct RunAllReport {
    /// `records` override (None = per-experiment defaults).
    pub records: Option<usize>,
    /// `runs` override.
    pub runs: Option<usize>,
    /// Worker count used.
    pub jobs: usize,
    /// RNG seed used.
    pub seed: u64,
    /// Wall-clock time of the whole sweep.
    pub total_wall_ms: f64,
    /// Per-experiment records, in execution order.
    pub experiments: Vec<ExperimentRecord>,
}

impl RunAllReport {
    /// True when every experiment completed.
    pub fn all_ok(&self) -> bool {
        self.experiments.iter().all(|e| e.ok)
    }
}

/// Errors from the `run-all` driver (filesystem/serialization only;
/// experiment panics are recorded per experiment instead).
#[derive(Debug)]
pub enum HarnessError {
    /// An unknown experiment name in `--only`.
    UnknownExperiment(String),
    /// Filesystem failure writing an output.
    Io(std::io::Error),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::UnknownExperiment(name) => {
                write!(f, "unknown experiment `{name}` (see `tempo-bench list`)")
            }
            HarnessError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Io(e) => Some(e),
            HarnessError::UnknownExperiment(_) => None,
        }
    }
}

impl From<std::io::Error> for HarnessError {
    fn from(e: std::io::Error) -> Self {
        HarnessError::Io(e)
    }
}

/// Runs every (selected) experiment through the shared harness, writing
/// `<out_dir>/<name>.txt` (+ `.csv`) for each and the machine-readable
/// run record to `opts.bench_json`.
///
/// Experiments run one at a time; each parallelizes internally across
/// `opts.jobs` workers. A panicking experiment is isolated: its outputs
/// are skipped, the failure lands in the report, and the sweep continues.
///
/// # Errors
///
/// Fails on unknown `--only` names and on filesystem errors; experiment
/// panics do *not* error (check [`RunAllReport::all_ok`]).
pub fn run_all(opts: &RunAllOpts) -> Result<RunAllReport, HarnessError> {
    let selected: Vec<&'static ExperimentSpec> = match &opts.only {
        None => REGISTRY.iter().collect(),
        Some(names) => {
            for n in names {
                if find(n).is_none() {
                    return Err(HarnessError::UnknownExperiment(n.clone()));
                }
            }
            REGISTRY
                .iter()
                .filter(|s| names.iter().any(|n| n == s.name))
                .collect()
        }
    };

    std::fs::create_dir_all(&opts.out_dir)?;
    let sweep_start = Instant::now();
    let mut experiments = Vec::with_capacity(selected.len());

    for spec in selected {
        let args = CommonArgs {
            records: opts.records.unwrap_or(spec.default_records),
            seed: opts.seed,
            runs: opts.runs.unwrap_or(spec.default_runs),
            out: None,
            budget_ms: None,
            jobs: opts.jobs,
            prefilter: opts.prefilter,
        };
        let csv_path = spec
            .has_csv
            .then(|| display_path(&opts.out_dir.join(format!("{}.csv", spec.name))));
        let mut ctx = Ctx::new(args, csv_path.clone());
        // Experiments run strictly one at a time, so a before/after snapshot
        // of the global tempo-obs registry attributes every pipeline counter
        // (trace.*, profile.*, place.*, sim.*) to this experiment.
        let obs_before = tempo::obs::snapshot();
        let start = Instant::now();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (spec.run)(&mut ctx)));
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let obs_deltas = tempo::obs::snapshot().counter_deltas(&obs_before);

        let record = match outcome {
            Ok(Ok(())) => {
                let mut out = ctx.finish();
                out.metrics.extend(
                    obs_deltas
                        .iter()
                        .map(|(name, delta)| (name.clone(), *delta as f64)),
                );
                std::fs::write(
                    opts.out_dir.join(format!("{}.txt", spec.name)),
                    out.text.as_bytes(),
                )?;
                if let (Some(path), Some(csv)) = (&csv_path, &out.csv) {
                    crate::write_csv(path, csv.header, &csv.rows)?;
                }
                ExperimentRecord {
                    name: spec.name.to_string(),
                    ok: true,
                    wall_ms,
                    cells: out.cells,
                    rows: out.text.lines().count() + out.csv.as_ref().map_or(0, |c| c.rows.len()),
                    misses: out.misses,
                    metrics: out.metrics,
                    error: None,
                }
            }
            Ok(Err(e)) => ExperimentRecord {
                name: spec.name.to_string(),
                ok: false,
                wall_ms,
                cells: 0,
                rows: 0,
                misses: 0,
                metrics: Vec::new(),
                error: Some(e.to_string()),
            },
            Err(payload) => {
                let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                ExperimentRecord {
                    name: spec.name.to_string(),
                    ok: false,
                    wall_ms,
                    cells: 0,
                    rows: 0,
                    misses: 0,
                    metrics: Vec::new(),
                    error: Some(message),
                }
            }
        };
        if opts.verbose {
            eprintln!(
                "tempo-bench: {:<22} {:>9.1} ms  {:>4} jobs  {:>6} rows  {:>12} misses{}",
                record.name,
                record.wall_ms,
                record.cells,
                record.rows,
                record.misses,
                if record.ok { "" } else { "  FAILED" }
            );
        }
        experiments.push(record);
    }

    let report = RunAllReport {
        records: opts.records,
        runs: opts.runs,
        jobs: opts.jobs,
        seed: opts.seed,
        total_wall_ms: sweep_start.elapsed().as_secs_f64() * 1e3,
        experiments,
    };
    if let Some(path) = &opts.bench_json {
        std::fs::write(path, report.to_json().render_pretty())?;
    }
    Ok(report)
}

fn display_path(p: &Path) -> String {
    p.to_string_lossy().into_owned()
}

impl RunAllReport {
    /// The machine-readable form written to `BENCH_run.json`.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema".into(), Json::Number(1.0)),
            ("records".into(), opt_num(self.records)),
            ("runs".into(), opt_num(self.runs)),
            ("jobs".into(), Json::Number(self.jobs as f64)),
            ("seed".into(), Json::Number(self.seed as f64)),
            (
                "total_wall_ms".into(),
                Json::Number(round1(self.total_wall_ms)),
            ),
            (
                "experiments".into(),
                Json::Array(
                    self.experiments
                        .iter()
                        .map(|e| {
                            let mut fields = vec![
                                ("name".into(), Json::String(e.name.clone())),
                                ("ok".into(), Json::Bool(e.ok)),
                                ("wall_ms".into(), Json::Number(round1(e.wall_ms))),
                                ("cells".into(), Json::Number(e.cells as f64)),
                                ("rows".into(), Json::Number(e.rows as f64)),
                                ("misses".into(), Json::Number(e.misses as f64)),
                            ];
                            if !e.metrics.is_empty() {
                                fields.push((
                                    "metrics".into(),
                                    Json::Object(
                                        e.metrics
                                            .iter()
                                            .map(|(k, v)| (k.clone(), Json::Number(*v)))
                                            .collect(),
                                    ),
                                ));
                            }
                            if let Some(err) = &e.error {
                                fields.push(("error".into(), Json::String(err.clone())));
                            }
                            Json::object(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report back from `BENCH_run.json` content.
    ///
    /// # Errors
    ///
    /// Returns a message when the JSON is malformed or fields are missing.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    // The numbers round-trip small integral counters (bounded far below 2^53).
    pub fn from_json(text: &str) -> Result<RunAllReport, String> {
        let v = Json::parse(text)?;
        let experiments = v
            .get("experiments")
            .and_then(Json::as_array)
            .ok_or("missing `experiments` array")?
            .iter()
            .map(|e| {
                Ok(ExperimentRecord {
                    name: e
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("experiment missing `name`")?
                        .to_string(),
                    ok: e.get("ok").and_then(Json::as_bool).unwrap_or(false),
                    wall_ms: e.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
                    cells: e.get("cells").and_then(Json::as_f64).unwrap_or(0.0) as usize,
                    rows: e.get("rows").and_then(Json::as_f64).unwrap_or(0.0) as usize,
                    misses: e.get("misses").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                    metrics: match e.get("metrics") {
                        Some(Json::Object(fields)) => fields
                            .iter()
                            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                            .collect(),
                        _ => Vec::new(),
                    },
                    error: e.get("error").and_then(Json::as_str).map(str::to_string),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RunAllReport {
            records: v.get("records").and_then(Json::as_f64).map(|n| n as usize),
            runs: v.get("runs").and_then(Json::as_f64).map(|n| n as usize),
            jobs: v.get("jobs").and_then(Json::as_f64).unwrap_or(1.0) as usize,
            seed: v.get("seed").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            total_wall_ms: v.get("total_wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
            experiments,
        })
    }
}

fn opt_num(v: Option<usize>) -> Json {
    match v {
        Some(n) => Json::Number(n as f64),
        None => Json::Null,
    }
}

fn round1(v: f64) -> f64 {
    (v * 10.0).round() / 10.0
}

/// Peak resident set size of this process in KiB, read from
/// `/proc/self/status` (`VmHWM`).
///
/// Returns `None` off Linux or when the file is unreadable, so callers
/// can record the metric opportunistically.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Outcome of comparing a run record against a checked-in baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegressionReport {
    /// Human-readable failures (empty = gate passes).
    pub failures: Vec<String>,
    /// Informational notes (new experiments, wall-time deltas).
    pub notes: Vec<String>,
}

impl RegressionReport {
    /// True when the gate passes.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares `current` against `baseline`: simulated miss counts must not
/// drift at all, total wall time must not regress more than
/// `wall_slack_pct` percent, and every experiment that records a
/// `records_per_sec` metric in the baseline must retain at least
/// `throughput_floor_pct` percent of the baseline throughput.
///
/// The throughput floor is a *ratchet*: refreshing the baseline after an
/// optimization raises the floor automatically, so a later change cannot
/// silently give the win back. The floor leaves slack for machine noise
/// (CI runners are shared); the miss comparison stays exact.
///
/// Parameters (`records`/`runs`/`seed`) must match, otherwise the miss
/// comparison would be meaningless. Experiments present only in the
/// baseline fail the gate (coverage loss); experiments present only in
/// the current run are noted.
pub fn check_regression(
    current: &RunAllReport,
    baseline: &RunAllReport,
    wall_slack_pct: f64,
    throughput_floor_pct: f64,
) -> RegressionReport {
    let mut failures = Vec::new();
    let mut notes = Vec::new();

    if current.records != baseline.records
        || current.runs != baseline.runs
        || current.seed != baseline.seed
    {
        failures.push(format!(
            "parameter mismatch: current records={:?} runs={:?} seed={} vs baseline records={:?} runs={:?} seed={}",
            current.records, current.runs, current.seed,
            baseline.records, baseline.runs, baseline.seed,
        ));
        return RegressionReport { failures, notes };
    }

    for base in &baseline.experiments {
        match current.experiments.iter().find(|e| e.name == base.name) {
            None => failures.push(format!("experiment `{}` disappeared", base.name)),
            Some(cur) => {
                if !cur.ok {
                    failures.push(format!(
                        "experiment `{}` failed: {}",
                        cur.name,
                        cur.error.as_deref().unwrap_or("unknown error")
                    ));
                } else if base.ok && cur.misses != base.misses {
                    failures.push(format!(
                        "`{}` simulated misses drifted: {} -> {}",
                        cur.name, base.misses, cur.misses
                    ));
                } else if base.ok {
                    check_throughput_floor(
                        cur,
                        base,
                        throughput_floor_pct,
                        &mut failures,
                        &mut notes,
                    );
                }
            }
        }
    }
    for cur in &current.experiments {
        if !baseline.experiments.iter().any(|e| e.name == cur.name) {
            notes.push(format!(
                "experiment `{}` is new (no baseline entry)",
                cur.name
            ));
        }
    }

    if baseline.total_wall_ms > 0.0 {
        let limit = baseline.total_wall_ms * (1.0 + wall_slack_pct / 100.0);
        if current.total_wall_ms > limit {
            failures.push(format!(
                "total wall time regressed: {:.1} ms vs baseline {:.1} ms (+{:.0}% > {:.0}% slack)",
                current.total_wall_ms,
                baseline.total_wall_ms,
                (current.total_wall_ms / baseline.total_wall_ms - 1.0) * 100.0,
                wall_slack_pct,
            ));
        } else {
            notes.push(format!(
                "total wall time {:.1} ms vs baseline {:.1} ms (limit {limit:.1} ms)",
                current.total_wall_ms, baseline.total_wall_ms
            ));
        }
    }

    RegressionReport { failures, notes }
}

/// Metric name gated by the throughput floor. Per-jobs variants
/// (`jobsN.records_per_sec`) are deliberately excluded: they measure
/// scaling shape, which depends on the runner's core count.
const THROUGHPUT_METRIC: &str = "records_per_sec";

fn check_throughput_floor(
    cur: &ExperimentRecord,
    base: &ExperimentRecord,
    floor_pct: f64,
    failures: &mut Vec<String>,
    notes: &mut Vec<String>,
) {
    let metric_of = |e: &ExperimentRecord| {
        e.metrics
            .iter()
            .find(|(name, _)| name == THROUGHPUT_METRIC)
            .map(|&(_, v)| v)
    };
    let Some(base_rps) = metric_of(base).filter(|v| *v > 0.0) else {
        return;
    };
    let floor = base_rps * floor_pct / 100.0;
    match metric_of(cur) {
        None => failures.push(format!(
            "`{}` stopped recording {THROUGHPUT_METRIC} (baseline has {base_rps:.0}/s)",
            cur.name
        )),
        Some(cur_rps) if cur_rps < floor => failures.push(format!(
            "`{}` throughput regressed: {cur_rps:.0} records/s vs baseline \
             {base_rps:.0}/s (floor {floor:.0}/s at {floor_pct:.0}%)",
            cur.name
        )),
        Some(cur_rps) => notes.push(format!(
            "`{}` throughput {cur_rps:.0} records/s vs baseline {base_rps:.0}/s \
             (floor {floor:.0}/s)",
            cur.name
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, misses: u64, rps: Option<f64>) -> ExperimentRecord {
        ExperimentRecord {
            name: name.to_string(),
            ok: true,
            wall_ms: 10.0,
            cells: 1,
            rows: 1,
            misses,
            metrics: rps
                .map(|v| (THROUGHPUT_METRIC.to_string(), v))
                .into_iter()
                .collect(),
            error: None,
        }
    }

    fn report(experiments: Vec<ExperimentRecord>) -> RunAllReport {
        RunAllReport {
            records: Some(20_000),
            runs: Some(8),
            jobs: 1,
            seed: 0xBA5E,
            total_wall_ms: 100.0,
            experiments,
        }
    }

    #[test]
    fn throughput_at_or_above_the_floor_passes() {
        let base = report(vec![record("stream", 53_211, Some(1_000_000.0))]);
        let cur = report(vec![record("stream", 53_211, Some(700_000.0))]);
        let verdict = check_regression(&cur, &base, 25.0, 70.0);
        assert!(verdict.ok(), "failures: {:?}", verdict.failures);
        assert!(verdict.notes.iter().any(|n| n.contains("throughput")));
    }

    #[test]
    fn throughput_below_the_floor_fails() {
        let base = report(vec![record("stream", 53_211, Some(1_000_000.0))]);
        let cur = report(vec![record("stream", 53_211, Some(699_999.0))]);
        let verdict = check_regression(&cur, &base, 25.0, 70.0);
        assert_eq!(verdict.failures.len(), 1, "notes: {:?}", verdict.notes);
        assert!(verdict.failures[0].contains("throughput regressed"));
    }

    #[test]
    fn dropping_the_throughput_metric_fails() {
        let base = report(vec![record("stream", 53_211, Some(1_000_000.0))]);
        let cur = report(vec![record("stream", 53_211, None)]);
        let verdict = check_regression(&cur, &base, 25.0, 70.0);
        assert_eq!(verdict.failures.len(), 1);
        assert!(verdict.failures[0].contains("stopped recording"));
    }

    #[test]
    fn experiments_without_a_baseline_throughput_are_exempt() {
        let base = report(vec![record("fig1", 42, None)]);
        let cur = report(vec![record("fig1", 42, Some(5.0))]);
        assert!(check_regression(&cur, &base, 25.0, 70.0).ok());
    }

    #[test]
    fn miss_drift_still_fails_before_throughput_is_considered() {
        let base = report(vec![record("stream", 53_211, Some(1_000_000.0))]);
        let cur = report(vec![record("stream", 53_212, Some(1_000_000.0))]);
        let verdict = check_regression(&cur, &base, 25.0, 70.0);
        assert_eq!(verdict.failures.len(), 1);
        assert!(verdict.failures[0].contains("misses drifted"));
    }
}
