//! The pool's two contracts, exercised the way the evaluation layer
//! relies on them: result ordering is independent of the worker count,
//! and a panicking job is isolated to its own result slot.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code asserts by panicking

use std::sync::atomic::{AtomicUsize, Ordering};

use tempo_par::{JobPanic, Pool};

/// Ordering: for every worker count 1..8, results line up with submission
/// order even when early jobs are the slowest (so later jobs finish
/// first on any multi-worker schedule).
#[test]
fn ordering_preserved_under_1_to_8_workers() {
    let expected: Vec<u64> = (0..40).map(|i| i * i).collect();
    for workers in 1..=8 {
        let pool = Pool::new(workers);
        let jobs: Vec<_> = (0..40u64)
            .map(|i| {
                move || {
                    // Front-loaded latency: job 0 sleeps longest.
                    std::thread::sleep(std::time::Duration::from_micros((40 - i).min(5) * 200));
                    i * i
                }
            })
            .collect();
        let out: Vec<u64> = pool.run(jobs).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(out, expected, "order broke at {workers} workers");
    }
}

/// Panic isolation: the failing job surfaces as `Err(JobPanic)` carrying
/// its index and message; every sibling job still runs and succeeds.
#[test]
fn panicking_job_is_isolated() {
    let ran = AtomicUsize::new(0);
    for workers in [1, 2, 4, 8] {
        ran.store(0, Ordering::SeqCst);
        let pool = Pool::new(workers);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..12usize)
            .map(|i| {
                let ran = &ran;
                Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    assert!(i != 3, "boom at job 3");
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out.len(), 12);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let err: &JobPanic = r.as_ref().unwrap_err();
                assert_eq!(err.index, 3);
                assert!(
                    err.message.contains("boom at job 3"),
                    "got: {}",
                    err.message
                );
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
        // Every job ran despite the mid-list panic.
        assert_eq!(ran.load(Ordering::SeqCst), 12, "at {workers} workers");
    }
}

/// The pool survives a panicking batch: the same pool value runs a clean
/// batch afterwards (threads are scoped per call, nothing is poisoned).
#[test]
fn pool_survives_a_panicking_batch() {
    let pool = Pool::new(4);
    let bad: Vec<Box<dyn FnOnce() -> u32 + Send>> =
        vec![Box::new(|| panic!("first batch fails")), Box::new(|| 7)];
    let first = pool.run(bad);
    assert!(first[0].is_err());
    assert_eq!(*first[1].as_ref().unwrap(), 7);

    let clean: Vec<_> = (0..8u32).map(|i| move || i + 1).collect();
    let second: Vec<u32> = pool.run(clean).into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(second, vec![1, 2, 3, 4, 5, 6, 7, 8]);
}

/// `map` preserves item order and isolates panics the same way `run` does.
#[test]
fn map_matches_run_contract() {
    let pool = Pool::new(3);
    let out = pool.map((0..9usize).collect(), |i| {
        assert!(i != 5, "map job 5 dies");
        i * 10
    });
    for (i, r) in out.iter().enumerate() {
        if i == 5 {
            assert_eq!(r.as_ref().unwrap_err().index, 5);
        } else {
            assert_eq!(*r.as_ref().unwrap(), i * 10);
        }
    }
}
