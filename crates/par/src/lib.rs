//! A small, dependency-free scoped worker pool for embarrassingly
//! parallel evaluation sweeps.
//!
//! The evaluation layer of the toolkit (tempo-bench's experiment matrix,
//! tempo-cache's config sweeps, tempo-workloads' multi-seed trace
//! generation) is a pile of independent jobs over shared read-only data.
//! This crate runs such job lists across N OS threads with two contracts
//! the rest of the workspace leans on:
//!
//! * **Deterministic ordering** — `results[i]` is always the outcome of
//!   `jobs[i]`, no matter how many workers ran or how they interleaved.
//!   Aggregation code downstream can therefore produce byte-identical
//!   reports for any worker count.
//! * **Panic isolation** — each job runs under
//!   [`std::panic::catch_unwind`]; a panicking job surfaces as a per-job
//!   [`JobPanic`] in its result slot while every other job still completes
//!   and the pool remains usable. One bad cell does not kill a sweep.
//!
//! Workers are spawned per [`Pool::run`] call inside a
//! [`std::thread::scope`], so jobs may borrow from the caller's stack and
//! no threads linger between calls. A [`Pool`] is plain configuration —
//! cheap to create, `Copy`, and safe to share.
//!
//! # Example
//!
//! ```
//! use tempo_par::Pool;
//!
//! let data = vec![1u64, 2, 3, 4];
//! let pool = Pool::new(8);
//! let jobs: Vec<_> = data.iter().map(|&x| move || x * x).collect();
//! let results = pool.run(jobs);
//! let squares: Vec<u64> = results.into_iter().map(|r| r.expect("no panics")).collect();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

// In the test build, `unwrap` IS the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of hardware threads available to this process (at least 1).
///
/// Used as the default worker count wherever a `--jobs` knob is not given.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A job that panicked instead of producing a value.
///
/// Carries the job's index in the submitted list and the rendered panic
/// payload (the `&str`/`String` message when there was one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the failed job in the submitted `jobs` vector.
    pub index: usize,
    /// The panic message, or a placeholder for non-string payloads.
    pub message: String,
}

impl JobPanic {
    fn new(index: usize, payload: &(dyn Any + Send)) -> JobPanic {
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        JobPanic { index, message }
    }
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// A fixed-width worker pool (configuration only; threads are scoped to
/// each [`run`](Pool::run) call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to [`available_parallelism`].
    pub fn with_available() -> Pool {
        Pool::new(available_parallelism())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job, returning one result per job **in submission
    /// order**.
    ///
    /// Jobs are claimed from a shared counter, so long and short jobs
    /// balance across workers; results land in their submission slot
    /// regardless. A panicking job yields `Err(JobPanic)` in its slot and
    /// does not affect its siblings. With one worker (or zero/one job)
    /// everything runs inline on the calling thread — same contract, no
    /// spawn overhead.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<Result<T, JobPanic>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| {
                    catch_unwind(AssertUnwindSafe(job)).map_err(|p| JobPanic::new(i, p.as_ref()))
                })
                .collect();
        }

        // Each slot holds its job until a worker claims it, then its
        // result. Slots are only ever touched by the single worker that
        // won `next.fetch_add` for that index, but the Mutex keeps the
        // sharing safe without unsafe code.
        let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<Result<T, JobPanic>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("a job slot is locked only briefly and never across a panic")
                        .take()
                        .expect("each job index is claimed exactly once");
                    let outcome = catch_unwind(AssertUnwindSafe(job))
                        .map_err(|p| JobPanic::new(i, p.as_ref()));
                    *results[i]
                        .lock()
                        .expect("a result slot is locked only briefly and never across a panic") =
                        Some(outcome);
                });
            }
        });

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("workers have exited; no lock is held")
                    .expect("every index below n was claimed and completed")
            })
            .collect()
    }

    /// Maps `f` over `items` through the pool, preserving item order.
    ///
    /// Convenience wrapper over [`run`](Pool::run) for the common
    /// "same function, many inputs" sweep shape.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<Result<T, JobPanic>>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let f = &f;
        self.run(items.into_iter().map(|item| move || f(item)).collect())
    }
}

impl Default for Pool {
    /// Defaults to one worker per available hardware thread.
    fn default() -> Pool {
        Pool::with_available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_path_preserves_order() {
        let pool = Pool::new(1);
        let jobs: Vec<_> = (0..10u64).map(|i| move || i * 3).collect();
        let out: Vec<u64> = pool.run(jobs).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(out, (0..10u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_fine() {
        let pool = Pool::new(4);
        let out: Vec<Result<u64, JobPanic>> = pool.run(Vec::<fn() -> u64>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn workers_clamped_to_one() {
        assert_eq!(Pool::new(0).workers(), 1);
    }

    #[test]
    fn map_borrows_shared_data() {
        let base = [10u64, 20, 30];
        let pool = Pool::new(3);
        let out: Vec<u64> = pool
            .map((0..3).collect(), |i: usize| base[i] + 1)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(out, vec![11, 21, 31]);
    }
}
