//! Synthetic workload models standing in for the paper's SPECint95 + ATOM
//! environment.
//!
//! The paper evaluates its placement algorithms on five SPECint95 programs
//! plus ghostscript, tracing them with ATOM (Table 1). Neither the DEC
//! Alpha binaries nor the traces are available, so this crate provides the
//! closest synthetic equivalent that exercises the same code paths:
//!
//! * [`WorkloadSpec`] — a parameterized program model: procedure counts and
//!   size distributions matched to Table 1's statics, a layered call graph
//!   (dispatcher → phase drivers → hot procedures → shared utilities +
//!   cold tail), and **phase behavior** (the executor dwells on a subset
//!   of hot procedures, then moves on), which creates exactly the
//!   temporal structure a WCG cannot see (the paper's Figure 1).
//! * [`InputSpec`] — one "program input": RNG seed plus knobs (phase
//!   stride/dwell, call-site skew, cold-call rate). Each benchmark has a
//!   `training` and a `testing` input, mirroring the paper's §5.2
//!   train/test methodology — including `m88ksim`, whose testing input is
//!   deliberately divergent ("dcrand is a poor training set for dhry").
//! * [`BenchmarkModel`] — a built program plus its two inputs;
//!   [`suite::standard_suite`] returns the six Table 1 benchmarks.
//!
//! # Example
//!
//! ```
//! use tempo_workloads::suite;
//!
//! let model = suite::m88ksim();
//! let program = model.program();
//! assert_eq!(program.len(), 460); // Table 1: m88ksim has 460 procedures
//! let train = model.training_trace(20_000);
//! assert_eq!(train.len(), 20_000);
//! train.validate(program).unwrap();
//! ```

// In the test build, `unwrap` IS the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

pub mod callgraph;
mod exec;
mod generator;
pub mod par;
mod spec;
pub mod suite;

pub use exec::{Executor, ExecutorSource};
pub use generator::BenchmarkModel;
pub use spec::{InputSpec, WorkloadSpec};
