//! The trace executor: a stack-shaped random walk over a benchmark model.
//!
//! Each root invocation descends dispatcher → phase driver → hot leaves
//! (→ shared utilities), emitting a trace record at **every** control-flow
//! transition into a procedure — both calls and returns — exactly the event
//! stream the paper's profiling consumes. Phase dwell creates the
//! long-range temporal structure (working sets that rotate over the hot
//! set) that distinguishes a TRG from a WCG.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempo_program::ProcId;
use tempo_trace::io::TraceIoError;
use tempo_trace::stats::Zipf;
use tempo_trace::{Trace, TraceBuilder, TraceRecord, TraceSource};

use crate::{BenchmarkModel, InputSpec};

/// Generates traces from a [`BenchmarkModel`] under an [`InputSpec`].
///
/// # Example
///
/// ```
/// use tempo_workloads::{suite, Executor};
/// let model = suite::perl();
/// let trace = Executor::new(&model, model.training_input()).generate(1_000);
/// assert_eq!(trace.len(), 1_000);
/// ```
#[derive(Debug)]
pub struct Executor<'m> {
    model: &'m BenchmarkModel,
    input: InputSpec,
    rng: StdRng,
    phase: usize,
    dwell_left: u32,
    zipf: Zipf,
}

impl<'m> Executor<'m> {
    /// Creates an executor positioned at the start of the first phase.
    pub fn new(model: &'m BenchmarkModel, input: InputSpec) -> Self {
        let spec = model.spec();
        let skew = (spec.skew + input.skew_delta).max(0.0);
        let zipf = Zipf::new(spec.phase_window.min(model.hot_leaves().len()), skew);
        let mut rng = StdRng::seed_from_u64(input.seed);
        let dwell_left = sample_dwell(&mut rng, spec.phase_dwell, input.dwell_factor);
        Executor {
            model,
            input,
            rng,
            phase: 0,
            dwell_left,
            zipf,
        }
    }

    /// Generates a trace of exactly `len` records.
    pub fn generate(&mut self, len: usize) -> Trace {
        let program = self.model.program();
        let mut out = TraceBuilder::with_capacity(program, len + 64);
        while out.len() < len {
            self.invoke_root(&mut out);
        }
        let mut trace = std::mem::replace(&mut out, TraceBuilder::new(program)).build();
        trace = Trace::from_records(trace.into_iter().take(len).collect());
        trace
    }

    /// Converts the executor into a lazy [`TraceSource`] yielding exactly
    /// `len` records.
    ///
    /// The records are identical to what [`generate`](Executor::generate)
    /// would return from the same executor state — both emit whole root
    /// invocations and cut the stream at `len` — but the source buffers at
    /// most one invocation (a few dozen records) instead of the whole
    /// trace, so paper-scale runs stay in constant memory.
    pub fn into_source(self, len: usize) -> ExecutorSource<'m> {
        ExecutorSource {
            exec: self,
            pending: VecDeque::new(),
            remaining: len as u64,
            total: len as u64,
        }
    }

    /// One root invocation: dispatcher → driver → leaves.
    fn invoke_root(&mut self, out: &mut TraceBuilder<'_>) {
        let spec = self.model.spec();
        let program = self.model.program();
        let dispatcher = self.model.dispatcher();
        let drivers = self.model.drivers();
        let window = self.model.phase_window(self.phase, &self.input);

        out.full(dispatcher);

        let driver = drivers[self.phase];
        let driver_size = self.model.hot_prefix(driver);
        // Calls this driver invocation makes: roughly `fanout` on average.
        let calls = sample_fanout(&mut self.rng, spec.fanout);
        let seg = (driver_size / (calls + 2)).max(1);
        out.transition(driver, seg);

        for _ in 0..calls {
            let cold_p = spec.cold_call_rate * self.input.cold_factor;
            if !self.model.cold().is_empty() && self.rng.gen_bool(cold_p.clamp(0.0, 1.0)) {
                // Rare excursion into the cold tail.
                let c = self.model.cold()[self.rng.gen_range(0..self.model.cold().len())];
                // Cold procedures run a bounded prefix (they are often
                // error paths / one-off handlers, not whole-body loops).
                let bytes = program.size_of(c).min(1024);
                out.transition(c, bytes);
            } else {
                let leaf = window[self.zipf.sample(&mut self.rng)];
                self.invoke_leaf(out, leaf);
            }
            // Return to the driver: the code after the call site runs.
            out.transition(driver, seg);
        }

        // Return to the dispatcher.
        out.transition(dispatcher, 96);

        self.advance_phase();
    }

    /// One hot-leaf invocation, possibly nesting into a shared utility.
    fn invoke_leaf(&mut self, out: &mut TraceBuilder<'_>, leaf: ProcId) {
        let spec = self.model.spec();
        let utilities = self.model.utilities();
        // Typical invocations run the hot prefix; every ~20th runs the
        // whole body (a cold branch inside the procedure).
        let size = if self.rng.gen_bool(0.05) {
            self.model.program().size_of(leaf)
        } else {
            self.model.hot_prefix(leaf)
        };
        let nested = !utilities.is_empty() && self.rng.gen_bool(spec.nested_call_rate) && size > 64;
        if nested {
            out.transition(leaf, (size * 3 / 5).max(1));
            let util = utilities[self.rng.gen_range(0..utilities.len())];
            if util != leaf {
                let ub = self.model.hot_prefix(util);
                out.transition(util, ub);
                out.transition(leaf, (size * 2 / 5).max(1));
            }
        } else {
            out.transition(leaf, size);
        }
    }

    /// Consumes one invocation of phase dwell, rotating to the next phase
    /// when exhausted (with an occasional random jump).
    fn advance_phase(&mut self) {
        let spec = self.model.spec();
        if self.dwell_left > 0 {
            self.dwell_left -= 1;
            return;
        }
        self.phase = if spec.phases > 1 && self.rng.gen_bool(0.15) {
            self.rng.gen_range(0..spec.phases)
        } else {
            (self.phase + 1) % spec.phases
        };
        self.dwell_left = sample_dwell(&mut self.rng, spec.phase_dwell, self.input.dwell_factor);
    }
}

/// A lazy [`TraceSource`] over an [`Executor`].
///
/// Yields the exact record sequence [`Executor::generate`] would
/// materialize — same model, same input, same RNG draw order — while
/// holding only the current root invocation in memory. Obtained from
/// [`Executor::into_source`] or the `*_source` methods on
/// [`BenchmarkModel`].
#[derive(Debug)]
pub struct ExecutorSource<'m> {
    exec: Executor<'m>,
    /// Records of the current root invocation not yet handed out.
    pending: VecDeque<TraceRecord>,
    /// Records still to yield before the stream ends.
    remaining: u64,
    /// Total records this source will yield.
    total: u64,
}

impl TraceSource for ExecutorSource<'_> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        while self.pending.is_empty() {
            // Each root invocation emits at least three records
            // (dispatcher, driver, dispatcher return), so this refill
            // always makes progress.
            let mut out = TraceBuilder::new(self.exec.model.program());
            self.exec.invoke_root(&mut out);
            self.pending.extend(out.build());
        }
        self.remaining -= 1;
        Ok(self.pending.pop_front())
    }

    fn expected_records(&self) -> Option<u64> {
        Some(self.total)
    }
}

/// Geometric-ish dwell with the given mean (at least 1).
#[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
fn sample_dwell(rng: &mut StdRng, mean: u32, factor: f64) -> u32 {
    let mean = (f64::from(mean) * factor).max(1.0);
    // Exponential with the requested mean, discretized.
    let u: f64 = rng.gen::<f64>().max(1e-12);
    ((-u.ln()) * mean).round().max(1.0) as u32
}

/// Number of calls a driver makes in one invocation: mean `fanout`,
/// clamped into `1..=24`.
#[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
fn sample_fanout(rng: &mut StdRng, fanout: f64) -> u32 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (((-u.ln()) * fanout).round() as u32).clamp(1, 24)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;
    use tempo_cache::CacheConfig;
    use tempo_trg::{PopularitySelector, Profiler};

    fn model() -> BenchmarkModel {
        BenchmarkModel::build(
            WorkloadSpec {
                name: "mini",
                proc_count: 80,
                total_size: 400_000,
                hot_count: 20,
                hot_size: 80_000,
                phases: 4,
                phase_window: 6,
                phase_dwell: 60,
                fanout: 4.0,
                skew: 0.7,
                cold_call_rate: 0.02,
                nested_call_rate: 0.25,
                build_seed: 7,
            },
            InputSpec::new(11),
            InputSpec::new(22),
        )
    }

    #[test]
    fn source_yields_exactly_the_materialized_trace() {
        let m = model();
        let input = m.training_input();
        let materialized = Executor::new(&m, input).generate(7_500);
        let mut source = Executor::new(&m, input).into_source(7_500);
        assert_eq!(source.expected_records(), Some(7_500));
        let mut streamed = Trace::new();
        tempo_trace::pump(&mut source, &mut streamed).unwrap();
        assert_eq!(streamed, materialized);
        // The stream ends exactly at the requested length.
        assert!(source.try_next().unwrap().is_none());
    }

    #[test]
    fn generates_exact_length_valid_traces() {
        let m = model();
        let t = m.training_trace(10_000);
        assert_eq!(t.len(), 10_000);
        t.validate(m.program()).unwrap();
    }

    #[test]
    fn hot_procedures_dominate_references() {
        let m = model();
        let t = m.training_trace(30_000);
        let counts = t.reference_counts(m.program());
        let mut hot_ids = vec![m.dispatcher()];
        hot_ids.extend_from_slice(m.drivers());
        hot_ids.extend_from_slice(m.hot_leaves());
        let hot: u64 = hot_ids.iter().map(|id| counts[id.as_usize()]).sum();
        let total: u64 = counts.iter().sum();
        assert!(
            hot as f64 / total as f64 > 0.95,
            "hot fraction {}",
            hot as f64 / total as f64
        );
    }

    #[test]
    fn popularity_selection_finds_roughly_the_hot_set() {
        let m = model();
        let t = m.training_trace(60_000);
        let set = PopularitySelector::default_policy().select(m.program(), &t);
        let picked = set.count();
        assert!(
            (12..=34).contains(&picked),
            "picked {picked}, expected near {}",
            m.spec().hot_count
        );
    }

    #[test]
    fn phases_create_sibling_trg_edges_missing_from_wcg() {
        let m = model();
        let t = m.training_trace(60_000);
        let prof = Profiler::new(m.program(), CacheConfig::direct_mapped_8k())
            .popularity(PopularitySelector::all())
            .profile(&t);
        // Count popular leaf pairs that have a TRG edge but no WCG edge:
        // these are the sibling relations the paper's Figure 1 motivates.
        let leaves = m.hot_leaves();
        let mut sibling_only = 0usize;
        for i in 0..leaves.len() {
            for j in (i + 1)..leaves.len() {
                let (a, b) = (leaves[i].index(), leaves[j].index());
                if prof.trg_select.weight(a, b) > 10.0 && prof.wcg.weight(a, b) == 0.0 {
                    sibling_only += 1;
                }
            }
        }
        assert!(
            sibling_only >= 5,
            "expected WCG-invisible sibling pairs, found {sibling_only}"
        );
    }

    #[test]
    fn phase_rotation_shifts_working_sets() {
        let m = model();
        // Long trace so every phase is visited.
        let t = m.training_trace(80_000);
        let counts = t.reference_counts(m.program());
        // Every hot leaf should be touched eventually.
        let untouched = m
            .hot_leaves()
            .iter()
            .filter(|l| counts[l.as_usize()] == 0)
            .count();
        assert_eq!(untouched, 0, "{untouched} hot leaves never ran");
    }

    #[test]
    fn cold_calls_happen_but_rarely() {
        let m = model();
        let t = m.training_trace(50_000);
        let counts = t.reference_counts(m.program());
        let cold: u64 = m.cold().iter().map(|c| counts[c.as_usize()]).sum();
        let total: u64 = counts.iter().sum();
        assert!(cold > 0, "cold tail must appear");
        assert!((cold as f64 / total as f64) < 0.05);
    }

    #[test]
    fn dispatcher_interleaves_with_everything() {
        let m = model();
        let t = m.training_trace(20_000);
        // The dispatcher is referenced twice per root invocation, placing
        // it among the hottest procedures (drivers can exceed it because
        // they emit one record per call made).
        let counts = t.reference_counts(m.program());
        let mut sorted: Vec<u64> = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let threshold = sorted[m.drivers().len()];
        assert!(counts[m.dispatcher().as_usize()] >= threshold);
    }

    #[test]
    fn different_inputs_different_hot_mixes() {
        let m = model();
        let a = m.training_trace(40_000);
        let mut shifted = m.testing_input();
        shifted.phase_shift = 3;
        let b = m.trace(&shifted, 40_000);
        let ca = a.reference_counts(m.program());
        let cb = b.reference_counts(m.program());
        // Reference distributions over hot leaves must differ noticeably.
        let mut l1 = 0.0;
        let (ta, tb) = (ca.iter().sum::<u64>() as f64, cb.iter().sum::<u64>() as f64);
        for l in m.hot_leaves() {
            let fa = ca[l.as_usize()] as f64 / ta;
            let fb = cb[l.as_usize()] as f64 / tb;
            l1 += (fa - fb).abs();
        }
        assert!(l1 > 0.05, "hot distributions too similar: l1 {l1}");
    }
}
