//! Deterministic construction of a benchmark's program and call structure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempo_program::{ProcId, Program};
use tempo_trace::stats::lognormal;
use tempo_trace::Trace;

use crate::exec::ExecutorSource;
use crate::{Executor, InputSpec, WorkloadSpec};

/// A built benchmark: the program, its role assignment (dispatcher, phase
/// drivers, hot leaves, shared utilities, cold tail), and the training and
/// testing inputs.
///
/// Construction is fully deterministic: the same [`WorkloadSpec`] always
/// yields the same program and call structure.
#[derive(Debug, Clone)]
pub struct BenchmarkModel {
    spec: WorkloadSpec,
    program: Program,
    /// The dispatcher (root) procedure.
    dispatcher: ProcId,
    /// The phase drivers, one per phase.
    drivers: Vec<ProcId>,
    /// Hot leaf procedures (callees of the phase drivers), in window order.
    hot_leaves: Vec<ProcId>,
    /// Shared utilities (subset of hot leaves, also callable from any leaf).
    utilities: Vec<ProcId>,
    /// Cold procedures.
    cold: Vec<ProcId>,
    /// Hot-prefix length per procedure (bytes executed on a typical
    /// invocation), indexed by procedure id. Real procedures concentrate
    /// execution in a hot loop near their entry, not uniformly over their
    /// body; the executor touches only this prefix most of the time.
    hot_prefix: Vec<u32>,
    training: InputSpec,
    testing: InputSpec,
}

impl BenchmarkModel {
    /// Builds the model for a spec, with the given train/test inputs.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn build(spec: WorkloadSpec, training: InputSpec, testing: InputSpec) -> Self {
        spec.validate();
        let mut rng = StdRng::seed_from_u64(spec.build_seed);

        // Role counts. The dispatcher and the drivers are hot by
        // construction; the rest of the hot budget goes to leaves.
        let driver_count = spec.phases;
        let leaf_count = spec
            .hot_count
            .checked_sub(1 + driver_count)
            .expect("hot_count must exceed phases + 1");
        assert!(
            leaf_count >= spec.phase_window,
            "window larger than hot leaf pool"
        );
        let cold_count = spec.proc_count - spec.hot_count;

        const DISPATCHER_SIZE: u32 = 384;
        // Hot sizes: lognormal, scaled to the hot budget.
        let hot_budget = spec.hot_size - u64::from(DISPATCHER_SIZE);
        let hot_sizes = scaled_sizes(&mut rng, driver_count + leaf_count, hot_budget, 0.6);
        // Cold sizes: heavier tail, scaled to the remaining budget.
        let cold_budget = spec.total_size - spec.hot_size;
        let cold_sizes = scaled_sizes(&mut rng, cold_count, cold_budget, 1.0);

        // Named roles in construction order: dispatcher, drivers, hot
        // leaves, cold tail.
        let mut roles: Vec<(String, u32)> = Vec::with_capacity(spec.proc_count);
        roles.push(("dispatch".to_string(), DISPATCHER_SIZE));
        for (i, &s) in hot_sizes.iter().take(driver_count).enumerate() {
            roles.push((format!("drive_{i}"), s));
        }
        for (i, &s) in hot_sizes.iter().skip(driver_count).enumerate() {
            roles.push((format!("hot_{i}"), s));
        }
        for (i, &s) in cold_sizes.iter().enumerate() {
            roles.push((format!("cold_{i}"), s));
        }

        // Real programs scatter hot procedures across source files, so the
        // compiler-default (id-order) layout interleaves hot and cold code.
        // Shuffle the role -> procedure-id assignment to reproduce that.
        let mut id_of_role: Vec<u32> = (0..spec.proc_count as u32).collect();
        use rand::seq::SliceRandom;
        id_of_role.shuffle(&mut rng);

        let mut by_id: Vec<(String, u32)> = vec![(String::new(), 0); spec.proc_count];
        for (role, (name, size)) in roles.into_iter().enumerate() {
            by_id[id_of_role[role] as usize] = (name, size);
        }
        let mut builder = Program::builder();
        for (name, size) in by_id {
            builder.procedure(name, size);
        }
        let program = builder.build().expect("generated program is valid");

        let dispatcher = ProcId::new(id_of_role[0]);
        let drivers: Vec<ProcId> = (0..driver_count)
            .map(|i| ProcId::new(id_of_role[1 + i]))
            .collect();
        let hot_leaves: Vec<ProcId> = (0..leaf_count)
            .map(|i| ProcId::new(id_of_role[1 + driver_count + i]))
            .collect();
        // Shared utilities: every eighth hot leaf (at least one).
        let utilities: Vec<ProcId> = hot_leaves
            .iter()
            .copied()
            .step_by(8)
            .take((leaf_count / 8).max(1))
            .collect();
        let cold: Vec<ProcId> = (0..cold_count)
            .map(|i| ProcId::new(id_of_role[1 + driver_count + leaf_count + i]))
            .collect();

        // Hot prefixes: each procedure typically executes 25-70% of its
        // body (its hot loop plus entry code), at least 32 bytes.
        let hot_prefix: Vec<u32> = (0..spec.proc_count)
            .map(|i| {
                let size = program.size_of(ProcId::new(i as u32));
                let frac = 0.25 + 0.45 * rng.gen::<f64>();
                ((f64::from(size) * frac) as u32).clamp(32.min(size), size)
            })
            .collect();

        BenchmarkModel {
            spec,
            program,
            dispatcher,
            drivers,
            hot_leaves,
            utilities,
            cold,
            hot_prefix,
            training,
            testing,
        }
    }

    /// Bytes of a procedure's hot prefix (what a typical invocation runs).
    pub fn hot_prefix(&self, id: ProcId) -> u32 {
        self.hot_prefix[id.as_usize()]
    }

    /// The benchmark name.
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// The spec the model was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The synthetic program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The dispatcher (root) procedure.
    pub fn dispatcher(&self) -> ProcId {
        self.dispatcher
    }

    /// The phase-driver procedures, one per phase.
    pub fn drivers(&self) -> &[ProcId] {
        &self.drivers
    }

    /// The hot leaf procedures.
    pub fn hot_leaves(&self) -> &[ProcId] {
        &self.hot_leaves
    }

    /// The shared utility procedures (a subset of the hot leaves).
    pub fn utilities(&self) -> &[ProcId] {
        &self.utilities
    }

    /// The cold procedures.
    pub fn cold(&self) -> &[ProcId] {
        &self.cold
    }

    /// The hot-leaf window active in the given phase under an input's
    /// shift, as indices into [`hot_leaves`](Self::hot_leaves).
    pub fn phase_window(&self, phase: usize, input: &InputSpec) -> Vec<ProcId> {
        let n = self.hot_leaves.len();
        let stride = (n / self.spec.phases).max(1);
        let start = phase * stride + input.phase_shift;
        (0..self.spec.phase_window.min(n))
            .map(|k| self.hot_leaves[(start + k) % n])
            .collect()
    }

    /// The training input.
    pub fn training_input(&self) -> InputSpec {
        self.training
    }

    /// The testing input.
    pub fn testing_input(&self) -> InputSpec {
        self.testing
    }

    /// Generates a trace of exactly `len` records for an arbitrary input.
    pub fn trace(&self, input: &InputSpec, len: usize) -> Trace {
        Executor::new(self, *input).generate(len)
    }

    /// Generates the training trace (`len` records).
    pub fn training_trace(&self, len: usize) -> Trace {
        self.trace(&self.training, len)
    }

    /// Generates the testing trace (`len` records).
    pub fn testing_trace(&self, len: usize) -> Trace {
        self.trace(&self.testing, len)
    }

    /// Lazily generates a trace of exactly `len` records for an arbitrary
    /// input, as a [`tempo_trace::TraceSource`].
    ///
    /// Yields the same records as [`trace`](Self::trace) while buffering
    /// only one root invocation at a time — use this for paper-scale runs
    /// that must not materialize the trace.
    pub fn trace_source(&self, input: &InputSpec, len: usize) -> ExecutorSource<'_> {
        Executor::new(self, *input).into_source(len)
    }

    /// Lazily generates the training trace (`len` records).
    pub fn training_source(&self, len: usize) -> ExecutorSource<'_> {
        self.trace_source(&self.training, len)
    }

    /// Lazily generates the testing trace (`len` records).
    pub fn testing_source(&self, len: usize) -> ExecutorSource<'_> {
        self.trace_source(&self.testing, len)
    }
}

/// Samples `n` lognormal sizes and scales them to sum to `budget` bytes
/// (each at least 16 bytes, rounded to 4).
#[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
fn scaled_sizes(rng: &mut StdRng, n: usize, budget: u64, sigma: f64) -> Vec<u32> {
    assert!(n > 0, "need at least one size");
    let raw: Vec<f64> = (0..n).map(|_| lognormal(rng, 0.0, sigma)).collect();
    let total: f64 = raw.iter().sum();
    let scale = budget as f64 / total;
    let mut sizes: Vec<u32> = raw
        .iter()
        .map(|r| (((r * scale) as u32).max(16) / 4) * 4)
        .collect();
    // Nudge the largest entry so the sum lands close to the budget.
    let sum: u64 = sizes.iter().map(|&s| u64::from(s)).sum();
    if let Some(max_idx) = (0..n).max_by_key(|&i| sizes[i]) {
        let adjusted = i64::from(sizes[max_idx]) + (budget as i64 - sum as i64);
        sizes[max_idx] = adjusted.clamp(16, u32::MAX as i64) as u32 / 4 * 4;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "mini",
            proc_count: 60,
            total_size: 300_000,
            hot_count: 14,
            hot_size: 60_000,
            phases: 3,
            phase_window: 5,
            phase_dwell: 50,
            fanout: 4.0,
            skew: 0.8,
            cold_call_rate: 0.01,
            nested_call_rate: 0.2,
            build_seed: 42,
        }
    }

    fn model() -> BenchmarkModel {
        BenchmarkModel::build(spec(), InputSpec::new(1), InputSpec::new(2))
    }

    #[test]
    fn counts_match_spec() {
        let m = model();
        assert_eq!(m.program().len(), 60);
        assert_eq!(m.drivers().len(), 3);
        assert_eq!(m.hot_leaves().len(), 14 - 1 - 3);
        assert_eq!(m.cold().len(), 60 - 14);
        assert!(!m.utilities().is_empty());
        assert!(m.utilities().iter().all(|u| m.hot_leaves().contains(u)));
    }

    #[test]
    fn sizes_land_near_budgets() {
        let m = model();
        let total = m.program().total_size();
        assert!(
            (total as i64 - 300_000i64).unsigned_abs() < 3_000,
            "total {total}"
        );
        let mut hot_ids = vec![m.dispatcher()];
        hot_ids.extend_from_slice(m.drivers());
        hot_ids.extend_from_slice(m.hot_leaves());
        let hot: u64 = hot_ids
            .iter()
            .map(|id| u64::from(m.program().size_of(*id)))
            .sum();
        assert!((hot as i64 - 60_000i64).unsigned_abs() < 2_000, "hot {hot}");
    }

    #[test]
    fn build_is_deterministic() {
        let a = model();
        let b = model();
        assert_eq!(a.program(), b.program());
        assert_eq!(a.hot_leaves(), b.hot_leaves());
    }

    #[test]
    fn phase_windows_cover_distinct_regions() {
        let m = model();
        let w0 = m.phase_window(0, &InputSpec::new(0));
        let w1 = m.phase_window(1, &InputSpec::new(0));
        assert_eq!(w0.len(), 5);
        assert_ne!(w0, w1);
        // A phase shift rotates the windows.
        let mut shifted = InputSpec::new(0);
        shifted.phase_shift = 2;
        let w0s = m.phase_window(0, &shifted);
        assert_ne!(w0, w0s);
    }

    #[test]
    fn hot_prefixes_are_within_procedure_bounds() {
        let m = model();
        for id in m.program().ids() {
            let hp = m.hot_prefix(id);
            let size = m.program().size_of(id);
            assert!(hp >= 1 && hp <= size, "{id}: prefix {hp} of {size}");
            if size >= 128 {
                // Roughly 25-70% of the body.
                assert!(hp >= size / 5 && hp <= size * 3 / 4, "{id}: {hp}/{size}");
            }
        }
    }

    #[test]
    fn traces_are_valid_and_exact_length() {
        let m = model();
        let t = m.training_trace(5_000);
        assert_eq!(t.len(), 5_000);
        t.validate(m.program()).unwrap();
    }

    #[test]
    fn training_and_testing_traces_differ() {
        let m = model();
        let a = m.training_trace(2_000);
        let b = m.testing_trace(2_000);
        assert_ne!(a, b);
    }

    #[test]
    fn same_input_same_trace() {
        let m = model();
        assert_eq!(m.training_trace(2_000), m.training_trace(2_000));
    }
}
