//! The six Table 1 benchmarks as synthetic models.
//!
//! Static shape (procedure count, total size, popular count, popular size)
//! is matched to Table 1 of the paper; dynamic parameters (phases, working
//! set, dwell) are tuned so the default-layout miss rate and the average Q
//! size land in the regime Table 1 reports. Training and testing inputs
//! differ in seed, phase scheduling, and callee skew, as the paper's
//! train/test data sets do; `m88ksim`'s testing input is deliberately
//! divergent, reproducing the paper's remark that "dcrand is a poor
//! training set for dhry".

use crate::{BenchmarkModel, InputSpec, WorkloadSpec};

/// `gcc` (SPECint95): 2005 procedures, 2277 KB, 136 popular (351 KB).
pub fn gcc() -> BenchmarkModel {
    BenchmarkModel::build(
        WorkloadSpec {
            name: "gcc",
            proc_count: 2005,
            total_size: 2277 * 1024,
            hot_count: 136,
            hot_size: 351 * 1024,
            phases: 27,
            phase_window: 5,
            phase_dwell: 40,
            fanout: 5.0,
            skew: 1.2,
            cold_call_rate: 0.015,
            nested_call_rate: 0.25,
            build_seed: 0x6cc,
        },
        InputSpec::new(101),
        InputSpec {
            seed: 202,
            phase_shift: 0,
            dwell_factor: 1.1,
            skew_delta: -0.05,
            cold_factor: 1.3,
        },
    )
}

/// `go` (SPECint95): 3221 procedures, 590 KB, 112 popular (134 KB).
pub fn go() -> BenchmarkModel {
    BenchmarkModel::build(
        WorkloadSpec {
            name: "go",
            proc_count: 3221,
            total_size: 590 * 1024,
            hot_count: 112,
            hot_size: 134 * 1024,
            phases: 14,
            phase_window: 8,
            phase_dwell: 30,
            fanout: 5.0,
            skew: 1.1,
            cold_call_rate: 0.010,
            nested_call_rate: 0.30,
            build_seed: 0x60,
        },
        InputSpec::new(103),
        InputSpec {
            seed: 204,
            phase_shift: 1,
            dwell_factor: 0.8,
            skew_delta: 0.1,
            cold_factor: 0.9,
        },
    )
}

/// `ghostscript`: 372 procedures, 1817 KB, 216 popular (104 KB).
pub fn ghostscript() -> BenchmarkModel {
    BenchmarkModel::build(
        WorkloadSpec {
            name: "ghostscript",
            proc_count: 372,
            total_size: 1817 * 1024,
            hot_count: 216,
            hot_size: 104 * 1024,
            phases: 12,
            phase_window: 16,
            phase_dwell: 50,
            fanout: 6.0,
            skew: 1.0,
            cold_call_rate: 0.008,
            nested_call_rate: 0.30,
            build_seed: 0x65,
        },
        InputSpec::new(105),
        InputSpec {
            seed: 206,
            phase_shift: 2,
            dwell_factor: 1.1,
            skew_delta: 0.05,
            cold_factor: 1.1,
        },
    )
}

/// `m88ksim` (SPECint95): 460 procedures, 549 KB, 31 popular (21 KB).
///
/// The testing input is deliberately divergent from training (large phase
/// shift, different dwell and skew) — the paper notes its train/test pair
/// (`dcrand`/`dhry`) is a poor match.
pub fn m88ksim() -> BenchmarkModel {
    BenchmarkModel::build(
        WorkloadSpec {
            name: "m88ksim",
            proc_count: 460,
            total_size: 549 * 1024,
            hot_count: 31,
            hot_size: 21 * 1024,
            phases: 4,
            phase_window: 8,
            phase_dwell: 80,
            fanout: 4.0,
            skew: 1.2,
            cold_call_rate: 0.010,
            nested_call_rate: 0.20,
            build_seed: 0x88,
        },
        InputSpec::new(107),
        InputSpec {
            seed: 208,
            phase_shift: 13, // rotate the hot windows far away from training
            dwell_factor: 0.3,
            skew_delta: 0.5,
            cold_factor: 2.0,
        },
    )
}

/// `perl` (SPECint95): 271 procedures, 664 KB, 36 popular (83 KB).
pub fn perl() -> BenchmarkModel {
    BenchmarkModel::build(
        WorkloadSpec {
            name: "perl",
            proc_count: 271,
            total_size: 664 * 1024,
            hot_count: 36,
            hot_size: 83 * 1024,
            phases: 6,
            phase_window: 5,
            phase_dwell: 60,
            fanout: 4.0,
            skew: 1.4,
            cold_call_rate: 0.010,
            nested_call_rate: 0.20,
            build_seed: 0x9e,
        },
        InputSpec::new(109),
        InputSpec {
            seed: 210,
            phase_shift: 1,
            dwell_factor: 1.2,
            skew_delta: -0.15,
            cold_factor: 1.2,
        },
    )
}

/// `vortex` (SPECint95): 923 procedures, 1073 KB, 156 popular (117 KB).
pub fn vortex() -> BenchmarkModel {
    BenchmarkModel::build(
        WorkloadSpec {
            name: "vortex",
            proc_count: 923,
            total_size: 1073 * 1024,
            hot_count: 156,
            hot_size: 117 * 1024,
            phases: 10,
            phase_window: 20,
            phase_dwell: 45,
            fanout: 7.0,
            skew: 0.9,
            cold_call_rate: 0.012,
            nested_call_rate: 0.35,
            build_seed: 0x40,
        },
        InputSpec::new(111),
        InputSpec {
            seed: 212,
            phase_shift: 2,
            dwell_factor: 0.9,
            skew_delta: 0.1,
            cold_factor: 1.1,
        },
    )
}

/// All six Table 1 benchmarks, in the paper's row order.
pub fn standard_suite() -> Vec<BenchmarkModel> {
    vec![gcc(), go(), ghostscript(), m88ksim(), perl(), vortex()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table1_statics() {
        let expected: &[(&str, usize, u64, usize, u64)] = &[
            ("gcc", 2005, 2277, 136, 351),
            ("go", 3221, 590, 112, 134),
            ("ghostscript", 372, 1817, 216, 104),
            ("m88ksim", 460, 549, 31, 21),
            ("perl", 271, 664, 36, 83),
            ("vortex", 923, 1073, 156, 117),
        ];
        for (model, &(name, procs, total_kb, hot, hot_kb)) in standard_suite().iter().zip(expected)
        {
            assert_eq!(model.name(), name);
            assert_eq!(model.program().len(), procs, "{name} proc count");
            let total = model.program().total_size();
            assert!(
                (total as i64 - (total_kb * 1024) as i64).unsigned_abs() < 20 * 1024,
                "{name} total {total}"
            );
            assert_eq!(model.spec().hot_count, hot);
            let mut hot_ids = vec![model.dispatcher()];
            hot_ids.extend_from_slice(model.drivers());
            hot_ids.extend_from_slice(model.hot_leaves());
            assert_eq!(hot_ids.len(), hot);
            let hot_size: u64 = hot_ids
                .iter()
                .map(|id| u64::from(model.program().size_of(*id)))
                .sum();
            assert!(
                (hot_size as i64 - (hot_kb * 1024) as i64).unsigned_abs() < 8 * 1024,
                "{name} hot size {hot_size}"
            );
        }
    }

    #[test]
    fn all_models_generate_valid_traces() {
        for model in standard_suite() {
            let t = model.training_trace(3_000);
            assert_eq!(t.len(), 3_000, "{}", model.name());
            t.validate(model.program()).unwrap();
            let t = model.testing_trace(3_000);
            t.validate(model.program()).unwrap();
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<_> = standard_suite().iter().map(|m| m.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }
}
