//! Parallel multi-seed trace generation.
//!
//! Every experiment needs at least a training and a testing trace per
//! benchmark, and perturbation studies need whole families of traces that
//! differ only in their [`InputSpec`] seed. Each [`Executor`] owns its RNG
//! (seeded from the input spec), so generation for distinct specs is
//! independent by construction — these helpers fan it out over a
//! [`tempo_par::Pool`] and return traces in request order, identical to
//! the serial result for any worker count.

use tempo_par::{JobPanic, Pool};
use tempo_trace::Trace;

use crate::{BenchmarkModel, Executor, InputSpec};

/// Generates one trace per `(input, len)` request, in parallel, in
/// request order.
///
/// # Errors
///
/// Returns the first worker panic as a [`JobPanic`] carrying the failing
/// request's index (generation itself does not panic for valid models).
pub fn traces(
    model: &BenchmarkModel,
    requests: &[(InputSpec, usize)],
    pool: &Pool,
) -> Result<Vec<Trace>, JobPanic> {
    let jobs: Vec<_> = requests
        .iter()
        .map(|&(input, len)| move || Executor::new(model, input).generate(len))
        .collect();
    pool.run(jobs).into_iter().collect()
}

/// Generates a family of traces that differ only in their seed (the
/// multi-seed shape used by robustness and perturbation sweeps), in
/// parallel, in `seeds` order.
///
/// # Errors
///
/// Returns the first worker panic as a [`JobPanic`] (the index is the
/// failing seed's position).
pub fn multi_seed_traces(
    model: &BenchmarkModel,
    base: InputSpec,
    seeds: &[u64],
    len: usize,
    pool: &Pool,
) -> Result<Vec<Trace>, JobPanic> {
    let requests: Vec<(InputSpec, usize)> = seeds
        .iter()
        .map(|&seed| (InputSpec { seed, ..base }, len))
        .collect();
    traces(model, &requests, pool)
}

/// Generates the model's training and testing traces concurrently — the
/// setup step every experiment cell starts with.
///
/// # Errors
///
/// Returns the first worker panic as a [`JobPanic`] (index 0 = train,
/// 1 = test).
pub fn train_test_traces(
    model: &BenchmarkModel,
    len: usize,
    pool: &Pool,
) -> Result<(Trace, Trace), JobPanic> {
    let mut out = traces(
        model,
        &[(model.training_input(), len), (model.testing_input(), len)],
        pool,
    )?
    .into_iter();
    let train = out.next().expect("two traces requested");
    let test = out.next().expect("two traces requested");
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn parallel_generation_matches_serial() {
        let model = suite::m88ksim();
        let requests = [
            (model.training_input(), 3_000),
            (model.testing_input(), 3_000),
            (InputSpec::new(99), 1_000),
        ];
        let serial: Vec<Trace> = requests
            .iter()
            .map(|&(input, len)| Executor::new(&model, input).generate(len))
            .collect();
        for workers in [1, 2, 4] {
            let par = traces(&model, &requests, &Pool::new(workers)).unwrap();
            assert_eq!(par, serial, "at {workers} workers");
        }
    }

    #[test]
    fn multi_seed_family_varies_only_by_seed() {
        let model = suite::perl();
        let pool = Pool::new(4);
        let family =
            multi_seed_traces(&model, model.training_input(), &[1, 2, 1], 2_000, &pool).unwrap();
        assert_eq!(family.len(), 3);
        assert_eq!(family[0], family[2], "same seed, same trace");
        assert_ne!(family[0], family[1], "different seed, different trace");
    }

    #[test]
    fn train_test_pair_matches_the_model_methods() {
        let model = suite::go();
        let (train, test) = train_test_traces(&model, 2_000, &Pool::new(2)).unwrap();
        assert_eq!(train, model.training_trace(2_000));
        assert_eq!(test, model.testing_trace(2_000));
    }
}
