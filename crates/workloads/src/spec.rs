//! Workload and input specifications.

/// Static + dynamic shape of one synthetic benchmark.
///
/// The static fields are matched to the paper's Table 1; the dynamic fields
/// control the executor's phase structure and are tuned so that the
/// *default-layout* miss rate and average Q size land in the right regime.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (Table 1 row).
    pub name: &'static str,
    /// Total number of procedures.
    pub proc_count: usize,
    /// Total text size in bytes.
    pub total_size: u64,
    /// Number of hot (popular) procedures.
    pub hot_count: usize,
    /// Total size of the hot procedures in bytes.
    pub hot_size: u64,
    /// Number of execution phases (overlapping windows over the hot set).
    pub phases: usize,
    /// Hot procedures actively used within one phase.
    pub phase_window: usize,
    /// Mean root invocations spent in a phase before moving on.
    pub phase_dwell: u32,
    /// Mean number of calls a phase driver makes per invocation.
    pub fanout: f64,
    /// Zipf exponent skewing callee choice within a phase window.
    pub skew: f64,
    /// Probability that any call targets a cold procedure instead of a hot
    /// one.
    pub cold_call_rate: f64,
    /// Probability that a hot leaf makes a nested call to a shared utility.
    pub nested_call_rate: f64,
    /// Seed for the (deterministic) program-construction RNG.
    pub build_seed: u64,
}

impl WorkloadSpec {
    /// Sanity-checks the parameters.
    ///
    /// # Panics
    ///
    /// Panics if counts or sizes are inconsistent (e.g. more hot procedures
    /// than procedures, hot size exceeding total size, an empty window).
    pub fn validate(&self) {
        assert!(
            self.proc_count >= 4,
            "need at least dispatcher + driver + 2"
        );
        assert!(self.hot_count >= 2 && self.hot_count < self.proc_count);
        assert!(self.hot_size < self.total_size);
        assert!(self.phases >= 1);
        assert!(self.phase_window >= 1);
        assert!(self.phase_dwell >= 1);
        assert!(self.fanout > 0.0);
        assert!((0.0..1.0).contains(&self.cold_call_rate));
        assert!((0.0..1.0).contains(&self.nested_call_rate));
    }
}

/// One program input: the executor's RNG seed plus behavioral deltas.
///
/// Two inputs of the same model share the call-graph *structure* but differ
/// in seed, phase scheduling, and callee skew — like running the same
/// binary on different data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputSpec {
    /// Executor RNG seed.
    pub seed: u64,
    /// Rotation applied to every phase window (hot-procedure indices shift
    /// by this amount), moving the hot working sets.
    pub phase_shift: usize,
    /// Multiplier on the mean phase dwell.
    pub dwell_factor: f64,
    /// Offset added to the callee-selection Zipf exponent.
    pub skew_delta: f64,
    /// Multiplier on the cold-call rate.
    pub cold_factor: f64,
}

impl InputSpec {
    /// A neutral input with the given seed.
    pub fn new(seed: u64) -> Self {
        InputSpec {
            seed,
            phase_shift: 0,
            dwell_factor: 1.0,
            skew_delta: 0.0,
            cold_factor: 1.0,
        }
    }
}

impl Default for InputSpec {
    fn default() -> Self {
        InputSpec::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            proc_count: 50,
            total_size: 200_000,
            hot_count: 10,
            hot_size: 40_000,
            phases: 3,
            phase_window: 4,
            phase_dwell: 100,
            fanout: 4.0,
            skew: 0.8,
            cold_call_rate: 0.01,
            nested_call_rate: 0.3,
            build_seed: 1,
        }
    }

    #[test]
    fn valid_spec_passes() {
        base().validate();
    }

    #[test]
    #[should_panic]
    fn rejects_hot_exceeding_total() {
        let mut s = base();
        s.hot_size = 300_000;
        s.validate();
    }

    #[test]
    #[should_panic]
    fn rejects_too_many_hot() {
        let mut s = base();
        s.hot_count = 50;
        s.validate();
    }

    #[test]
    fn input_default_is_neutral() {
        let i = InputSpec::default();
        assert_eq!(i.dwell_factor, 1.0);
        assert_eq!(i.phase_shift, 0);
        assert_eq!(InputSpec::new(5).seed, 5);
    }
}
