//! User-defined call-graph workloads.
//!
//! The [`suite`](crate::suite) models are parametric; this module exposes
//! the underlying idea — a weighted call graph with phase-modulated call
//! sites, executed by a stack-based random walk — as a direct building
//! API, so studies can construct exactly the temporal structure they want
//! (e.g. the paper's Figure 1 program, WCG-invisible sibling conflicts,
//! pathological phase patterns).
//!
//! # Example
//!
//! ```
//! use tempo_workloads::callgraph::CallGraphBuilder;
//!
//! // The paper's Figure 1: M calls X or Y (phase-dependent) and Z.
//! let mut b = CallGraphBuilder::new();
//! let m = b.procedure("M", 672);
//! let x = b.procedure("X", 672);
//! let y = b.procedure("Y", 672);
//! let z = b.procedure("Z", 672);
//! b.call_site(m, x, 1.0);
//! b.call_site(m, y, 1.0);
//! b.call_site(m, z, 0.25);
//! b.root(m);
//! // Phase 0 runs X, phase 1 runs Y (the paper's trace #2 shape).
//! b.phase(40, &[(m, x, 2.0), (m, y, 0.0)]);
//! b.phase(40, &[(m, x, 0.0), (m, y, 2.0)]);
//! let workload = b.build()?;
//! let trace = workload.trace(7, 500);
//! assert_eq!(trace.len(), 500);
//! trace.validate(workload.program()).unwrap();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempo_program::{ProcId, Program, ProgramError};
use tempo_trace::io::TraceIoError;
use tempo_trace::{Trace, TraceBuilder, TraceRecord, TraceSource};

/// One call site: `caller` invokes `callee` an average of `weight` times
/// per invocation of the caller.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Site {
    callee: ProcId,
    weight: f64,
}

/// One execution phase: a dwell (in root invocations) plus multiplicative
/// overrides of call-site weights.
#[derive(Debug, Clone, PartialEq)]
struct Phase {
    dwell: u32,
    /// `(caller, callee, multiplier)` — multiplies the matching site's
    /// weight while the phase is active.
    multipliers: Vec<(ProcId, ProcId, f64)>,
}

/// Builder for a [`CallGraphWorkload`].
#[derive(Debug, Clone, Default)]
pub struct CallGraphBuilder {
    procs: Vec<(String, u32)>,
    sites: Vec<Vec<Site>>,
    root: Option<ProcId>,
    phases: Vec<Phase>,
}

impl CallGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CallGraphBuilder::default()
    }

    /// Declares a procedure; returns its id.
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn procedure(&mut self, name: impl Into<String>, size: u32) -> ProcId {
        self.procs.push((name.into(), size));
        self.sites.push(Vec::new());
        ProcId::new(self.procs.len() as u32 - 1)
    }

    /// Adds a call site: `caller` invokes `callee` an average of `weight`
    /// times per invocation.
    ///
    /// # Panics
    ///
    /// Panics if either id is unknown, `caller == callee` (direct
    /// recursion is not modeled), or `weight` is negative or not finite.
    pub fn call_site(&mut self, caller: ProcId, callee: ProcId, weight: f64) -> &mut Self {
        assert!(caller.as_usize() < self.procs.len(), "unknown caller");
        assert!(callee.as_usize() < self.procs.len(), "unknown callee");
        assert_ne!(caller, callee, "direct recursion is not modeled");
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "weight must be finite and non-negative"
        );
        self.sites[caller.as_usize()].push(Site { callee, weight });
        self
    }

    /// Sets the root (the procedure the executor repeatedly invokes).
    pub fn root(&mut self, root: ProcId) -> &mut Self {
        self.root = Some(root);
        self
    }

    /// Appends a phase: for `dwell` root invocations, each `(caller,
    /// callee, multiplier)` entry scales the matching call site's weight.
    /// Phases cycle in declaration order; with no phases the base weights
    /// apply throughout.
    ///
    /// # Panics
    ///
    /// Panics if `dwell` is zero or a multiplier is negative/not finite.
    pub fn phase(&mut self, dwell: u32, multipliers: &[(ProcId, ProcId, f64)]) -> &mut Self {
        assert!(dwell > 0, "phase dwell must be positive");
        for &(_, _, m) in multipliers {
            assert!(
                m >= 0.0 && m.is_finite(),
                "multiplier must be finite and non-negative"
            );
        }
        self.phases.push(Phase {
            dwell,
            multipliers: multipliers.to_vec(),
        });
        self
    }

    /// Finalizes the workload.
    ///
    /// # Errors
    ///
    /// Returns an error if the program is invalid (no procedures, zero
    /// sizes, duplicate names) or no root was set.
    pub fn build(&self) -> Result<CallGraphWorkload, ProgramError> {
        let mut b = Program::builder();
        for (name, size) in &self.procs {
            b.procedure(name.clone(), *size);
        }
        let program = b.build()?;
        let root = self.root.ok_or(ProgramError::Empty)?;
        Ok(CallGraphWorkload {
            program,
            sites: self.sites.clone(),
            root,
            phases: self.phases.clone(),
        })
    }
}

/// An executable user-defined call-graph workload.
#[derive(Debug, Clone)]
pub struct CallGraphWorkload {
    program: Program,
    sites: Vec<Vec<Site>>,
    root: ProcId,
    phases: Vec<Phase>,
}

impl CallGraphWorkload {
    /// The synthesized program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The root procedure.
    pub fn root(&self) -> ProcId {
        self.root
    }

    /// Effective weight of a call site in a phase.
    fn weight_in_phase(&self, caller: ProcId, site: &Site, phase: Option<&Phase>) -> f64 {
        let mut w = site.weight;
        if let Some(p) = phase {
            for &(c, e, m) in &p.multipliers {
                if c == caller && e == site.callee {
                    w *= m;
                }
            }
        }
        w
    }

    /// Generates a trace of exactly `len` records with the given seed.
    ///
    /// The walk is depth-bounded at 32 frames; every transition (call and
    /// return) emits one record whose extent divides the procedure evenly
    /// among its segments.
    pub fn trace(&self, seed: u64, len: usize) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = TraceBuilder::with_capacity(&self.program, len + 64);
        let mut phase_idx = 0usize;
        let mut dwell_left = self.phases.first().map_or(0, |p| p.dwell);
        while out.len() < len {
            let phase = self.phases.get(phase_idx);
            self.invoke(self.root, phase, 0, &mut rng, &mut out, 0, len);
            if !self.phases.is_empty() {
                dwell_left = dwell_left.saturating_sub(1);
                if dwell_left == 0 {
                    phase_idx = (phase_idx + 1) % self.phases.len();
                    dwell_left = self.phases[phase_idx].dwell;
                }
            }
        }
        Trace::from_records(out.build().into_iter().take(len).collect())
    }

    /// Lazily generates the same trace as [`trace`](Self::trace), as a
    /// [`TraceSource`] buffering one root invocation at a time.
    pub fn trace_source(&self, seed: u64, len: usize) -> CallGraphSource<'_> {
        CallGraphSource {
            workload: self,
            rng: StdRng::seed_from_u64(seed),
            phase_idx: 0,
            dwell_left: self.phases.first().map_or(0, |p| p.dwell),
            pending: VecDeque::new(),
            generated: 0,
            remaining: len as u64,
            total: len as u64,
        }
    }

    /// One invocation subtree. `base` is the number of records already
    /// emitted into earlier builders of the same logical trace, so the
    /// `base + out.len() >= len` cutoff (and therefore every RNG draw)
    /// is identical whether the walk writes into one whole-trace builder
    /// (`base == 0`) or into per-invocation buffers of a streaming source.
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    #[allow(clippy::too_many_arguments)] // internal walk state, not public API
    fn invoke(
        &self,
        proc: ProcId,
        phase: Option<&Phase>,
        depth: u32,
        rng: &mut StdRng,
        out: &mut TraceBuilder<'_>,
        base: usize,
        len: usize,
    ) {
        if base + out.len() >= len {
            return;
        }
        // Decide the fired calls first so segment extents can be sized.
        let mut fired: Vec<ProcId> = Vec::new();
        if depth < 32 {
            for site in &self.sites[proc.as_usize()] {
                let w = self.weight_in_phase(proc, site, phase);
                let mut count = w.floor() as u32;
                if rng.gen_bool((w - f64::from(count)).clamp(0.0, 1.0)) {
                    count += 1;
                }
                for _ in 0..count {
                    fired.push(site.callee);
                }
            }
        }
        let segments = fired.len() as u32 + 1;
        let seg = (self.program.size_of(proc) / segments).max(1);
        out.transition(proc, seg);
        for callee in fired {
            if base + out.len() >= len {
                return;
            }
            self.invoke(callee, phase, depth + 1, rng, out, base, len);
            out.transition(proc, seg);
        }
    }
}

/// A lazy [`TraceSource`] over a [`CallGraphWorkload`], from
/// [`CallGraphWorkload::trace_source`].
///
/// Yields the exact record sequence [`CallGraphWorkload::trace`] would
/// materialize for the same seed and length, while holding only the
/// current root invocation in memory.
#[derive(Debug)]
pub struct CallGraphSource<'w> {
    workload: &'w CallGraphWorkload,
    rng: StdRng,
    phase_idx: usize,
    dwell_left: u32,
    /// Records of the current root invocation not yet handed out.
    pending: VecDeque<TraceRecord>,
    /// Records generated so far, yielded or pending — the materialized
    /// walk's `out.len()`, fed back as `invoke`'s `base`.
    generated: usize,
    remaining: u64,
    total: u64,
}

impl TraceSource for CallGraphSource<'_> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        while self.pending.is_empty() {
            let w = self.workload;
            let phase = w.phases.get(self.phase_idx);
            // `generated < len` here (remaining > 0 and nothing pending),
            // so the invocation emits at least one record.
            let mut out = TraceBuilder::new(&w.program);
            w.invoke(
                w.root,
                phase,
                0,
                &mut self.rng,
                &mut out,
                self.generated,
                usize::try_from(self.total).unwrap_or(usize::MAX),
            );
            if !w.phases.is_empty() {
                self.dwell_left = self.dwell_left.saturating_sub(1);
                if self.dwell_left == 0 {
                    self.phase_idx = (self.phase_idx + 1) % w.phases.len();
                    self.dwell_left = w.phases[self.phase_idx].dwell;
                }
            }
            self.generated += out.len();
            self.pending.extend(out.build());
        }
        self.remaining -= 1;
        Ok(self.pending.pop_front())
    }

    fn expected_records(&self) -> Option<u64> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_cache::CacheConfig;
    use tempo_trg::{PopularitySelector, Profiler};

    fn figure1() -> CallGraphWorkload {
        let mut b = CallGraphBuilder::new();
        let m = b.procedure("M", 672);
        let x = b.procedure("X", 672);
        let y = b.procedure("Y", 672);
        let z = b.procedure("Z", 672);
        b.call_site(m, x, 1.0);
        b.call_site(m, y, 1.0);
        b.call_site(m, z, 0.25);
        b.root(m);
        b.phase(40, &[(m, x, 2.0), (m, y, 0.0)]);
        b.phase(40, &[(m, x, 0.0), (m, y, 2.0)]);
        b.build().unwrap()
    }

    #[test]
    fn builds_valid_program_and_traces() {
        let w = figure1();
        assert_eq!(w.program().len(), 4);
        assert_eq!(w.root(), ProcId::new(0));
        let t = w.trace(1, 1_000);
        assert_eq!(t.len(), 1_000);
        t.validate(w.program()).unwrap();
    }

    #[test]
    fn source_yields_exactly_the_materialized_trace() {
        let w = figure1();
        for seed in [2u64, 7, 13] {
            let materialized = w.trace(seed, 1_500);
            let mut source = w.trace_source(seed, 1_500);
            assert_eq!(source.expected_records(), Some(1_500));
            let mut streamed = Trace::new();
            tempo_trace::pump(&mut source, &mut streamed).unwrap();
            assert_eq!(streamed, materialized, "seed {seed}");
            assert!(source.try_next().unwrap().is_none());
        }
    }

    #[test]
    fn traces_are_seed_deterministic() {
        let w = figure1();
        assert_eq!(w.trace(5, 500), w.trace(5, 500));
        assert_ne!(w.trace(5, 500), w.trace(6, 500));
    }

    #[test]
    fn phases_suppress_and_boost_callees() {
        let w = figure1();
        let t = w.trace(2, 4_000);
        let counts = t.reference_counts(w.program());
        // Both X and Y run (phases alternate), Z runs but rarely.
        assert!(counts[1] > 0 && counts[2] > 0);
        assert!(counts[3] > 0);
        assert!(counts[3] < counts[1] / 2);
        // Phase structure: X and Y never interleave, so their TRG edge is
        // (almost) absent while both keep strong edges to M.
        let prof = Profiler::new(w.program(), CacheConfig::direct_mapped_8k())
            .popularity(PopularitySelector::all())
            .profile(&t);
        let xy = prof.trg_select.weight(1, 2);
        let mx = prof.trg_select.weight(0, 1);
        assert!(xy < mx / 20.0, "xy {xy} mx {mx}");
        assert_eq!(prof.wcg.weight(1, 2), 0.0, "siblings never adjacent");
    }

    #[test]
    fn no_phases_means_stationary_mix() {
        let mut b = CallGraphBuilder::new();
        let root = b.procedure("r", 256);
        let a = b.procedure("a", 256);
        let c = b.procedure("c", 256);
        b.call_site(root, a, 2.0);
        b.call_site(root, c, 1.0);
        b.root(root);
        let w = b.build().unwrap();
        let t = w.trace(3, 6_000);
        let counts = t.reference_counts(w.program());
        let ratio = counts[a.as_usize()] as f64 / counts[c.as_usize()] as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn nested_graphs_respect_depth() {
        // A deep chain; the depth cap keeps the walk finite.
        let mut b = CallGraphBuilder::new();
        let ids: Vec<ProcId> = (0..40).map(|i| b.procedure(format!("p{i}"), 64)).collect();
        for w in ids.windows(2) {
            b.call_site(w[0], w[1], 1.0);
        }
        b.root(ids[0]);
        let w = b.build().unwrap();
        let t = w.trace(1, 2_000);
        t.validate(w.program()).unwrap();
        let counts = t.reference_counts(w.program());
        assert_eq!(counts[33], 0, "depth cap at 32 frames");
    }

    #[test]
    fn build_requires_root() {
        let mut b = CallGraphBuilder::new();
        b.procedure("only", 64);
        assert!(b.build().is_err());
    }

    #[test]
    #[should_panic(expected = "direct recursion")]
    fn rejects_self_call() {
        let mut b = CallGraphBuilder::new();
        let p = b.procedure("p", 64);
        b.call_site(p, p, 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown callee")]
    fn rejects_unknown_ids() {
        let mut b = CallGraphBuilder::new();
        let p = b.procedure("p", 64);
        b.call_site(p, ProcId::new(9), 1.0);
    }
}
