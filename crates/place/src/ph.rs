//! The Pettis–Hansen procedure-placement algorithm (§2 of the paper).
//!
//! PH greedily merges the two call-graph nodes joined by the heaviest edge.
//! Each node carries a *chain* (ordered list) of procedures; merging
//! combines the two chains in one of four ways (`AB`, `AB'`, `A'B`,
//! `A'B'`, where `'` is reversal), choosing the combination that minimizes
//! the byte distance between the endpoints of the heaviest original edge
//! crossing the chains. The final layout concatenates the surviving chains
//! and packs procedures with no gaps.

use std::collections::HashMap;

use tempo_program::{Layout, ProcId, Program};

use crate::budget::{BudgetExhausted, BudgetMeter};
use crate::{PlacementAlgorithm, PlacementContext};

/// The Pettis–Hansen placement algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PettisHansen;

impl PettisHansen {
    /// Creates the algorithm.
    pub fn new() -> Self {
        PettisHansen
    }

    /// Runs the chain-merging phase, returning the final procedure order.
    /// Ignores any budget attached to the context.
    pub fn place_order(&self, ctx: &PlacementContext<'_>) -> Vec<ProcId> {
        match self.order_impl(ctx, None) {
            Ok(order) => order,
            Err(_) => unreachable!("unbudgeted merge loop cannot exhaust"),
        }
    }

    /// Budget-aware chain merging: honours a meter attached via
    /// [`PlacementContext::with_budget`], charging one work unit per chain
    /// endpoint considered by a merge.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the budget trips mid-merge.
    pub fn try_place_order(
        &self,
        ctx: &PlacementContext<'_>,
    ) -> Result<Vec<ProcId>, BudgetExhausted> {
        self.order_impl(ctx, ctx.budget())
    }

    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    fn order_impl(
        &self,
        ctx: &PlacementContext<'_>,
        budget: Option<&BudgetMeter>,
    ) -> Result<Vec<ProcId>, BudgetExhausted> {
        let program = ctx.program;
        let orig = &ctx.profile.wcg;
        let mut working = orig.clone();

        let mut node_of: Vec<u32> = (0..program.len() as u32).collect();
        let mut chains: HashMap<u32, Vec<ProcId>> =
            program.ids().map(|id| (id.index(), vec![id])).collect();

        while let Some(e) = working.heaviest_edge() {
            let (u, v) = (e.a, e.b);
            let a = chains.remove(&u).expect("u is live");
            let b = chains.remove(&v).expect("v is live");
            if let Some(meter) = budget {
                // Cost of this merge ≈ endpoints examined across both
                // chains; charged before the work so exhaustion stops the
                // merge from running.
                meter.charge((a.len() + b.len()) as u64)?;
            }

            // Heaviest original edge crossing the two chains.
            let mut heavy: Option<(f64, ProcId, ProcId)> = None;
            for &p in &a {
                for q in orig.neighbors(p.index()) {
                    if node_of[q as usize] != v {
                        continue;
                    }
                    let w = orig.weight(p.index(), q);
                    let key = (w, std::cmp::Reverse((p.index(), q)));
                    let better = match &heavy {
                        None => true,
                        Some((hw, hp, hq)) => {
                            key > (*hw, std::cmp::Reverse((hp.index(), hq.index())))
                        }
                    };
                    if better {
                        heavy = Some((w, p, ProcId::new(q)));
                    }
                }
            }
            let (_, hp, hq) = heavy.expect("working edge implies an original cross edge");

            let combined = best_combination(program, &a, &b, hp, hq);
            for &pid in &b {
                node_of[pid.as_usize()] = u;
            }
            chains.insert(u, combined);
            working.merge_nodes(u, v);
        }

        // Concatenate surviving chains: heaviest (by dynamic count) first,
        // ties by smallest member id; never-referenced procedures land at
        // the end in id order.
        let mut remaining: Vec<(u32, Vec<ProcId>)> = chains.into_iter().collect();
        remaining.sort_by_key(|(rep, chain)| {
            let count: u64 = chain
                .iter()
                .map(|id| ctx.profile.popular.count_of(*id))
                .sum();
            (std::cmp::Reverse(count), *rep)
        });
        Ok(remaining.into_iter().flat_map(|(_, c)| c).collect())
    }
}

/// Combines chains `a` and `b` as `AB`, `AB'`, `A'B`, or `A'B'`, choosing
/// the variant that minimizes the byte distance between procedures `p ∈ a`
/// and `q ∈ b` (ties resolved in the order listed).
pub(crate) fn best_combination(
    program: &Program,
    a: &[ProcId],
    b: &[ProcId],
    p: ProcId,
    q: ProcId,
) -> Vec<ProcId> {
    let forward_a: Vec<ProcId> = a.to_vec();
    let reverse_a: Vec<ProcId> = a.iter().rev().copied().collect();
    let forward_b: Vec<ProcId> = b.to_vec();
    let reverse_b: Vec<ProcId> = b.iter().rev().copied().collect();
    let candidates = [
        [&forward_a, &forward_b],
        [&forward_a, &reverse_b],
        [&reverse_a, &forward_b],
        [&reverse_a, &reverse_b],
    ];

    let mut best: Option<(u64, Vec<ProcId>)> = None;
    for [ca, cb] in candidates {
        let combined: Vec<ProcId> = ca.iter().chain(cb.iter()).copied().collect();
        let d = distance(program, &combined, p, q);
        if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
            best = Some((d, combined));
        }
    }
    best.expect("four candidates always exist").1
}

/// Byte distance between the end of the earlier and the start of the later
/// of two procedures in a packed chain.
fn distance(program: &Program, chain: &[ProcId], p: ProcId, q: ProcId) -> u64 {
    let mut pos = 0u64;
    let mut pos_p = None;
    let mut pos_q = None;
    for &id in chain {
        if id == p {
            pos_p = Some((pos, pos + u64::from(program.size_of(id))));
        }
        if id == q {
            pos_q = Some((pos, pos + u64::from(program.size_of(id))));
        }
        pos += u64::from(program.size_of(id));
    }
    let (ps, pe) = pos_p.expect("p is in the chain");
    let (qs, qe) = pos_q.expect("q is in the chain");
    if pe <= qs {
        qs - pe
    } else {
        ps - qe
    }
}

impl PlacementAlgorithm for PettisHansen {
    fn name(&self) -> &str {
        "PH"
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Layout {
        let order = self.place_order(ctx);
        Layout::from_order(ctx.program, &order).expect("chain concatenation is a permutation")
    }

    fn try_place(&self, ctx: &PlacementContext<'_>) -> Result<Layout, BudgetExhausted> {
        let order = self.try_place_order(ctx)?;
        Ok(Layout::from_order(ctx.program, &order).expect("chain concatenation is a permutation"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_cache::{simulate, CacheConfig};
    use tempo_trace::Trace;
    use tempo_trg::{PopularitySelector, Profiler};

    fn profile(program: &Program, trace: &Trace) -> tempo_trg::ProfileData {
        Profiler::new(program, CacheConfig::direct_mapped_8k())
            .popularity(PopularitySelector::all())
            .profile(trace)
    }

    #[test]
    fn heavy_pair_becomes_adjacent() {
        let p = Program::builder()
            .procedure("a", 4096)
            .procedure("pad1", 2048)
            .procedure("pad2", 2048)
            .procedure("b", 4096)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut refs = Vec::new();
        for _ in 0..50 {
            refs.extend([ids[0], ids[3]]);
        }
        refs.extend([ids[1], ids[2]]);
        let t = Trace::from_full_records(&p, refs);
        let prof = profile(&p, &t);
        let ctx = PlacementContext::new(&p, &prof);
        let order = PettisHansen::new().place_order(&ctx);
        let pos = |id: ProcId| order.iter().position(|&x| x == id).unwrap();
        assert_eq!(
            pos(ids[3]).abs_diff(pos(ids[0])),
            1,
            "a and b must be adjacent"
        );
        // The hot chain leads the layout.
        assert!(pos(ids[0]).min(pos(ids[3])) == 0);
    }

    #[test]
    fn reduces_conflicts_vs_source_order() {
        let p = Program::builder()
            .procedure("a", 4096)
            .procedure("pad", 4096)
            .procedure("b", 4096)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut refs = Vec::new();
        for _ in 0..50 {
            refs.extend([ids[0], ids[2]]);
        }
        let t = Trace::from_full_records(&p, refs);
        let prof = profile(&p, &t);
        let ctx = PlacementContext::new(&p, &prof);
        let cache = CacheConfig::direct_mapped_8k();
        let ph = PettisHansen::new().place(&ctx);
        ph.validate(&p).unwrap();
        let sp = simulate(&p, &ph, &t, cache);
        let sd = simulate(&p, &Layout::source_order(&p), &t, cache);
        assert!(
            sp.misses < sd.misses / 10,
            "ph {} default {}",
            sp.misses,
            sd.misses
        );
    }

    #[test]
    fn covers_all_procedures_including_unreferenced() {
        let p = Program::builder()
            .procedure("a", 100)
            .procedure("never", 100)
            .procedure("b", 100)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let t = Trace::from_full_records(&p, [ids[0], ids[2], ids[0]]);
        let prof = profile(&p, &t);
        let ctx = PlacementContext::new(&p, &prof);
        let layout = PettisHansen::new().place(&ctx);
        layout.validate(&p).unwrap();
        assert_eq!(layout.padding(&p), 0, "PH packs with no gaps");
        // The unreferenced procedure is pushed behind the hot chain.
        assert!(layout.addr(ids[1]) > layout.addr(ids[0]));
    }

    #[test]
    fn chain_combination_minimizes_hot_distance() {
        // Chains [a, b] and [c, d] with the heavy edge between b and d:
        // best combination is AB' = a b d c (distance 0 between b and d).
        let p = Program::builder()
            .procedure("a", 100)
            .procedure("b", 100)
            .procedure("c", 100)
            .procedure("d", 100)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let combined = best_combination(&p, &[ids[0], ids[1]], &[ids[2], ids[3]], ids[1], ids[3]);
        assert_eq!(combined, vec![ids[0], ids[1], ids[3], ids[2]]);
    }

    #[test]
    fn distance_is_end_to_start() {
        let p = Program::builder()
            .procedure("a", 100)
            .procedure("b", 50)
            .procedure("c", 100)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let chain = vec![ids[0], ids[1], ids[2]];
        assert_eq!(distance(&p, &chain, ids[0], ids[2]), 50);
        assert_eq!(distance(&p, &chain, ids[2], ids[0]), 50);
        assert_eq!(distance(&p, &chain, ids[0], ids[1]), 0);
    }

    #[test]
    fn deterministic() {
        let p = Program::builder()
            .procedure("a", 300)
            .procedure("b", 400)
            .procedure("c", 500)
            .procedure("d", 600)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut refs = Vec::new();
        for i in 0..80 {
            refs.extend([ids[i % 4], ids[(i + 1) % 4]]);
        }
        let t = Trace::from_full_records(&p, refs);
        let prof = profile(&p, &t);
        let ctx = PlacementContext::new(&p, &prof);
        assert_eq!(
            PettisHansen::new().place(&ctx),
            PettisHansen::new().place(&ctx)
        );
    }
}
