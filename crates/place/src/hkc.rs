//! HKC-style cache-line-coloring placement (Hashemi, Kaeli & Calder,
//! PLDI 1997), as characterized in §5 of the paper.
//!
//! HKC extends Pettis–Hansen with knowledge of procedure sizes and the
//! cache geometry: it "records the set of cache lines occupied by each
//! procedure during placement, and it tries to prevent overlap between a
//! procedure and any of its immediate neighbors in the call graph" — but it
//! uses **no temporal information** beyond the weighted call graph.
//!
//! Our implementation realizes that characterization with the same
//! merge-and-scan machinery as GBSC: greedy selection over the (popular)
//! WCG, and for each merge a scan of all cache-relative offsets, costed by
//! *procedure-grain* WCG weights over overlapping lines. Differences from
//! the published HKC are deliberate simplifications (we do not re-color
//! already-placed procedures); DESIGN.md records this fidelity note. The
//! essential property for reproducing the paper's comparison holds: HKC
//! avoids caller/callee overlap but cannot see sibling conflicts, while
//! GBSC sees both.

use tempo_program::{Layout, ProcId};
use tempo_trg::WeightedGraph;

use crate::gbsc::PlacementTuples;
use crate::{PlacementAlgorithm, PlacementContext};

/// The cache-line-coloring placement algorithm (HKC).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheColoring;

impl CacheColoring {
    /// Creates the algorithm.
    pub fn new() -> Self {
        CacheColoring
    }

    /// Runs only the merging phase, returning cache-relative alignments.
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn place_tuples(&self, ctx: &PlacementContext<'_>) -> PlacementTuples {
        let program = ctx.program;
        let profile = ctx.profile;
        let cache = ctx.cache();
        let lines = cache.lines();
        let line_size = cache.line_size();

        // Restrict the WCG to popular procedures: unpopular ones are placed
        // as gap fillers, exactly as in GBSC.
        let mut wcg_popular = WeightedGraph::new();
        for e in profile.wcg.edges() {
            let (a, b) = (ProcId::new(e.a), ProcId::new(e.b));
            if profile.popular.is_popular(a) && profile.popular.is_popular(b) {
                wcg_popular.add_weight(e.a, e.b, e.w);
            }
        }

        // Greedy merge over the WCG; cost = WCG weight summed over every
        // cache line where two cross-node procedures would overlap.
        let mut working = wcg_popular.clone();
        let mut node_of: Vec<u32> = (0..program.len() as u32).collect();
        let mut members: std::collections::HashMap<u32, Vec<ProcId>> = profile
            .popular
            .iter()
            .map(|id| (id.index(), vec![id]))
            .collect();
        let mut offsets = vec![0u32; program.len()];
        let proc_nlines =
            |id: ProcId| -> u32 { program.size_of(id).div_ceil(line_size).min(lines) };

        while let Some(e) = working.heaviest_edge() {
            let (u, v) = (e.a, e.b);
            // Primary cost: weighted overlap with WCG neighbors across the
            // two nodes.
            let mut acc = vec![0.0f64; lines as usize];
            for &pv in &members[&v] {
                for nbr in wcg_popular.neighbors(pv.index()) {
                    if node_of[nbr as usize] != u {
                        continue;
                    }
                    let pu = ProcId::new(nbr);
                    let w = wcg_popular.weight(pv.index(), nbr);
                    for ka in 0..proc_nlines(pu) {
                        let la = (offsets[pu.as_usize()] + ka) % lines;
                        for kb in 0..proc_nlines(pv) {
                            let lb = (offsets[pv.as_usize()] + kb) % lines;
                            acc[((la + lines - lb) % lines) as usize] += w;
                        }
                    }
                }
            }
            // Secondary cost (the "coloring" part of HKC): among alignments
            // with equal neighbor cost, prefer unused cache lines — count
            // line-slot collisions against *every* procedure of node u.
            let mut occupancy = vec![0u32; lines as usize];
            for &pu in &members[&u] {
                for ka in 0..proc_nlines(pu) {
                    occupancy[((offsets[pu.as_usize()] + ka) % lines) as usize] += 1;
                }
            }
            let mut fill = vec![0u64; lines as usize];
            for &pv in &members[&v] {
                for kb in 0..proc_nlines(pv) {
                    let lb = (offsets[pv.as_usize()] + kb) % lines;
                    for (la, &occ) in occupancy.iter().enumerate() {
                        if occ > 0 {
                            fill[(la as u32 + lines - lb) as usize % lines as usize] +=
                                u64::from(occ);
                        }
                    }
                }
            }
            let mut best = 0usize;
            for i in 1..acc.len() {
                if (acc[i], fill[i]) < (acc[best], fill[best]) {
                    best = i;
                }
            }
            let moved = members.remove(&v).expect("v is live");
            for &p in &moved {
                offsets[p.as_usize()] = (offsets[p.as_usize()] + best as u32) % lines;
                node_of[p.as_usize()] = u;
            }
            members.get_mut(&u).expect("u is live").extend(moved);
            working.merge_nodes(u, v);
        }

        let mut tuples = PlacementTuples::new(program.len(), lines);
        for id in profile.popular.iter() {
            tuples.set_offset(id, offsets[id.as_usize()]);
        }
        tuples
    }
}

impl PlacementAlgorithm for CacheColoring {
    fn name(&self) -> &str {
        "HKC"
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Layout {
        self.place_tuples(ctx).into_layout(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_cache::{simulate, CacheConfig};
    use tempo_program::Program;
    use tempo_trace::Trace;
    use tempo_trg::{PopularitySelector, Profiler};

    fn profile(program: &Program, trace: &Trace, cache: CacheConfig) -> tempo_trg::ProfileData {
        Profiler::new(program, cache)
            .popularity(PopularitySelector::all())
            .profile(trace)
    }

    #[test]
    fn separates_caller_and_callee() {
        let p = Program::builder()
            .procedure("a", 4096)
            .procedure("pad", 4096)
            .procedure("b", 4096)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut refs = Vec::new();
        for _ in 0..50 {
            refs.extend([ids[0], ids[2]]);
        }
        let t = Trace::from_full_records(&p, refs);
        let cache = CacheConfig::direct_mapped_8k();
        let prof = profile(&p, &t, cache);
        let ctx = PlacementContext::new(&p, &prof);
        let layout = CacheColoring::new().place(&ctx);
        layout.validate(&p).unwrap();
        let s = simulate(&p, &layout, &t, cache);
        assert_eq!(s.misses, 256, "only cold misses for a/b");
    }

    #[test]
    fn blind_to_sibling_conflicts_that_gbsc_sees() {
        // M calls X then Y alternately; X and Y are siblings with no WCG
        // edge. With a cache big enough for two of the three but not all
        // three, HKC may overlap X and Y even though they interleave.
        // We assert only what must hold: HKC avoids caller/callee overlap.
        let p = Program::builder()
            .procedure("m", 680)
            .procedure("x", 680)
            .procedure("y", 680)
            .chunk_size(1024)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut refs = Vec::new();
        for _ in 0..40 {
            refs.extend([ids[0], ids[1], ids[0], ids[2]]);
        }
        let t = Trace::from_full_records(&p, refs);
        let cache = CacheConfig::direct_mapped(2048).unwrap();
        let prof = profile(&p, &t, cache);
        assert_eq!(prof.wcg.weight(1, 2), 0.0, "siblings have no WCG edge");
        let ctx = PlacementContext::new(&p, &prof);
        let tuples = CacheColoring::new().place_tuples(&ctx);
        let lines = |id: ProcId| -> Vec<u32> {
            let off = tuples.offset(id).unwrap();
            (0..680u32.div_ceil(32)).map(|k| (off + k) % 64).collect()
        };
        let overlap = |a: &[u32], b: &[u32]| a.iter().any(|l| b.contains(l));
        assert!(!overlap(&lines(ids[0]), &lines(ids[1])));
        assert!(!overlap(&lines(ids[0]), &lines(ids[2])));
    }

    #[test]
    fn popular_filter_applies() {
        let p = Program::builder()
            .procedure("hot1", 512)
            .procedure("hot2", 512)
            .procedure("cold", 512)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut refs = Vec::new();
        for _ in 0..50 {
            refs.extend([ids[0], ids[1]]);
        }
        refs.push(ids[2]);
        let t = Trace::from_full_records(&p, refs);
        let cache = CacheConfig::direct_mapped_8k();
        let prof = Profiler::new(&p, cache)
            .popularity(PopularitySelector::coverage(0.99).with_min_count(2))
            .profile(&t);
        let ctx = PlacementContext::new(&p, &prof);
        let tuples = CacheColoring::new().place_tuples(&ctx);
        assert_eq!(tuples.aligned_count(), 2);
        assert!(tuples.offset(ids[2]).is_none());
        let layout = CacheColoring::new().place(&ctx);
        layout.validate(&p).unwrap();
    }

    #[test]
    fn deterministic() {
        let p = Program::builder()
            .procedure("a", 300)
            .procedure("b", 400)
            .procedure("c", 500)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut refs = Vec::new();
        for i in 0..60 {
            refs.extend([ids[i % 3], ids[(i + 1) % 3]]);
        }
        let t = Trace::from_full_records(&p, refs);
        let cache = CacheConfig::direct_mapped_8k();
        let prof = profile(&p, &t, cache);
        let ctx = PlacementContext::new(&p, &prof);
        assert_eq!(
            CacheColoring::new().place(&ctx),
            CacheColoring::new().place(&ctx)
        );
    }
}
