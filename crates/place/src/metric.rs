//! Placement-wide conflict metrics (§3 and Figure 6 of the paper).
//!
//! A *conflict metric* estimates, for a complete layout, how many cache
//! conflict misses it will cause. The paper's Figure 6 shows that the
//! TRG-based metric correlates linearly with simulated misses while a
//! WCG-based metric does not; [`trg_conflict_cost`] and
//! [`wcg_conflict_cost`] reproduce both sides of that figure.

use tempo_cache::CacheConfig;
use tempo_program::{ChunkId, Chunks, Layout, ProcId, Program};
use tempo_trg::WeightedGraph;

/// One chunk resident on a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineOccupant {
    /// The resident chunk.
    pub chunk: ChunkId,
    /// The procedure owning the chunk.
    pub owner: ProcId,
}

/// Per-cache-line chunk occupancy of a layout: `occupancy[l]` lists every
/// chunk at least one byte of which maps to cache line `l`.
///
/// Each chunk appears **at most once per line**: a chunk spanning more
/// lines than the cache has wraps around and re-touches lines it already
/// occupies, which must not double-count it (a block cannot conflict with
/// itself). The iteration is capped at `cache.lines()` positions per
/// chunk, which visits every distinct line exactly once.
#[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
pub fn chunk_occupancy(
    program: &Program,
    layout: &Layout,
    cache: CacheConfig,
) -> Vec<Vec<LineOccupant>> {
    chunk_occupancy_covered(program, layout, cache)
}

/// Like [`chunk_occupancy`], but tolerates layouts that cover only a
/// prefix of the program's procedure ids: chunks owned by uncovered
/// procedures are simply absent from the occupancy. On a full layout the
/// two functions are identical; on a truncated one this lets downstream
/// consumers (the conflict predictor) still see pressure data for the
/// covered subset instead of bailing out entirely.
#[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
pub fn chunk_occupancy_covered(
    program: &Program,
    layout: &Layout,
    cache: CacheConfig,
) -> Vec<Vec<LineOccupant>> {
    let lines = cache.lines();
    let mut occupancy: Vec<Vec<LineOccupant>> = vec![Vec::new(); lines as usize];
    for info in Chunks::new(program) {
        if info.owner.as_usize() >= layout.len() {
            continue;
        }
        let addr = layout.addr(info.owner) + u64::from(info.offset);
        let nlines = cache.lines_touched(addr, info.len).min(u64::from(lines)) as u32;
        let first = cache.cache_line_of_addr(addr);
        for k in 0..nlines {
            occupancy[((first + k) % lines) as usize].push(LineOccupant {
                chunk: info.id,
                owner: info.owner,
            });
        }
    }
    occupancy
}

/// Sum over every cache line of the pairwise `TRG_place` weights of the
/// chunks co-resident on that line — the paper's conflict metric evaluated
/// on a whole placement.
///
/// A chunk pair overlapping on `m` lines contributes `m × W(a, b)`,
/// matching the per-line accumulation of `merge_nodes` (Figure 4).
pub fn trg_conflict_cost(
    program: &Program,
    layout: &Layout,
    trg_place: &WeightedGraph,
    cache: CacheConfig,
) -> f64 {
    let occupancy: Vec<Vec<u32>> = chunk_occupancy(program, layout, cache)
        .iter()
        .map(|line| line.iter().map(|o| o.chunk.index()).collect())
        .collect();
    pairwise_cost(&occupancy, trg_place)
}

/// Sum over every cache line of the pairwise **WCG** weights of the
/// procedures co-resident on that line — the "call-graph only" metric the
/// bottom half of Figure 6 shows to be a poor predictor.
#[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
pub fn wcg_conflict_cost(
    program: &Program,
    layout: &Layout,
    wcg: &WeightedGraph,
    cache: CacheConfig,
) -> f64 {
    let lines = cache.lines() as usize;
    let mut occupancy: Vec<Vec<u32>> = vec![Vec::new(); lines];
    for id in program.ids() {
        let addr = layout.addr(id);
        let nlines = cache
            .lines_touched(addr, program.size_of(id))
            .min(lines as u64);
        let first = cache.cache_line_of_addr(addr);
        for k in 0..nlines as u32 {
            occupancy[((first + k) % lines as u32) as usize].push(id.index());
        }
    }
    pairwise_cost(&occupancy, wcg)
}

/// Sums the pairwise weights of each line's co-residents with a *pinned*
/// accumulation order: occupants are sorted per line before the `i < j`
/// sweep, so the `f64` sum is bit-identical however the occupancy vectors
/// were assembled. Figure-6 CSVs must stay byte-identical across `--jobs`
/// values and machines (the PR 3 determinism contract, DESIGN.md §9), and
/// float addition does not commute in the last ULP.
fn pairwise_cost(occupancy: &[Vec<u32>], graph: &WeightedGraph) -> f64 {
    let mut cost = 0.0;
    let mut sorted: Vec<u32> = Vec::new();
    for line in occupancy {
        sorted.clear();
        sorted.extend_from_slice(line);
        sorted.sort_unstable();
        for i in 0..sorted.len() {
            for j in (i + 1)..sorted.len() {
                cost += graph.weight(sorted[i], sorted[j]);
            }
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_cache::simulate;
    use tempo_program::ProcId;
    use tempo_trace::Trace;
    use tempo_trg::{PopularitySelector, Profiler};

    fn setup() -> (Program, Trace, tempo_trg::ProfileData) {
        let program = Program::builder()
            .procedure("a", 4096)
            .procedure("b", 4096)
            .procedure("c", 4096)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = program.ids().collect();
        let mut refs = Vec::new();
        for _ in 0..50 {
            refs.extend([ids[0], ids[2]]);
        }
        let trace = Trace::from_full_records(&program, refs);
        let profile = Profiler::new(&program, CacheConfig::direct_mapped_8k())
            .popularity(PopularitySelector::all())
            .profile(&trace);
        (program, trace, profile)
    }

    #[test]
    fn overlapping_hot_pair_costs_more() {
        let (program, _, profile) = setup();
        let cache = CacheConfig::direct_mapped_8k();
        // Source order: a and c overlap (both in the same 4 KB half mod 8 KB).
        let bad = Layout::source_order(&program);
        // a, c adjacent: no overlap.
        let good = Layout::from_order(&program, &[ProcId::new(0), ProcId::new(2), ProcId::new(1)])
            .unwrap();
        let cost_bad = trg_conflict_cost(&program, &bad, &profile.trg_place, cache);
        let cost_good = trg_conflict_cost(&program, &good, &profile.trg_place, cache);
        assert!(cost_bad > 0.0);
        assert_eq!(cost_good, 0.0);
    }

    #[test]
    fn metric_tracks_misses_monotonically_here() {
        let (program, trace, profile) = setup();
        let cache = CacheConfig::direct_mapped_8k();
        let bad = Layout::source_order(&program);
        let good = Layout::from_order(&program, &[ProcId::new(0), ProcId::new(2), ProcId::new(1)])
            .unwrap();
        let (cb, cg) = (
            trg_conflict_cost(&program, &bad, &profile.trg_place, cache),
            trg_conflict_cost(&program, &good, &profile.trg_place, cache),
        );
        let (mb, mg) = (
            simulate(&program, &bad, &trace, cache).misses,
            simulate(&program, &good, &trace, cache).misses,
        );
        assert!(cb > cg);
        assert!(mb > mg);
    }

    #[test]
    fn wcg_cost_counts_caller_callee_overlap_only() {
        let (program, _, profile) = setup();
        let cache = CacheConfig::direct_mapped_8k();
        let bad = Layout::source_order(&program);
        let cost = wcg_conflict_cost(&program, &bad, &profile.wcg, cache);
        assert!(cost > 0.0, "a and c are WCG neighbors and overlap");
        // Overlap b with a instead: b has no WCG edge to anyone except via
        // trace adjacency (none here: b never runs), so cost 0.
        let overlap_b = Layout::from_addresses(vec![0, 8192, 4096]);
        overlap_b.validate(&program).unwrap();
        let cost_b = wcg_conflict_cost(&program, &overlap_b, &profile.wcg, cache);
        assert_eq!(cost_b, 0.0);
    }

    #[test]
    fn procedures_larger_than_cache_wrap() {
        let program = Program::builder()
            .procedure("huge", 20_000)
            .build()
            .unwrap();
        let layout = Layout::source_order(&program);
        let cache = CacheConfig::direct_mapped_8k();
        // A single procedure conflicts with itself across wraps, but the
        // TRG has no self-edges, so cost is 0 — and it must not panic.
        let g = WeightedGraph::new();
        assert_eq!(trg_conflict_cost(&program, &layout, &g, cache), 0.0);
        assert_eq!(wcg_conflict_cost(&program, &layout, &g, cache), 0.0);
    }

    #[test]
    fn chunk_larger_than_cache_occupies_each_line_once() {
        // One chunk per procedure, each chunk twice the cache size: the
        // chunk wraps the cache twice, but must occupy each line exactly
        // once, so a hot pair contributes weight × lines — not 2× that.
        let cache = CacheConfig::direct_mapped_8k();
        let program = Program::builder()
            .procedure("a", 16 * 1024)
            .procedure("b", 16 * 1024)
            .chunk_size(16 * 1024)
            .build()
            .unwrap();
        let layout = Layout::source_order(&program);
        let occ = chunk_occupancy(&program, &layout, cache);
        assert_eq!(occ.len(), cache.lines() as usize);
        for line in &occ {
            assert_eq!(line.len(), 2, "both chunks resident exactly once");
            assert_ne!(line[0].chunk, line[1].chunk);
        }
        let mut g = WeightedGraph::new();
        g.add_weight(0, 1, 3.0);
        let cost = trg_conflict_cost(&program, &layout, &g, cache);
        assert_eq!(cost, 3.0 * f64::from(cache.lines()));
    }

    #[test]
    fn covered_occupancy_skips_uncovered_procedures() {
        let (program, _, _) = setup();
        let cache = CacheConfig::direct_mapped_8k();
        // Drop the last procedure's address: its chunks must vanish from
        // the occupancy instead of panicking.
        let truncated = Layout::from_addresses(vec![0, 4096]);
        let occ = chunk_occupancy_covered(&program, &truncated, cache);
        assert!(occ.iter().flatten().all(|o| o.owner != ProcId::new(2)));
        assert!(occ.iter().flatten().any(|o| o.owner == ProcId::new(0)));
        // On a full layout the covered variant is the plain one.
        let full = Layout::source_order(&program);
        assert_eq!(
            chunk_occupancy(&program, &full, cache),
            chunk_occupancy_covered(&program, &full, cache)
        );
    }

    #[test]
    fn pairwise_cost_is_order_independent_bitwise() {
        // Weights of wildly different magnitudes so that any change in
        // f64 accumulation order shows up in the last ULP.
        let mut g = WeightedGraph::new();
        g.add_weight(0, 1, 1e-9);
        g.add_weight(0, 2, 1e9);
        g.add_weight(1, 2, 0.3);
        g.add_weight(2, 3, 7.77e-5);
        g.add_weight(1, 3, 123456.789);
        let canonical = vec![vec![0, 1, 2, 3], vec![1, 2, 3]];
        let reference = pairwise_cost(&canonical, &g);
        // Every permutation of each line must produce bit-identical cost.
        let shuffles = [
            vec![vec![3, 2, 1, 0], vec![3, 1, 2]],
            vec![vec![2, 0, 3, 1], vec![2, 3, 1]],
            vec![vec![1, 3, 0, 2], vec![1, 2, 3]],
        ];
        for occ in &shuffles {
            assert_eq!(
                pairwise_cost(occ, &g).to_bits(),
                reference.to_bits(),
                "accumulation order leaked into the metric"
            );
        }
    }

    #[test]
    fn conflict_cost_is_bit_stable_across_threads() {
        // The Figure-6 guarantee: evaluating the metric from parallel
        // workers (any --jobs value) yields byte-identical values.
        let (program, _, profile) = setup();
        let cache = CacheConfig::direct_mapped_8k();
        let layout = Layout::source_order(&program);
        let reference = trg_conflict_cost(&program, &layout, &profile.trg_place, cache).to_bits();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        trg_conflict_cost(&program, &layout, &profile.trg_place, cache).to_bits()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), reference);
            }
        });
    }

    #[test]
    fn empty_graph_zero_cost() {
        let (program, _, _) = setup();
        let cache = CacheConfig::direct_mapped_8k();
        let layout = Layout::source_order(&program);
        let g = WeightedGraph::new();
        assert_eq!(trg_conflict_cost(&program, &layout, &g, cache), 0.0);
    }
}
