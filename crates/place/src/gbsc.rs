//! The paper's procedure-placement algorithm (GBSC, §4) and its §6
//! set-associative extension.
//!
//! Structure (mirroring the paper):
//!
//! 1. **Selection** — greedily merge nodes of the procedure-grain
//!    `TRG_select` working graph, heaviest edge first (like PH).
//! 2. **Alignment** — when two nodes merge, scan every cache-relative
//!    offset of the second node against the first and keep the offset with
//!    the lowest conflict cost (Figure 4's `merge_nodes`). The cost sums
//!    chunk-grain `TRG_place` edge weights over every cache line where
//!    chunks of the two nodes would co-reside; ties pick the first
//!    (smallest) offset, which makes the algorithm degenerate to PH-style
//!    chaining when procedures fit the cache together.
//! 3. **Linearization** — realize the final offsets with the
//!    smallest-positive-gap walk of §4.3 (see [`linearize`]).
//!
//! The set-associative variant replaces the pairwise cost with the §6 pair
//! database: a block is only displaced in a 2-way LRU set when **two**
//! distinct blocks intervene, so alignments are costed by
//! `D(p, {r, s})` over triples that would share a set.

use rand::Rng;
use tempo_program::{ChunkId, Layout, ProcId, Program};
use tempo_trg::{ProfileData, WeightedGraph};

use crate::budget::{BudgetExhausted, BudgetMeter};
use crate::{linearize, PlacementAlgorithm, PlacementContext};

/// The cache-relative alignment decisions for the popular procedures — the
/// intermediate result of GBSC's merging phase, before linearization.
///
/// Exposed so experiments can manipulate alignments directly: the paper's
/// Figure 6 correlation study randomizes the offsets of 0–50 procedures of
/// a finished GBSC placement and re-linearizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementTuples {
    /// Per-procedure cache-line offset; `None` for procedures that were not
    /// aligned (unpopular ones).
    offsets: Vec<Option<u32>>,
    /// Number of cache lines in the target cache (offsets are mod this).
    lines: u32,
}

impl PlacementTuples {
    /// Creates an empty tuple set for `n` procedures and a cache with
    /// `lines` lines.
    pub fn new(n: usize, lines: u32) -> Self {
        PlacementTuples {
            offsets: vec![None; n],
            lines,
        }
    }

    /// The cache-line count offsets are taken modulo.
    pub fn lines(&self) -> u32 {
        self.lines
    }

    /// The alignment of a procedure, if it has one.
    pub fn offset(&self, id: ProcId) -> Option<u32> {
        self.offsets.get(id.as_usize()).copied().flatten()
    }

    /// Sets the alignment of a procedure (reduced mod the line count).
    pub fn set_offset(&mut self, id: ProcId, offset: u32) {
        self.offsets[id.as_usize()] = Some(offset % self.lines);
    }

    /// `(procedure, offset)` pairs for every aligned procedure, id order.
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn aligned(&self) -> Vec<(ProcId, u32)> {
        self.offsets
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|off| (ProcId::new(i as u32), off)))
            .collect()
    }

    /// Procedures without an alignment, id order.
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn rest(&self) -> Vec<ProcId> {
        self.offsets
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_none())
            .map(|(i, _)| ProcId::new(i as u32))
            .collect()
    }

    /// Number of aligned procedures.
    pub fn aligned_count(&self) -> usize {
        self.offsets.iter().filter(|o| o.is_some()).count()
    }

    /// Re-aligns `count` randomly chosen aligned procedures to uniformly
    /// random cache lines — the perturbation used to generate the Figure 6
    /// scatter plots. Fewer than `count` procedures are touched when fewer
    /// are aligned.
    pub fn randomize_offsets<R: Rng + ?Sized>(&mut self, count: usize, rng: &mut R) {
        let mut aligned_idx: Vec<usize> = self
            .offsets
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| i)
            .collect();
        // Partial Fisher-Yates: the first `count` entries become the sample.
        let n = aligned_idx.len();
        for k in 0..count.min(n) {
            let j = rng.gen_range(k..n);
            aligned_idx.swap(k, j);
            let off = rng.gen_range(0..self.lines);
            self.offsets[aligned_idx[k]] = Some(off);
        }
    }

    /// Realizes the alignments as a linear layout (see [`linearize`]).
    pub fn into_layout(&self, ctx: &PlacementContext<'_>) -> Layout {
        linearize(ctx.program, ctx.cache(), &self.aligned(), &self.rest())
    }
}

/// Shared merging engine: greedy selection over `TRG_select` with a
/// pluggable alignment cost.
struct Merger<'a> {
    program: &'a Program,
    lines: u32,
    /// Node representative of each procedure (valid for popular procedures).
    node_of_proc: Vec<u32>,
    /// Members of each live node, keyed by representative.
    members: std::collections::HashMap<u32, Vec<ProcId>>,
    /// Current cache-line offset of each procedure within its node's frame.
    offsets: Vec<u32>,
    /// Chunk geometry: line offset within the owning procedure and length
    /// in lines, indexed by global chunk id.
    chunk_rel_line: Vec<u32>,
    chunk_nlines: Vec<u32>,
}

impl<'a> Merger<'a> {
    fn new(program: &'a Program, profile: &ProfileData) -> Self {
        let cache = profile.cache;
        let lines = cache.lines();
        let line_size = cache.line_size();
        let lines_per_chunk = program.chunk_size() / line_size;
        assert!(
            lines_per_chunk >= 1,
            "chunk size must be at least one cache line"
        );
        let nchunks = program.chunk_count() as usize;
        let mut chunk_rel_line = vec![0u32; nchunks];
        let mut chunk_nlines = vec![0u32; nchunks];
        for info in tempo_program::Chunks::new(program) {
            chunk_rel_line[info.id.as_usize()] = info.ordinal * lines_per_chunk;
            chunk_nlines[info.id.as_usize()] = info.len.div_ceil(line_size);
        }

        let mut node_of_proc = vec![u32::MAX; program.len()];
        let mut members = std::collections::HashMap::new();
        for id in profile.popular.iter() {
            node_of_proc[id.as_usize()] = id.index();
            members.insert(id.index(), vec![id]);
        }
        Merger {
            program,
            lines,
            node_of_proc,
            members,
            offsets: vec![0u32; program.len()],
            chunk_rel_line,
            chunk_nlines,
        }
    }

    /// Absolute cache lines (mod line count) occupied by a chunk, given the
    /// current offset of its owner.
    fn chunk_lines(&self, chunk: u32) -> impl Iterator<Item = u32> + '_ {
        let c = chunk as usize;
        let (owner, _) = self.program.chunk_owner(ChunkId::new(chunk));
        let start = self.offsets[owner.as_usize()] + self.chunk_rel_line[c];
        let lines = self.lines;
        (0..self.chunk_nlines[c].min(lines)).map(move |k| (start + k) % lines)
    }

    /// Applies the chosen relative offset and merges node `v` into `u`.
    fn commit(&mut self, working: &mut WeightedGraph, u: u32, v: u32, offset: u32) {
        let moved = self.members.remove(&v).expect("v is a live node");
        for &p in &moved {
            self.offsets[p.as_usize()] = (self.offsets[p.as_usize()] + offset) % self.lines;
            self.node_of_proc[p.as_usize()] = u;
        }
        self.members
            .get_mut(&u)
            .expect("u is a live node")
            .extend(moved);
        working.merge_nodes(u, v);
    }

    /// Runs the greedy merge loop with `cost(self, u, v) -> acc` supplying
    /// the per-offset cost of aligning node `v` against node `u`, and
    /// returns the final tuples.
    ///
    /// When a budget meter is supplied, each merge first charges one work
    /// unit per candidate offset it is about to scan; on exhaustion the
    /// loop unwinds *before* doing the work, so a budget of one unit stops
    /// the very first merge.
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    fn run<F>(
        mut self,
        trg_select: &WeightedGraph,
        popular_count: usize,
        budget: Option<&BudgetMeter>,
        mut cost: F,
    ) -> Result<PlacementTuples, BudgetExhausted>
    where
        F: FnMut(&Merger<'_>, u32, u32) -> Vec<f64>,
    {
        let mut working = trg_select.clone();
        while let Some(e) = working.heaviest_edge() {
            if let Some(meter) = budget {
                meter.charge(u64::from(self.lines))?;
            }
            let (u, v) = (e.a, e.b);
            let acc = cost(&self, u, v);
            debug_assert_eq!(acc.len(), self.lines as usize);
            // First minimal offset (the paper: "selects the first of these
            // offsets" on ties).
            let mut best = 0usize;
            for (i, &c) in acc.iter().enumerate() {
                if c < acc[best] {
                    best = i;
                }
            }
            self.commit(&mut working, u, v, best as u32);
        }
        let mut tuples = PlacementTuples::new(self.program.len(), self.lines);
        for (i, &node) in self.node_of_proc.iter().enumerate() {
            if node != u32::MAX {
                tuples.set_offset(ProcId::new(i as u32), self.offsets[i]);
            }
        }
        debug_assert_eq!(tuples.aligned_count(), popular_count);
        Ok(tuples)
    }
}

/// GBSC for direct-mapped caches: the paper's main algorithm.
///
/// # Panics
///
/// [`place`](PlacementAlgorithm::place) panics if the profile's chunk size
/// is smaller than the cache line size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gbsc;

impl Gbsc {
    /// Creates the algorithm with the paper's defaults.
    pub fn new() -> Self {
        Gbsc
    }

    /// Runs only the merging phase, returning the cache-relative alignments
    /// (useful for experiments that manipulate offsets before
    /// linearization, like the paper's Figure 6). Ignores any budget
    /// attached to the context.
    pub fn place_tuples(&self, ctx: &PlacementContext<'_>) -> PlacementTuples {
        match self.tuples_impl(ctx, None) {
            Ok(tuples) => tuples,
            Err(_) => unreachable!("unbudgeted merge loop cannot exhaust"),
        }
    }

    /// Budget-aware merging phase: honours a meter attached via
    /// [`PlacementContext::with_budget`].
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the budget trips mid-merge.
    pub fn try_place_tuples(
        &self,
        ctx: &PlacementContext<'_>,
    ) -> Result<PlacementTuples, BudgetExhausted> {
        self.tuples_impl(ctx, ctx.budget())
    }

    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    fn tuples_impl(
        &self,
        ctx: &PlacementContext<'_>,
        budget: Option<&BudgetMeter>,
    ) -> Result<PlacementTuples, BudgetExhausted> {
        let merger = Merger::new(ctx.program, ctx.profile);
        let trg_place = &ctx.profile.trg_place;
        let lines = ctx.cache().lines() as usize;
        merger.run(
            &ctx.profile.trg_select,
            ctx.profile.popular.count(),
            budget,
            |m, u, v| {
                // Figure 4's cost scan, computed sparsely: for every
                // TRG_place edge crossing the two nodes, each pair of
                // co-residable lines votes for the relative offset that
                // would make them collide.
                let mut acc = vec![0.0f64; lines];
                // Iterate the smaller node's chunks for small-to-large cost.
                let (iter_node, other, iter_is_v) = {
                    let cu: usize = m.members[&u]
                        .iter()
                        .map(|p| m.program.chunks_of(*p).len())
                        .sum();
                    let cv: usize = m.members[&v]
                        .iter()
                        .map(|p| m.program.chunks_of(*p).len())
                        .sum();
                    if cv <= cu {
                        (v, u, true)
                    } else {
                        (u, v, false)
                    }
                };
                for &p in &m.members[&iter_node] {
                    for chunk in m.program.chunks_of(p) {
                        for nbr in trg_place.neighbors(chunk) {
                            let (owner, _) = m.program.chunk_owner(ChunkId::new(nbr));
                            if m.node_of_proc[owner.as_usize()] != other {
                                continue;
                            }
                            let w = trg_place.weight(chunk, nbr);
                            // `acc[i]` = cost of shifting node v by i:
                            // collision when line_u == line_v + i (mod L).
                            for la in m.chunk_lines(if iter_is_v { nbr } else { chunk }) {
                                for lb in m.chunk_lines(if iter_is_v { chunk } else { nbr }) {
                                    let i = (la + lines as u32 - lb) % lines as u32;
                                    acc[i as usize] += w;
                                }
                            }
                        }
                    }
                }
                acc
            },
        )
    }
}

impl PlacementAlgorithm for Gbsc {
    fn name(&self) -> &str {
        "GBSC"
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Layout {
        self.place_tuples(ctx).into_layout(ctx)
    }

    fn try_place(&self, ctx: &PlacementContext<'_>) -> Result<Layout, BudgetExhausted> {
        Ok(self.try_place_tuples(ctx)?.into_layout(ctx))
    }
}

/// GBSC extended for set-associative caches (§6): alignment costs come from
/// the pair database `D(p, {r, s})`, because an LRU set of associativity 2
/// only loses a block when two distinct blocks intervene.
///
/// Selection still runs over `TRG_select`; only the `merge_nodes` cost
/// changes, exactly as the paper describes. The pair database models the
/// 2-way displacement rule precisely; for higher associativities it is a
/// conservative approximation (the paper's k-victim generalization is
/// combinatorially explosive to profile).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GbscSetAssoc;

impl GbscSetAssoc {
    /// Creates the algorithm.
    pub fn new() -> Self {
        GbscSetAssoc
    }

    /// Runs only the merging phase (see [`Gbsc::place_tuples`]). Ignores
    /// any budget attached to the context.
    ///
    /// # Panics
    ///
    /// Panics if the profile lacks a pair database (enable
    /// [`with_pair_db`](tempo_trg::Profiler::with_pair_db) when profiling)
    /// or if the cache is direct-mapped (use [`Gbsc`] instead).
    pub fn place_tuples(&self, ctx: &PlacementContext<'_>) -> PlacementTuples {
        match self.tuples_impl(ctx, None) {
            Ok(tuples) => tuples,
            Err(_) => unreachable!("unbudgeted merge loop cannot exhaust"),
        }
    }

    /// Budget-aware merging phase: honours a meter attached via
    /// [`PlacementContext::with_budget`].
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the budget trips mid-merge.
    ///
    /// # Panics
    ///
    /// As [`place_tuples`](GbscSetAssoc::place_tuples): panics without a
    /// pair database or on a direct-mapped cache.
    pub fn try_place_tuples(
        &self,
        ctx: &PlacementContext<'_>,
    ) -> Result<PlacementTuples, BudgetExhausted> {
        self.tuples_impl(ctx, ctx.budget())
    }

    fn tuples_impl(
        &self,
        ctx: &PlacementContext<'_>,
        budget: Option<&BudgetMeter>,
    ) -> Result<PlacementTuples, BudgetExhausted> {
        let db = ctx.profile.pair_db.as_ref().expect(
            "set-associative placement needs a pair database; enable Profiler::with_pair_db",
        );
        assert!(
            !ctx.cache().is_direct_mapped(),
            "GbscSetAssoc targets set-associative caches; use Gbsc for direct-mapped"
        );
        let merger = Merger::new(ctx.program, ctx.profile);
        let sets = ctx.cache().sets();
        let lines = ctx.cache().lines() as usize;
        // Pre-collect the associations once; each merge filters by node.
        let assocs: Vec<(u32, u32, u32, f64)> =
            db.iter().map(|(k, w)| (k.p, k.r, k.s, w)).collect();
        merger.run(
            &ctx.profile.trg_select,
            ctx.profile.popular.count(),
            budget,
            |m, u, v| {
                let mut acc = vec![0.0f64; lines];
                let node_of_chunk = |chunk: u32| {
                    let (owner, _) = m.program.chunk_owner(ChunkId::new(chunk));
                    m.node_of_proc[owner.as_usize()]
                };
                for &(p, r, s, w) in &assocs {
                    let np = node_of_chunk(p);
                    let nr = node_of_chunk(r);
                    let ns = node_of_chunk(s);
                    let in_uv = |n: u32| n == u || n == v;
                    if !(in_uv(np) && in_uv(nr) && in_uv(ns)) {
                        continue; // a participant is elsewhere: alignment here is moot
                    }
                    if np == nr && nr == ns {
                        continue; // intra-node cost is invariant under the scan
                    }
                    // Sets occupied by each chunk in its node frame.
                    let sets_of = |chunk: u32| -> Vec<u32> {
                        m.chunk_lines(chunk).map(|l| l % sets).collect()
                    };
                    // Split participants into the fixed node (u) and the
                    // shifted node (v), intersect within each side.
                    let mut fixed: Option<Vec<u32>> = None;
                    let mut shifted: Option<Vec<u32>> = None;
                    for &(chunk, node) in &[(p, np), (r, nr), (s, ns)] {
                        let mine = sets_of(chunk);
                        let slot = if node == u { &mut fixed } else { &mut shifted };
                        *slot = Some(match slot.take() {
                            None => mine,
                            Some(prev) => prev.into_iter().filter(|x| mine.contains(x)).collect(),
                        });
                    }
                    let (Some(fa), Some(sb)) = (fixed, shifted) else {
                        continue;
                    };
                    // A displacement needs all three in one set: every
                    // (fixed-set, shifted-set) pair votes for the shifts
                    // that align them. Shifting node v by `i` lines moves
                    // its sets by `i mod sets`.
                    for &sa in &fa {
                        for &sb_ in &sb {
                            let base = (sa + sets - sb_) % sets;
                            // All line offsets congruent to `base` mod sets.
                            let mut i = base;
                            while (i as usize) < lines {
                                acc[i as usize] += w;
                                i += sets;
                            }
                        }
                    }
                }
                acc
            },
        )
    }
}

impl PlacementAlgorithm for GbscSetAssoc {
    fn name(&self) -> &str {
        "GBSC-SA"
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Layout {
        self.place_tuples(ctx).into_layout(ctx)
    }

    fn try_place(&self, ctx: &PlacementContext<'_>) -> Result<Layout, BudgetExhausted> {
        Ok(self.try_place_tuples(ctx)?.into_layout(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_cache::{simulate, CacheConfig};
    use tempo_trace::Trace;
    use tempo_trg::{PopularitySelector, Profiler};

    fn profile_for(
        program: &Program,
        trace: &Trace,
        cache: CacheConfig,
        pair_db: bool,
    ) -> ProfileData {
        Profiler::new(program, cache)
            .popularity(PopularitySelector::all())
            .with_pair_db(pair_db)
            .profile(trace)
    }

    /// The paper's Figure 1 scenario: three single-chunk leaf procedures
    /// under a three-line cache. (We scale it: 2 KB cache, procedures of
    /// ~680 bytes so only three fit.)
    fn figure1_program() -> Program {
        Program::builder()
            .procedure("m", 680)
            .procedure("x", 680)
            .procedure("y", 680)
            .procedure("z", 680)
            .chunk_size(1024)
            .build()
            .unwrap()
    }

    #[test]
    fn trace2_places_x_and_y_together() {
        // Phase behavior: (M X)*40 then (M Y)*40. X and Y never interleave,
        // so GBSC may overlap them; M must not overlap either.
        let p = figure1_program();
        let ids: Vec<ProcId> = p.ids().collect();
        let (m, x, y) = (ids[0], ids[1], ids[2]);
        let mut refs = Vec::new();
        for _ in 0..40 {
            refs.extend([m, x]);
        }
        for _ in 0..40 {
            refs.extend([m, y]);
        }
        let t = Trace::from_full_records(&p, refs);
        let cache = CacheConfig::direct_mapped(2048).unwrap();
        let profile = profile_for(&p, &t, cache, false);
        let ctx = PlacementContext::new(&p, &profile);
        let tuples = Gbsc::new().place_tuples(&ctx);

        let lines = |id: ProcId| -> Vec<u32> {
            let off = tuples.offset(id).unwrap();
            (0..680u32.div_ceil(32)).map(|k| (off + k) % 64).collect()
        };
        let overlap = |a: &[u32], b: &[u32]| a.iter().any(|l| b.contains(l));
        let (lm, lx, ly) = (lines(m), lines(x), lines(y));
        assert!(!overlap(&lm, &lx), "m and x interleave heavily");
        assert!(!overlap(&lm, &ly), "m and y interleave heavily");
        // x and y have no temporal edge: the first-minimum rule puts them
        // at the same offset (both merge against m's frame at the first
        // zero-cost slot).
        assert!(
            overlap(&lx, &ly),
            "x and y never interleave; sharing lines is free and expected"
        );
    }

    #[test]
    fn trace1_separates_all_three() {
        // Alternating M X M Y: all three pairs interleave; with room in the
        // cache, GBSC must give x and y distinct lines too.
        let p = figure1_program();
        let ids: Vec<ProcId> = p.ids().collect();
        let (m, x, y) = (ids[0], ids[1], ids[2]);
        let mut refs = Vec::new();
        for _ in 0..40 {
            refs.extend([m, x, m, y]);
        }
        let t = Trace::from_full_records(&p, refs);
        let cache = CacheConfig::direct_mapped(4096).unwrap(); // room for all three
        let profile = profile_for(&p, &t, cache, false);
        let ctx = PlacementContext::new(&p, &profile);
        let layout = Gbsc::new().place(&ctx);
        layout.validate(&p).unwrap();
        let stats = simulate(&p, &layout, &t, cache);
        // Only cold misses: 680 bytes = 22 lines per proc, 3 procs = 66.
        assert_eq!(stats.misses, 66, "trace1 must be conflict-free");
    }

    #[test]
    fn beats_source_order_on_conflicting_pair() {
        let p = Program::builder()
            .procedure("a", 4096)
            .procedure("pad", 4096)
            .procedure("b", 4096)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut refs = Vec::new();
        for _ in 0..50 {
            refs.extend([ids[0], ids[2]]);
        }
        let t = Trace::from_full_records(&p, refs);
        let cache = CacheConfig::direct_mapped_8k();
        let profile = profile_for(&p, &t, cache, false);
        let ctx = PlacementContext::new(&p, &profile);
        let gbsc = Gbsc::new().place(&ctx);
        gbsc.validate(&p).unwrap();
        let default = Layout::source_order(&p);
        let sg = simulate(&p, &gbsc, &t, cache);
        let sd = simulate(&p, &default, &t, cache);
        assert!(
            sg.misses < sd.misses / 10,
            "gbsc {} default {}",
            sg.misses,
            sd.misses
        );
    }

    #[test]
    fn tuples_cover_exactly_popular_procedures() {
        let p = figure1_program();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut refs = Vec::new();
        for _ in 0..30 {
            refs.extend([ids[0], ids[1]]);
        }
        refs.push(ids[3]); // z referenced once -> unpopular
        let t = Trace::from_full_records(&p, refs);
        let cache = CacheConfig::direct_mapped(2048).unwrap();
        let profile = Profiler::new(&p, cache)
            .popularity(PopularitySelector::coverage(0.99).with_min_count(2))
            .profile(&t);
        let ctx = PlacementContext::new(&p, &profile);
        let tuples = Gbsc::new().place_tuples(&ctx);
        assert_eq!(tuples.aligned_count(), 2);
        assert!(tuples.offset(ids[3]).is_none());
        assert_eq!(tuples.rest(), vec![ids[2], ids[3]]);
        // Full layout still covers everything.
        let layout = tuples.into_layout(&ctx);
        layout.validate(&p).unwrap();
    }

    #[test]
    fn large_procedure_alignment_uses_chunk_info() {
        // One procedure larger than the cache, one hot small procedure that
        // interleaves with only the *first* chunk of the big one. GBSC must
        // place the small procedure away from the big one's first chunk.
        let p = Program::builder()
            .procedure("big", 12 * 1024)
            .procedure("hot", 512)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let (big, hot) = (ids[0], ids[1]);
        let mut t = Trace::new();
        for _ in 0..60 {
            // big executes only its first 512 bytes, then hot runs fully.
            t.push(tempo_trace::TraceRecord::new(big, 512));
            t.push(tempo_trace::TraceRecord::new(hot, 512));
        }
        let cache = CacheConfig::direct_mapped_8k();
        let profile = profile_for(&p, &t, cache, false);
        let ctx = PlacementContext::new(&p, &profile);
        let layout = Gbsc::new().place(&ctx);
        layout.validate(&p).unwrap();
        let stats = simulate(&p, &layout, &t, cache);
        // Conflict-free steady state: only cold misses (16 + 16 lines).
        assert_eq!(stats.misses, 32, "hot must avoid big's first chunk");
    }

    #[test]
    fn randomize_offsets_touches_requested_count() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut tuples = PlacementTuples::new(10, 256);
        for i in 0..5 {
            tuples.set_offset(ProcId::new(i), 0);
        }
        let mut rng = StdRng::seed_from_u64(99);
        tuples.randomize_offsets(50, &mut rng); // more than aligned: clamps
        assert_eq!(tuples.aligned_count(), 5);
        for i in 5..10 {
            assert!(tuples.offset(ProcId::new(i)).is_none());
        }
    }

    #[test]
    fn aligned_lists_in_id_order_and_lines_accessor() {
        let mut tuples = PlacementTuples::new(4, 128);
        tuples.set_offset(ProcId::new(3), 7);
        tuples.set_offset(ProcId::new(1), 9);
        assert_eq!(tuples.lines(), 128);
        assert_eq!(
            tuples.aligned(),
            vec![(ProcId::new(1), 9), (ProcId::new(3), 7)]
        );
        assert_eq!(tuples.rest(), vec![ProcId::new(0), ProcId::new(2)]);
    }

    #[test]
    fn set_offset_reduces_modulo_lines() {
        let mut tuples = PlacementTuples::new(2, 256);
        tuples.set_offset(ProcId::new(0), 300);
        assert_eq!(tuples.offset(ProcId::new(0)), Some(44));
    }

    #[test]
    fn sa_variant_requires_pair_db() {
        let p = figure1_program();
        let ids: Vec<ProcId> = p.ids().collect();
        let t = Trace::from_full_records(&p, [ids[0], ids[1], ids[0]]);
        let cache = CacheConfig::two_way_8k();
        let profile = profile_for(&p, &t, cache, false);
        let ctx = PlacementContext::new(&p, &profile);
        // AssertUnwindSafe: the context (and any budget meter it carries)
        // is discarded after the unwind, so broken invariants cannot leak.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            GbscSetAssoc::new().place(&ctx)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn sa_variant_places_three_way_conflicts_apart() {
        // a, b, c each 1 KB (32 lines = half the sets of a 4 KB 2-way
        // cache); trace cycles a b c, so both b and c intervene between
        // consecutive a references: any set holding all three thrashes, but
        // a 2-way set holding only two of them retains both. A conflict-
        // free placement exists (e.g. a alone in half the sets, b and c
        // sharing the other half) and the pair-database cost must find one.
        let p = Program::builder()
            .procedure("a", 1024)
            .procedure("b", 1024)
            .procedure("c", 1024)
            .chunk_size(1024)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut refs = Vec::new();
        for _ in 0..40 {
            refs.extend([ids[0], ids[1], ids[2]]);
        }
        let t = Trace::from_full_records(&p, refs);
        let cache = CacheConfig::new(4096, 32, 2).unwrap();
        let profile = profile_for(&p, &t, cache, true);
        assert!(!profile.pair_db.as_ref().unwrap().is_empty());
        let ctx = PlacementContext::new(&p, &profile);
        let layout = GbscSetAssoc::new().place(&ctx);
        layout.validate(&p).unwrap();
        let sa = simulate(&p, &layout, &t, cache);
        // Conflict-free steady state: only the 3 * 32 cold misses.
        assert_eq!(sa.misses, 96, "SA placement must avoid three-way sets");
        // And the full-overlap worst case is far worse.
        let worst = Layout::from_addresses(vec![0, 4096, 8192]);
        let sw = simulate(&p, &worst, &t, cache);
        assert!(
            sa.misses < sw.misses / 5,
            "sa {} worst {}",
            sa.misses,
            sw.misses
        );
    }

    #[test]
    fn deterministic_output() {
        let p = figure1_program();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut refs = Vec::new();
        for i in 0..50 {
            refs.extend([ids[0], ids[1 + (i % 3)]]);
        }
        let t = Trace::from_full_records(&p, refs);
        let cache = CacheConfig::direct_mapped(2048).unwrap();
        let profile = profile_for(&p, &t, cache, false);
        let ctx = PlacementContext::new(&p, &profile);
        let a = Gbsc::new().place(&ctx);
        let b = Gbsc::new().place(&ctx);
        assert_eq!(a, b);
    }
}
