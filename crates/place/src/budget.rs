//! Execution budgets and graceful degradation for placement runs.
//!
//! The paper's algorithms were run offline, but a production layout service
//! must bound placement cost: GBSC's alignment scan is quadratic-ish in the
//! popular set and a pathological profile can make it crawl. This module
//! provides:
//!
//! * [`Budget`] — a declarative limit (work units and/or wall-clock
//!   deadline) attached to a [`PlacementContext`] via a [`BudgetMeter`].
//! * [`BudgetExhausted`] — the structured error an algorithm returns from
//!   [`PlacementAlgorithm::try_place`] when the meter trips.
//! * [`place_with_fallback`] — the degradation chain: run the requested
//!   algorithm under the budget; on exhaustion fall back to Pettis–Hansen;
//!   if even that cannot finish, emit the identity (source-order) layout,
//!   which costs nothing and is always valid. The returned [`Degradation`]
//!   record names the tier that actually ran and why each earlier tier
//!   failed.
//!
//! A *work unit* is one candidate placement decision examined — one
//! cache-relative offset scanned by GBSC, or one chain endpoint considered
//! by PH — so budgets are machine-independent and deterministic, while the
//! deadline guards against wall-clock overruns on any machine.

use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use tempo_program::{Layout, Program};
use tempo_trg::ProfileData;

use crate::{PettisHansen, PlacementAlgorithm, PlacementContext};

/// A declarative execution limit for a placement run.
///
/// The default is unlimited. Limits compose: whichever trips first wins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum work units (candidate placement decisions) to spend.
    pub max_work_units: Option<u64>,
    /// Maximum wall-clock time to spend.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// No limits: every algorithm runs to completion.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Limits work to `units` candidate placement decisions.
    pub fn work_units(units: u64) -> Self {
        Budget {
            max_work_units: Some(units),
            deadline: None,
        }
    }

    /// Limits wall-clock time to `deadline`.
    pub fn duration(deadline: Duration) -> Self {
        Budget {
            max_work_units: None,
            deadline: Some(deadline),
        }
    }

    /// Limits wall-clock time to `ms` milliseconds.
    pub fn millis(ms: u64) -> Self {
        Budget::duration(Duration::from_millis(ms))
    }

    /// Returns `true` when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_work_units.is_none() && self.deadline.is_none()
    }
}

/// Why a budgeted placement run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BudgetExhausted {
    /// The work-unit limit was reached.
    WorkUnits {
        /// The configured limit.
        limit: u64,
        /// Units that would have been spent had the rejected charge
        /// committed (exceeds `limit` by construction).
        spent: u64,
    },
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured deadline.
        limit: Duration,
    },
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExhausted::WorkUnits { limit, spent } => {
                write!(
                    f,
                    "work budget exhausted: {spent} units spent, limit {limit}"
                )
            }
            BudgetExhausted::Deadline { limit } => {
                write!(f, "deadline exceeded: limit {limit:?}")
            }
        }
    }
}

impl Error for BudgetExhausted {}

/// Runtime enforcement of a [`Budget`].
///
/// Uses interior mutability so a shared reference can be threaded through
/// the `Copy` [`PlacementContext`]; a meter is cheap enough to check inside
/// an algorithm's innermost merge loop. One meter is shared across a whole
/// fallback chain, so work spent by a failed tier counts against later
/// tiers.
#[derive(Debug)]
pub struct BudgetMeter {
    max_work_units: Option<u64>,
    deadline: Option<Instant>,
    deadline_limit: Duration,
    spent: Cell<u64>,
}

impl BudgetMeter {
    /// Starts metering `budget` (the deadline clock starts now).
    pub fn new(budget: Budget) -> Self {
        BudgetMeter {
            max_work_units: budget.max_work_units,
            deadline: budget.deadline.map(|d| Instant::now() + d),
            deadline_limit: budget.deadline.unwrap_or_default(),
            spent: Cell::new(0),
        }
    }

    /// A meter that never trips.
    pub fn unlimited() -> Self {
        BudgetMeter::new(Budget::unlimited())
    }

    /// Work units charged so far.
    pub fn spent(&self) -> u64 {
        self.spent.get()
    }

    /// Charges `units` of work and checks both limits.
    ///
    /// A charge that would exceed the work limit is rejected *without*
    /// being committed, so when one tier of a fallback chain trips, the
    /// headroom it could not use remains available to cheaper tiers
    /// sharing the meter.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the charge would push cumulative
    /// work past the limit or the deadline has passed; the caller must
    /// stop and unwind.
    pub fn charge(&self, units: u64) -> Result<(), BudgetExhausted> {
        let spent = self.spent.get().saturating_add(units);
        if let Some(limit) = self.max_work_units {
            if spent > limit {
                return Err(BudgetExhausted::WorkUnits { limit, spent });
            }
        }
        self.spent.set(spent);
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(BudgetExhausted::Deadline {
                    limit: self.deadline_limit,
                });
            }
        }
        Ok(())
    }
}

/// Which tier of the fallback chain produced the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationTier {
    /// The requested algorithm finished within budget.
    Full,
    /// The requested algorithm ran out; Pettis–Hansen finished instead.
    PettisHansen,
    /// Every budgeted tier ran out; the identity (source-order) layout was
    /// emitted. It costs no work and is always valid.
    Identity,
}

impl fmt::Display for DegradationTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationTier::Full => write!(f, "full"),
            DegradationTier::PettisHansen => write!(f, "pettis-hansen"),
            DegradationTier::Identity => write!(f, "identity"),
        }
    }
}

/// Record of how a budgeted placement run degraded (or did not).
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Name of the algorithm the caller asked for.
    pub requested: String,
    /// Name of the algorithm whose layout was returned.
    pub ran: String,
    /// The tier that produced the layout.
    pub tier: DegradationTier,
    /// Total work units spent across all tiers.
    pub work_spent: u64,
    /// Each tier that ran out of budget, with the reason, in order.
    pub exhausted: Vec<(String, BudgetExhausted)>,
}

impl Degradation {
    /// Returns `true` when the requested algorithm did not produce the
    /// layout.
    pub fn is_degraded(&self) -> bool {
        self.tier != DegradationTier::Full
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_degraded() {
            write!(
                f,
                "{} degraded to {} ({} tier)",
                self.requested, self.ran, self.tier
            )?;
            for (name, why) in &self.exhausted {
                write!(f, "; {name}: {why}")?;
            }
            Ok(())
        } else {
            write!(
                f,
                "{} completed within budget ({} work units)",
                self.ran, self.work_spent
            )
        }
    }
}

/// Runs `algorithm` under `budget`, degrading GBSC → Pettis–Hansen →
/// identity layout as tiers exhaust the (shared) meter.
///
/// The returned layout is always valid for `program`; the [`Degradation`]
/// record says which tier produced it and why earlier tiers failed. Note
/// the meter is shared: work a failed tier spent also counts against later
/// tiers, so the chain's total cost stays within the budget (the identity
/// tier is free).
pub fn place_with_fallback<A: PlacementAlgorithm + ?Sized>(
    program: &Program,
    profile: &ProfileData,
    algorithm: &A,
    budget: Budget,
) -> (Layout, Degradation) {
    let (layout, degradation) = run_fallback_chain(program, profile, algorithm, budget);
    note_placement(&degradation);
    (layout, degradation)
}

/// Reports a completed placement run to the global [`tempo_obs`] registry:
/// `place.runs`, `place.work_spent` (shared-meter units across all tiers),
/// `place.degraded`, and a per-algorithm `place.algo.<name>.runs` counter
/// naming the tier that actually produced the layout.
fn note_placement(d: &Degradation) {
    tempo_obs::counter("place.runs").incr();
    tempo_obs::counter("place.work_spent").add(d.work_spent);
    if d.is_degraded() {
        tempo_obs::counter("place.degraded").incr();
    }
    tempo_obs::counter(&format!("place.algo.{}.runs", d.ran.to_lowercase())).incr();
}

fn run_fallback_chain<A: PlacementAlgorithm + ?Sized>(
    program: &Program,
    profile: &ProfileData,
    algorithm: &A,
    budget: Budget,
) -> (Layout, Degradation) {
    let requested = algorithm.name().to_string();
    let meter = BudgetMeter::new(budget);
    let ctx = PlacementContext::new(program, profile).with_budget(&meter);
    let mut exhausted = Vec::new();

    match algorithm.try_place(&ctx) {
        Ok(layout) => {
            let degradation = Degradation {
                ran: requested.clone(),
                requested,
                tier: DegradationTier::Full,
                work_spent: meter.spent(),
                exhausted,
            };
            return (layout, degradation);
        }
        Err(why) => exhausted.push((requested.clone(), why)),
    }

    let ph = PettisHansen::new();
    if requested != ph.name() {
        match ph.try_place(&ctx) {
            Ok(layout) => {
                let degradation = Degradation {
                    requested,
                    ran: ph.name().to_string(),
                    tier: DegradationTier::PettisHansen,
                    work_spent: meter.spent(),
                    exhausted,
                };
                return (layout, degradation);
            }
            Err(why) => exhausted.push((ph.name().to_string(), why)),
        }
    }

    let layout = Layout::source_order(program);
    let degradation = Degradation {
        requested,
        ran: "default".to_string(),
        tier: DegradationTier::Identity,
        work_spent: meter.spent(),
        exhausted,
    };
    (layout, degradation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gbsc;
    use tempo_cache::CacheConfig;
    use tempo_program::{ProcId, Program};
    use tempo_trace::Trace;
    use tempo_trg::{PopularitySelector, Profiler};

    fn setup() -> (Program, ProfileData) {
        let p = Program::builder()
            .procedure("a", 4096)
            .procedure("pad", 4096)
            .procedure("b", 4096)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut refs = Vec::new();
        for _ in 0..50 {
            refs.extend([ids[0], ids[2]]);
        }
        let t = Trace::from_full_records(&p, refs);
        let profile = Profiler::new(&p, CacheConfig::direct_mapped_8k())
            .popularity(PopularitySelector::all())
            .profile(&t);
        (p, profile)
    }

    #[test]
    fn unlimited_budget_runs_full_tier() {
        let (p, profile) = setup();
        let (layout, d) = place_with_fallback(&p, &profile, &Gbsc::new(), Budget::unlimited());
        layout.validate(&p).unwrap();
        assert_eq!(d.tier, DegradationTier::Full);
        assert!(!d.is_degraded());
        assert_eq!(d.ran, "GBSC");
        assert!(d.exhausted.is_empty());
        // Matches an unbudgeted run exactly.
        let ctx = PlacementContext::new(&p, &profile);
        assert_eq!(layout, Gbsc::new().place(&ctx));
    }

    #[test]
    fn one_work_unit_degrades_to_identity() {
        let (p, profile) = setup();
        let (layout, d) = place_with_fallback(&p, &profile, &Gbsc::new(), Budget::work_units(1));
        layout.validate(&p).unwrap();
        assert_eq!(d.tier, DegradationTier::Identity);
        assert_eq!(layout, Layout::source_order(&p));
        assert_eq!(d.exhausted.len(), 2, "GBSC and PH both exhausted");
        assert!(d.to_string().contains("identity"));
    }

    #[test]
    fn intermediate_budget_can_fall_back_to_ph() {
        let (p, profile) = setup();
        // Find a budget where GBSC exhausts but PH (sharing the meter)
        // still finishes: PH work here is tiny (two merges of short
        // chains), so a budget just under GBSC's appetite suffices.
        let (_, full) = place_with_fallback(&p, &profile, &Gbsc::new(), Budget::unlimited());
        let gbsc_cost = full.work_spent;
        assert!(gbsc_cost > 1);
        let (layout, d) = place_with_fallback(
            &p,
            &profile,
            &Gbsc::new(),
            Budget::work_units(gbsc_cost - 1),
        );
        layout.validate(&p).unwrap();
        assert_eq!(d.tier, DegradationTier::PettisHansen);
        assert_eq!(d.ran, "PH");
        assert_eq!(d.exhausted.len(), 1);
        assert!(d.is_degraded());
    }

    #[test]
    fn expired_deadline_degrades_to_identity() {
        let (p, profile) = setup();
        let (layout, d) =
            place_with_fallback(&p, &profile, &Gbsc::new(), Budget::duration(Duration::ZERO));
        layout.validate(&p).unwrap();
        assert_eq!(d.tier, DegradationTier::Identity);
        assert!(matches!(d.exhausted[0].1, BudgetExhausted::Deadline { .. }));
    }

    #[test]
    fn ph_request_skips_ph_tier() {
        let (p, profile) = setup();
        let (layout, d) =
            place_with_fallback(&p, &profile, &PettisHansen::new(), Budget::work_units(1));
        layout.validate(&p).unwrap();
        assert_eq!(d.tier, DegradationTier::Identity);
        assert_eq!(d.exhausted.len(), 1, "PH must not be retried");
    }

    #[test]
    fn meter_counts_and_trips() {
        let m = BudgetMeter::new(Budget::work_units(10));
        assert!(m.charge(6).is_ok());
        assert_eq!(m.spent(), 6);
        assert!(m.charge(4).is_ok());
        let err = m.charge(1).unwrap_err();
        assert!(matches!(
            err,
            BudgetExhausted::WorkUnits {
                limit: 10,
                spent: 11
            }
        ));
        assert!(BudgetMeter::unlimited().charge(u64::MAX).is_ok());
    }

    #[test]
    fn budget_constructors() {
        assert!(Budget::unlimited().is_unlimited());
        assert!(!Budget::work_units(5).is_unlimited());
        assert_eq!(
            Budget::millis(250).deadline,
            Some(Duration::from_millis(250))
        );
        let both = Budget {
            max_work_units: Some(1),
            deadline: Some(Duration::from_secs(1)),
        };
        assert!(!both.is_unlimited());
    }

    #[test]
    fn exhaustion_display_names_cause() {
        let w = BudgetExhausted::WorkUnits { limit: 5, spent: 9 };
        assert!(w.to_string().contains("5"));
        assert!(w.to_string().contains("9"));
        let d = BudgetExhausted::Deadline {
            limit: Duration::from_millis(100),
        };
        assert!(d.to_string().contains("deadline"));
    }
}
