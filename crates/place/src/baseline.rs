//! Baseline layouts: compiler default and random permutation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tempo_program::{Layout, ProcId};

use crate::{PlacementAlgorithm, PlacementContext};

/// The compiler-default layout: procedures packed in source (id) order.
///
/// This is the paper's baseline ("the default code layout produced by most
/// compilers places procedures in the order in which they were listed in
/// the source files", §1); Table 1 reports its miss rate per benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceOrder;

impl SourceOrder {
    /// Creates the baseline algorithm.
    pub fn new() -> Self {
        SourceOrder
    }
}

impl PlacementAlgorithm for SourceOrder {
    fn name(&self) -> &str {
        "default"
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Layout {
        Layout::source_order(ctx.program)
    }
}

/// A seeded uniformly-random permutation of the procedures, packed with no
/// gaps. Useful as a "how bad can it get" reference point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomOrder {
    seed: u64,
}

impl RandomOrder {
    /// Creates a random-order layout generator with the given seed. The
    /// same seed always yields the same permutation for a given program.
    pub fn new(seed: u64) -> Self {
        RandomOrder { seed }
    }
}

impl PlacementAlgorithm for RandomOrder {
    fn name(&self) -> &str {
        "random"
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Layout {
        let mut order: Vec<ProcId> = ctx.program.ids().collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        order.shuffle(&mut rng);
        Layout::from_order(ctx.program, &order).expect("a shuffle is a permutation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_cache::CacheConfig;
    use tempo_program::Program;
    use tempo_trace::Trace;
    use tempo_trg::Profiler;

    fn setup() -> (Program, tempo_trg::ProfileData) {
        let mut b = Program::builder();
        for i in 0..20 {
            b.procedure(format!("p{i}"), 64 + i * 8);
        }
        let program = b.build().unwrap();
        let profile =
            Profiler::new(&program, CacheConfig::direct_mapped_8k()).profile(&Trace::new());
        (program, profile)
    }

    #[test]
    fn source_order_matches_layout_helper() {
        let (program, profile) = setup();
        let ctx = PlacementContext::new(&program, &profile);
        let l = SourceOrder::new().place(&ctx);
        assert_eq!(l, Layout::source_order(&program));
        assert_eq!(SourceOrder::new().name(), "default");
    }

    #[test]
    fn random_order_is_seed_deterministic() {
        let (program, profile) = setup();
        let ctx = PlacementContext::new(&program, &profile);
        let a = RandomOrder::new(7).place(&ctx);
        let b = RandomOrder::new(7).place(&ctx);
        let c = RandomOrder::new(8).place(&ctx);
        assert_eq!(a, b);
        assert_ne!(a, c);
        a.validate(&program).unwrap();
        c.validate(&program).unwrap();
        assert_eq!(a.padding(&program), 0, "random order packs with no gaps");
    }
}
