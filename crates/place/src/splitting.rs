//! Procedure splitting (the Pettis–Hansen technique the paper's §8 calls
//! out as orthogonal: "procedure splitting ... can therefore be combined
//! with our technique to achieve further improvements").
//!
//! Splitting separates each popular procedure into a *hot* part (the
//! entry-side prefix that executes on most invocations) and a *cold* part
//! (the rarely executed tail). The hot parts — much smaller than the whole
//! procedures — are then placed by any placement algorithm, packing far
//! more of the working set into the cache, while the cold parts are swept
//! into the unpopular tail of the layout.
//!
//! Workflow:
//!
//! 1. [`SplitPlan::from_trace`] — derive each procedure's hot/cold
//!    boundary from the byte extents observed in a training trace.
//! 2. [`SplitProgram::split`] — rewrite the program, producing hot/cold
//!    part procedures plus an id mapping.
//! 3. [`SplitProgram::transform_trace`] — rewrite any trace into the split
//!    id space (a record covering both parts becomes two records).
//! 4. Profile, place, and simulate the split program as usual.

use std::collections::HashMap;

use tempo_program::{Layout, ProcId, Program, ProgramError};
use tempo_trace::{Trace, TraceRecord};

/// Per-procedure hot/cold boundaries, in bytes from the procedure entry.
///
/// A procedure with no entry (or a boundary covering its whole body) is
/// left unsplit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SplitPlan {
    /// `boundary[p]` = hot-prefix length of procedure `p`, if split.
    boundary: HashMap<ProcId, u32>,
}

impl SplitPlan {
    /// Creates an empty plan (splits nothing).
    pub fn new() -> Self {
        SplitPlan::default()
    }

    /// Requests a split of `proc` after `hot_len` bytes. Requests covering
    /// the whole procedure (or leaving an empty part) are ignored at
    /// [`SplitProgram::split`] time.
    pub fn split_at(&mut self, proc: ProcId, hot_len: u32) -> &mut Self {
        self.boundary.insert(proc, hot_len);
        self
    }

    /// The planned boundary for a procedure, if any.
    pub fn boundary(&self, proc: ProcId) -> Option<u32> {
        self.boundary.get(&proc).copied()
    }

    /// Number of procedures the plan would split.
    pub fn len(&self) -> usize {
        self.boundary.len()
    }

    /// Returns `true` if the plan splits nothing.
    pub fn is_empty(&self) -> bool {
        self.boundary.is_empty()
    }

    /// Derives boundaries from a training trace: for each procedure, the
    /// hot part is the smallest prefix covering `coverage` of the observed
    /// executed bytes (so occasional full-body excursions do not inflate
    /// it), rounded up to `align` bytes. Procedures whose hot part is the
    /// whole body are not split.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `(0, 1]` or `align` is zero.
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn from_trace(program: &Program, trace: &Trace, coverage: f64, align: u32) -> SplitPlan {
        assert!(
            coverage > 0.0 && coverage <= 1.0,
            "coverage must be in (0, 1]"
        );
        assert!(align > 0, "alignment must be positive");
        // Distribution of executed extents per procedure.
        let mut extents: HashMap<ProcId, Vec<u32>> = HashMap::new();
        for r in trace.iter() {
            extents.entry(r.proc).or_default().push(r.bytes);
        }
        let mut plan = SplitPlan::new();
        for (proc, mut xs) in extents {
            xs.sort_unstable();
            let idx = ((xs.len() as f64 * coverage).ceil() as usize).clamp(1, xs.len()) - 1;
            let boundary = xs[idx].div_ceil(align) * align;
            if boundary < program.size_of(proc) {
                plan.split_at(proc, boundary);
            }
        }
        plan
    }
}

/// A program rewritten by a [`SplitPlan`], with id mappings in both
/// directions.
#[derive(Debug, Clone)]
pub struct SplitProgram {
    program: Program,
    /// `hot_of[orig]` = id of the hot (or whole) part in the new program.
    hot_of: Vec<ProcId>,
    /// `cold_of[orig]` = id of the cold part, for split procedures.
    cold_of: Vec<Option<ProcId>>,
    /// Hot-prefix length of each split original.
    hot_len: Vec<u32>,
}

impl SplitProgram {
    /// Applies a plan to a program.
    ///
    /// Unsplit procedures keep their relative order and get the first ids;
    /// cold parts are appended after all hot/whole parts (so popularity
    /// and placement treat them as ordinary — unpopular — procedures).
    ///
    /// # Errors
    ///
    /// Returns an error only if the rewritten program would be invalid
    /// (cannot happen for plans produced by [`SplitPlan::from_trace`]).
    pub fn split(program: &Program, plan: &SplitPlan) -> Result<SplitProgram, ProgramError> {
        let mut builder = Program::builder();
        builder.chunk_size(program.chunk_size());
        let mut hot_of = Vec::with_capacity(program.len());
        let mut cold_of = vec![None; program.len()];
        let mut hot_len = vec![0u32; program.len()];
        // Pass 1: hot / whole parts, preserving original order.
        let mut pending_cold: Vec<(ProcId, String, u32)> = Vec::new();
        let mut next_id = 0u32;
        for (id, proc) in program.iter() {
            match plan.boundary(id) {
                Some(b) if b > 0 && b < proc.size() => {
                    builder.procedure(format!("{}#hot", proc.name()), b);
                    hot_of.push(ProcId::new(next_id));
                    hot_len[id.as_usize()] = b;
                    pending_cold.push((id, format!("{}#cold", proc.name()), proc.size() - b));
                }
                _ => {
                    builder.procedure(proc.name().to_string(), proc.size());
                    hot_of.push(ProcId::new(next_id));
                }
            }
            next_id += 1;
        }
        // Pass 2: cold parts at the end.
        for (orig, name, size) in pending_cold {
            builder.procedure(name, size);
            cold_of[orig.as_usize()] = Some(ProcId::new(next_id));
            next_id += 1;
        }
        Ok(SplitProgram {
            program: builder.build()?,
            hot_of,
            cold_of,
            hot_len,
        })
    }

    /// The rewritten program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of procedures in the *original* (pre-split) program.
    pub fn original_len(&self) -> usize {
        self.hot_of.len()
    }

    /// Number of procedures that were actually split.
    pub fn split_count(&self) -> usize {
        self.cold_of.iter().filter(|c| c.is_some()).count()
    }

    /// The hot (or whole) part of an original procedure.
    pub fn hot_part(&self, orig: ProcId) -> ProcId {
        self.hot_of[orig.as_usize()]
    }

    /// The cold part of an original procedure, if it was split.
    pub fn cold_part(&self, orig: ProcId) -> Option<ProcId> {
        self.cold_of[orig.as_usize()]
    }

    /// Rewrites a trace over the original program into the split id space.
    /// A record whose extent crosses the boundary becomes a hot-part record
    /// followed by a cold-part record.
    pub fn transform_trace(&self, trace: &Trace) -> Trace {
        let mut out = Vec::with_capacity(trace.len());
        for r in trace.iter() {
            let hot = self.hot_of[r.proc.as_usize()];
            match self.cold_of[r.proc.as_usize()] {
                Some(cold) => {
                    let boundary = self.hot_len[r.proc.as_usize()];
                    out.push(TraceRecord::new(hot, r.bytes.min(boundary)));
                    if r.bytes > boundary {
                        out.push(TraceRecord::new(cold, r.bytes - boundary));
                    }
                }
                None => out.push(TraceRecord::new(hot, r.bytes)),
            }
        }
        Trace::from_records(out)
    }

    /// Maps a layout of the split program back to original-procedure hot
    /// part addresses (useful for reporting; cold parts live at their own
    /// addresses in the split layout).
    pub fn hot_addresses(&self, layout: &Layout) -> Vec<u64> {
        self.hot_of.iter().map(|h| layout.addr(*h)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gbsc, PlacementAlgorithm, PlacementContext};
    use tempo_cache::{simulate, CacheConfig};
    use tempo_trg::{PopularitySelector, Profiler};

    fn program() -> Program {
        Program::builder()
            .procedure("f", 4096)
            .procedure("g", 1024)
            .build()
            .unwrap()
    }

    #[test]
    fn plan_from_trace_uses_coverage_quantile() {
        let p = program();
        let f = ProcId::new(0);
        // f executes 512 bytes 9 times and its full body once.
        let mut recs = vec![TraceRecord::new(f, 512); 9];
        recs.push(TraceRecord::new(f, 4096));
        let t = Trace::from_records(recs);
        let plan = SplitPlan::from_trace(&p, &t, 0.9, 32);
        assert_eq!(plan.boundary(f), Some(512));
        // Full coverage keeps the whole body -> no split recorded.
        let plan = SplitPlan::from_trace(&p, &t, 1.0, 32);
        assert_eq!(plan.boundary(f), None);
    }

    #[test]
    fn split_rewrites_program_and_ids() {
        let p = program();
        let mut plan = SplitPlan::new();
        plan.split_at(ProcId::new(0), 512);
        let sp = SplitProgram::split(&p, &plan).unwrap();
        assert_eq!(sp.split_count(), 1);
        assert_eq!(sp.program().len(), 3);
        let hot = sp.hot_part(ProcId::new(0));
        let cold = sp.cold_part(ProcId::new(0)).unwrap();
        assert_eq!(sp.program().size_of(hot), 512);
        assert_eq!(sp.program().size_of(cold), 4096 - 512);
        assert_eq!(sp.program().proc(hot).name(), "f#hot");
        assert_eq!(sp.program().proc(cold).name(), "f#cold");
        // g is untouched and keeps a 1:1 mapping.
        let g = sp.hot_part(ProcId::new(1));
        assert_eq!(sp.program().proc(g).name(), "g");
        assert!(sp.cold_part(ProcId::new(1)).is_none());
    }

    #[test]
    fn degenerate_boundaries_do_not_split() {
        let p = program();
        let mut plan = SplitPlan::new();
        plan.split_at(ProcId::new(0), 0);
        plan.split_at(ProcId::new(1), 1024); // whole body
        let sp = SplitProgram::split(&p, &plan).unwrap();
        assert_eq!(sp.split_count(), 0);
        assert_eq!(sp.program().len(), 2);
    }

    #[test]
    fn trace_transform_splits_crossing_records() {
        let p = program();
        let mut plan = SplitPlan::new();
        plan.split_at(ProcId::new(0), 512);
        let sp = SplitProgram::split(&p, &plan).unwrap();
        let t = Trace::from_records(vec![
            TraceRecord::new(ProcId::new(0), 400),  // hot only
            TraceRecord::new(ProcId::new(0), 2000), // crosses
            TraceRecord::new(ProcId::new(1), 100),  // unsplit
        ]);
        let out = sp.transform_trace(&t);
        out.validate(sp.program()).unwrap();
        let recs = out.records();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0], TraceRecord::new(sp.hot_part(ProcId::new(0)), 400));
        assert_eq!(recs[1], TraceRecord::new(sp.hot_part(ProcId::new(0)), 512));
        assert_eq!(
            recs[2],
            TraceRecord::new(sp.cold_part(ProcId::new(0)).unwrap(), 1488)
        );
        assert_eq!(recs[3], TraceRecord::new(sp.hot_part(ProcId::new(1)), 100));
    }

    #[test]
    fn splitting_preserves_total_bytes() {
        let p = program();
        let mut plan = SplitPlan::new();
        plan.split_at(ProcId::new(0), 512);
        let sp = SplitProgram::split(&p, &plan).unwrap();
        assert_eq!(sp.program().total_size(), p.total_size());
    }

    #[test]
    fn split_pipeline_end_to_end_reduces_hot_footprint() {
        // Three 4 KB procedures that interleave but execute only 512-byte
        // prefixes: the prefixes (1.5 KB total) fit a 2 KB cache, the
        // whole bodies do not.
        let p = Program::builder()
            .procedure("a", 4096)
            .procedure("b", 4096)
            .procedure("c", 4096)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = p.ids().collect();
        let mut recs = Vec::new();
        for _ in 0..60 {
            for &x in &ids {
                recs.push(TraceRecord::new(x, 512));
            }
        }
        let trace = Trace::from_records(recs);
        let cache = CacheConfig::direct_mapped(2048).unwrap();

        let plan = SplitPlan::from_trace(&p, &trace, 0.95, 32);
        assert_eq!(plan.len(), 3);
        let sp = SplitProgram::split(&p, &plan).unwrap();
        let strace = sp.transform_trace(&trace);

        let profile = Profiler::new(sp.program(), cache)
            .popularity(PopularitySelector::all())
            .profile(&strace);
        let ctx = PlacementContext::new(sp.program(), &profile);
        let layout = Gbsc::new().place(&ctx);
        layout.validate(sp.program()).unwrap();
        let split_stats = simulate(sp.program(), &layout, &strace, cache);

        // Unsplit reference: GBSC on the original program.
        let profile0 = Profiler::new(&p, cache)
            .popularity(PopularitySelector::all())
            .profile(&trace);
        let ctx0 = PlacementContext::new(&p, &profile0);
        let layout0 = Gbsc::new().place(&ctx0);
        let unsplit_stats = simulate(&p, &layout0, &trace, cache);

        assert!(
            split_stats.misses <= unsplit_stats.misses,
            "split {} vs unsplit {}",
            split_stats.misses,
            unsplit_stats.misses
        );
    }
}
