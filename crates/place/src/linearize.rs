//! §4.3: producing the final linear list from cache-relative alignments.
//!
//! The merging phase of GBSC (and our HKC implementation) decides, for each
//! popular procedure, the cache line at which it should begin. This module
//! realizes those alignments in the linear address space: starting from a
//! procedure with the smallest offset, it repeatedly appends the unplaced
//! popular procedure whose alignment produces the **smallest positive gap**
//! (in cache lines) after the current end, fills gaps with unpopular
//! procedures, and appends the remaining unpopular procedures at the end.

use tempo_cache::CacheConfig;
use tempo_program::{Layout, LayoutBuilder, ProcId, Program};

/// Builds a layout realizing the given cache-relative alignments.
///
/// * `aligned` — `(procedure, cache-line offset)` pairs for the popular
///   procedures; every listed procedure starts at an address congruent to
///   `offset * line_size` modulo the cache size.
/// * `rest` — the remaining (unpopular) procedures; they are used to fill
///   alignment gaps (largest-fit-first) and any left over are appended at
///   the end in the order given.
///
/// Together `aligned` and `rest` must cover every procedure exactly once.
///
/// # Panics
///
/// Panics if a procedure appears twice or the two lists do not cover the
/// program (the resulting layout would be invalid).
pub fn linearize(
    program: &Program,
    cache: CacheConfig,
    aligned: &[(ProcId, u32)],
    rest: &[ProcId],
) -> Layout {
    let line = u64::from(cache.line_size());
    let lines = u64::from(cache.lines());
    let mut builder = LayoutBuilder::new(program);

    // Unpopular procedures available for gap filling, largest first
    // (stable by id for determinism).
    let mut fillers: Vec<ProcId> = rest.to_vec();
    fillers.sort_by_key(|id| (std::cmp::Reverse(program.size_of(*id)), id.index()));

    // Popular procedures not yet placed, with their target line offsets.
    let mut pending: Vec<(ProcId, u32)> = aligned.to_vec();
    // Deterministic starting choice: smallest offset, tie by id (the paper:
    // "select a procedure p with a cache-line offset of 0 (any starting
    // offset will do)").
    pending.sort_by_key(|&(id, off)| (off, id.index()));

    let mut cursor: u64 = 0; // next free byte, line-aligned between placements
    if let Some(&(first, off)) = pending.first() {
        // Start the layout so that `first` lands on its target line with no
        // leading gap: address = offset * line_size.
        cursor = u64::from(off) * line;
        builder.place_at(first, cursor);
        cursor += u64::from(program.size_of(first));
        pending.remove(0);
    }

    while !pending.is_empty() {
        // Current free line (aligned up).
        let aligned_cursor = cursor.div_ceil(line) * line;
        let cur_line = (aligned_cursor / line) % lines;
        // Smallest non-negative gap; ties by procedure id for determinism.
        let mut best: Option<(u64, u32, usize)> = None; // (gap, id, index)
        for (i, &(id, off)) in pending.iter().enumerate() {
            let gap = (u64::from(off) + lines - cur_line) % lines;
            let key = (gap, id.index());
            if best.is_none_or(|(g, pid, _)| key < (g, pid)) {
                best = Some((gap, id.index(), i));
            }
        }
        let (gap, _, idx) = best.expect("pending is non-empty");
        let (id, _) = pending.remove(idx);
        let target = aligned_cursor + gap * line;

        // Fill [cursor, target) with unpopular procedures, largest first.
        let mut fill_cursor = cursor;
        loop {
            let space = target.saturating_sub(fill_cursor);
            if space == 0 || fillers.is_empty() {
                break;
            }
            // Largest filler that fits (fillers are sorted descending).
            match fillers
                .iter()
                .position(|f| u64::from(program.size_of(*f)) <= space)
            {
                Some(fi) => {
                    let f = fillers.remove(fi);
                    builder.place_at(f, fill_cursor);
                    fill_cursor += u64::from(program.size_of(f));
                }
                None => break,
            }
        }

        builder.place_at(id, target);
        cursor = target + u64::from(program.size_of(id));
    }

    // Append remaining unpopular procedures, restoring id order for a
    // stable, readable tail.
    fillers.sort_by_key(|id| id.index());
    for f in fillers {
        builder.append(f);
    }

    builder
        .build()
        .expect("aligned+rest cover the program exactly once")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(sizes: &[u32]) -> Program {
        let mut b = Program::builder();
        for (i, &s) in sizes.iter().enumerate() {
            b.procedure(format!("p{i}"), s);
        }
        b.build().unwrap()
    }

    fn line_of(layout: &Layout, id: ProcId, cache: CacheConfig) -> u32 {
        cache.cache_line_of_addr(layout.addr(id))
    }

    #[test]
    fn respects_alignments() {
        let cache = CacheConfig::direct_mapped_8k();
        let p = program(&[64, 64, 64]);
        let aligned = [
            (ProcId::new(0), 0u32),
            (ProcId::new(1), 10),
            (ProcId::new(2), 100),
        ];
        let l = linearize(&p, cache, &aligned, &[]);
        l.validate(&p).unwrap();
        assert_eq!(line_of(&l, ProcId::new(0), cache), 0);
        assert_eq!(line_of(&l, ProcId::new(1), cache), 10);
        assert_eq!(line_of(&l, ProcId::new(2), cache), 100);
    }

    #[test]
    fn contiguous_offsets_pack_without_gaps() {
        let cache = CacheConfig::direct_mapped_8k();
        // p0: 64 bytes = 2 lines; give p1 offset 2 -> contiguous.
        let p = program(&[64, 64]);
        let l = linearize(&p, cache, &[(ProcId::new(0), 0), (ProcId::new(1), 2)], &[]);
        assert_eq!(l.addr(ProcId::new(0)), 0);
        assert_eq!(l.addr(ProcId::new(1)), 64);
        assert_eq!(l.padding(&p), 0);
    }

    #[test]
    fn wrapping_offsets_produce_gaps() {
        let cache = CacheConfig::direct_mapped_8k();
        // Both procedures want line 0: the second must wait a full cache turn.
        let p = program(&[32, 32]);
        let l = linearize(&p, cache, &[(ProcId::new(0), 0), (ProcId::new(1), 0)], &[]);
        assert_eq!(l.addr(ProcId::new(0)), 0);
        assert_eq!(l.addr(ProcId::new(1)), 8192);
        assert_eq!(line_of(&l, ProcId::new(1), cache), 0);
    }

    #[test]
    fn gap_filling_uses_unpopular_procedures() {
        let cache = CacheConfig::direct_mapped_8k();
        // p0 at line 0 (64 bytes), p1 at line 100 -> gap of 98 lines
        // (3136 bytes). p2 (3000 bytes) fits in the gap; p3 (200) after it.
        let p = program(&[64, 64, 3000, 200]);
        let l = linearize(
            &p,
            cache,
            &[(ProcId::new(0), 0), (ProcId::new(1), 100)],
            &[ProcId::new(2), ProcId::new(3)],
        );
        l.validate(&p).unwrap();
        assert_eq!(line_of(&l, ProcId::new(1), cache), 100);
        // p2 was placed inside the gap.
        assert!(l.addr(ProcId::new(2)) >= 64 && l.addr(ProcId::new(2)) + 3000 <= 3200);
        // p3 fits after p2 within the gap too (64+3000=3064, +200 = 3264 > 3200)
        // so it must be appended at the end instead.
        assert!(l.addr(ProcId::new(3)) >= l.end_addr(ProcId::new(1), &p));
    }

    #[test]
    fn fillers_larger_than_gap_are_appended() {
        let cache = CacheConfig::direct_mapped_8k();
        let p = program(&[64, 64, 8000]);
        let l = linearize(
            &p,
            cache,
            &[(ProcId::new(0), 0), (ProcId::new(1), 4)],
            &[ProcId::new(2)],
        );
        l.validate(&p).unwrap();
        // Gap is 2 lines (64 bytes); the 8000-byte filler cannot fit.
        assert!(l.addr(ProcId::new(2)) >= l.end_addr(ProcId::new(1), &p));
    }

    #[test]
    fn no_popular_procedures_packs_rest() {
        let cache = CacheConfig::direct_mapped_8k();
        let p = program(&[100, 200]);
        let l = linearize(&p, cache, &[], &[ProcId::new(0), ProcId::new(1)]);
        l.validate(&p).unwrap();
        assert_eq!(l.addr(ProcId::new(0)), 0);
        assert_eq!(l.addr(ProcId::new(1)), 100);
    }

    #[test]
    fn starting_procedure_has_smallest_offset() {
        let cache = CacheConfig::direct_mapped_8k();
        let p = program(&[32, 32]);
        // p1 has the smaller offset: it must be laid out first (addr 5*32).
        let l = linearize(
            &p,
            cache,
            &[(ProcId::new(0), 200), (ProcId::new(1), 5)],
            &[],
        );
        assert_eq!(l.addr(ProcId::new(1)), 5 * 32);
        assert!(l.addr(ProcId::new(0)) > l.addr(ProcId::new(1)));
        assert_eq!(line_of(&l, ProcId::new(0), cache), 200);
    }

    #[test]
    fn unaligned_sizes_round_up_to_line_boundaries() {
        let cache = CacheConfig::direct_mapped_8k();
        // p0 is 33 bytes (ends mid-line); p1 wants line 2.
        let p = program(&[33, 32]);
        let l = linearize(&p, cache, &[(ProcId::new(0), 0), (ProcId::new(1), 2)], &[]);
        assert_eq!(line_of(&l, ProcId::new(1), cache), 2);
        assert_eq!(l.addr(ProcId::new(1)), 64);
    }

    #[test]
    #[should_panic(expected = "cover the program")]
    fn panics_on_incomplete_cover() {
        let cache = CacheConfig::direct_mapped_8k();
        let p = program(&[32, 32]);
        linearize(&p, cache, &[(ProcId::new(0), 0)], &[]);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let cache = CacheConfig::direct_mapped_8k();
        let p = program(&[32, 32, 32]);
        let aligned = [
            (ProcId::new(0), 0u32),
            (ProcId::new(1), 1),
            (ProcId::new(2), 1),
        ];
        let a = linearize(&p, cache, &aligned, &[]);
        let b = linearize(&p, cache, &aligned, &[]);
        assert_eq!(a, b);
        // Equal gaps: the smaller id wins the earlier address.
        assert!(a.addr(ProcId::new(1)) < a.addr(ProcId::new(2)));
    }
}
