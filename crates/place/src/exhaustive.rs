//! Brute-force reference placements for validation.
//!
//! For programs small enough to enumerate, these functions find the truly
//! optimal layout by exhaustive search, giving the test suite (and curious
//! users) a ground truth to measure the heuristics against. Two spaces are
//! searched:
//!
//! * [`optimal_order`] — every permutation of gap-free packings (what PH
//!   chooses among), by simulated misses.
//! * [`optimal_offsets`] — every cache-line alignment tuple at a given
//!   granularity (what GBSC chooses among), by simulated misses; the
//!   layout is realized through the same §4.3 linearizer GBSC uses.
//!
//! Both are exponential; they refuse to run beyond a small procedure
//! count.

use tempo_cache::{simulate, CacheConfig};
use tempo_program::{Layout, ProcId, Program};
use tempo_trace::Trace;

use crate::linearize;

/// Maximum procedures `optimal_order` will enumerate (8! = 40320 layouts).
pub const MAX_ORDER_PROCS: usize = 8;
/// Maximum procedures `optimal_offsets` will enumerate.
pub const MAX_OFFSET_PROCS: usize = 5;

/// Finds the gap-free procedure order minimizing simulated misses.
///
/// Ties resolve to the lexicographically first permutation, so the result
/// is deterministic.
///
/// # Panics
///
/// Panics if the program has more than [`MAX_ORDER_PROCS`] procedures.
pub fn optimal_order(program: &Program, trace: &Trace, cache: CacheConfig) -> (Layout, u64) {
    assert!(
        program.len() <= MAX_ORDER_PROCS,
        "optimal_order is exponential; at most {MAX_ORDER_PROCS} procedures"
    );
    let mut order: Vec<ProcId> = program.ids().collect();
    let mut best: Option<(u64, Layout)> = None;
    permute(&mut order, 0, &mut |perm| {
        let layout = Layout::from_order(program, perm).expect("permutation");
        let misses = simulate(program, &layout, trace, cache).misses;
        if best.as_ref().is_none_or(|(b, _)| misses < *b) {
            best = Some((misses, layout));
        }
    });
    let (misses, layout) = best.expect("programs are non-empty");
    (layout, misses)
}

/// Recursive permutation enumeration in lexicographic-ish order.
fn permute<F: FnMut(&[ProcId])>(items: &mut Vec<ProcId>, k: usize, f: &mut F) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

/// Finds the cache-line alignment tuple minimizing simulated misses,
/// scanning offsets in steps of `step` lines, realizing each candidate
/// with the standard linearizer.
///
/// # Panics
///
/// Panics if the program has more than [`MAX_OFFSET_PROCS`] procedures,
/// or `step` is zero.
pub fn optimal_offsets(
    program: &Program,
    trace: &Trace,
    cache: CacheConfig,
    step: u32,
) -> (Layout, u64) {
    assert!(
        program.len() <= MAX_OFFSET_PROCS,
        "optimal_offsets is exponential; at most {MAX_OFFSET_PROCS} procedures"
    );
    assert!(step > 0, "step must be positive");
    let lines = cache.lines();
    let ids: Vec<ProcId> = program.ids().collect();
    let mut offsets = vec![0u32; ids.len()];
    let mut best: Option<(u64, Layout)> = None;

    #[allow(clippy::too_many_arguments)] // recursion carries the whole search state
    fn descend(
        program: &Program,
        trace: &Trace,
        cache: CacheConfig,
        ids: &[ProcId],
        offsets: &mut Vec<u32>,
        depth: usize,
        step: u32,
        lines: u32,
        best: &mut Option<(u64, Layout)>,
    ) {
        if depth == ids.len() {
            let aligned: Vec<(ProcId, u32)> =
                ids.iter().copied().zip(offsets.iter().copied()).collect();
            let layout = linearize(program, cache, &aligned, &[]);
            let misses = simulate(program, &layout, trace, cache).misses;
            if best.as_ref().is_none_or(|(b, _)| misses < *b) {
                *best = Some((misses, layout));
            }
            return;
        }
        // The first procedure's offset is a free gauge choice: fix it at 0.
        let range: Vec<u32> = if depth == 0 {
            vec![0]
        } else {
            (0..lines).step_by(step as usize).collect()
        };
        for off in range {
            offsets[depth] = off;
            descend(
                program,
                trace,
                cache,
                ids,
                offsets,
                depth + 1,
                step,
                lines,
                best,
            );
        }
    }
    descend(
        program,
        trace,
        cache,
        &ids,
        &mut offsets,
        0,
        step,
        lines,
        &mut best,
    );
    let (misses, layout) = best.expect("programs are non-empty");
    (layout, misses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gbsc, PettisHansen, PlacementAlgorithm, PlacementContext};
    use tempo_trg::{PopularitySelector, Profiler};

    fn scenario() -> (Program, Trace, CacheConfig) {
        // The Figure-1 shape: M + X + Y + Z, cache fits three slots.
        let program = Program::builder()
            .procedure("M", 672)
            .procedure("X", 672)
            .procedure("Y", 672)
            .procedure("Z", 672)
            .chunk_size(1024)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = program.ids().collect();
        let mut refs = Vec::new();
        for i in 0..60 {
            refs.push(ids[0]);
            refs.push(if i < 30 { ids[1] } else { ids[2] });
            if i % 4 == 3 {
                refs.push(ids[3]);
            }
        }
        let trace = Trace::from_full_records(&program, refs);
        (program, trace, CacheConfig::direct_mapped(2048).unwrap())
    }

    #[test]
    fn optimal_order_beats_or_ties_all_orders() {
        let (program, trace, cache) = scenario();
        let (layout, misses) = optimal_order(&program, &trace, cache);
        layout.validate(&program).unwrap();
        // Check against a couple of arbitrary orders.
        for order in [
            vec![
                ProcId::new(3),
                ProcId::new(2),
                ProcId::new(1),
                ProcId::new(0),
            ],
            vec![
                ProcId::new(1),
                ProcId::new(3),
                ProcId::new(0),
                ProcId::new(2),
            ],
        ] {
            let l = Layout::from_order(&program, &order).unwrap();
            assert!(misses <= simulate(&program, &l, &trace, cache).misses);
        }
    }

    #[test]
    fn gbsc_is_near_offset_optimal_on_figure1() {
        let (program, trace, cache) = scenario();
        let profile = Profiler::new(&program, cache)
            .popularity(PopularitySelector::all())
            .profile(&trace);
        let ctx = PlacementContext::new(&program, &profile);
        let gbsc = simulate(&program, &Gbsc::new().place(&ctx), &trace, cache).misses;
        // Step of 7 lines keeps the search tractable (64/7 ~ 10 values per
        // procedure) while still finding strong alignments.
        let (_, optimal) = optimal_offsets(&program, &trace, cache, 7);
        assert!(
            gbsc as f64 <= optimal as f64 * 1.25 + 64.0,
            "gbsc {gbsc} vs offset-optimal {optimal}"
        );
        // And both heuristics dominate the worst orders by a wide margin.
        let ph = simulate(&program, &PettisHansen::new().place(&ctx), &trace, cache).misses;
        assert!(gbsc <= ph);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn order_search_refuses_large_programs() {
        let mut b = Program::builder();
        for i in 0..9 {
            b.procedure(format!("p{i}"), 64);
        }
        let program = b.build().unwrap();
        let trace = Trace::new();
        optimal_order(&program, &trace, CacheConfig::direct_mapped_8k());
    }

    #[test]
    fn permutations_cover_factorial() {
        let mut items: Vec<ProcId> = (0..4).map(ProcId::new).collect();
        let mut seen = std::collections::HashSet::new();
        permute(&mut items, 0, &mut |perm| {
            seen.insert(perm.to_vec());
        });
        assert_eq!(seen.len(), 24);
    }
}
