//! The placement-algorithm interface.

use tempo_cache::CacheConfig;
use tempo_program::{Layout, Program};
use tempo_trg::ProfileData;

use crate::budget::{BudgetExhausted, BudgetMeter};

/// Everything a placement algorithm may consult: the program's static shape
/// and the training profile (which carries the target cache geometry),
/// plus an optional execution-budget meter.
#[derive(Debug, Clone, Copy)]
pub struct PlacementContext<'a> {
    /// The program being laid out.
    pub program: &'a Program,
    /// The training profile (WCG, TRGs, popularity, cache geometry).
    pub profile: &'a ProfileData,
    /// Budget meter, if this run is budgeted.
    budget: Option<&'a BudgetMeter>,
}

impl<'a> PlacementContext<'a> {
    /// Bundles a program with its profile (no budget).
    pub fn new(program: &'a Program, profile: &'a ProfileData) -> Self {
        PlacementContext {
            program,
            profile,
            budget: None,
        }
    }

    /// Attaches a budget meter; budget-aware algorithms charge work to it
    /// through [`try_place`](PlacementAlgorithm::try_place).
    pub fn with_budget(mut self, meter: &'a BudgetMeter) -> Self {
        self.budget = Some(meter);
        self
    }

    /// The attached budget meter, if any.
    pub fn budget(&self) -> Option<&'a BudgetMeter> {
        self.budget
    }

    /// Charges `units` of work against the budget, if one is attached.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] once the budget trips; unbudgeted
    /// contexts always succeed.
    pub fn charge(&self, units: u64) -> Result<(), BudgetExhausted> {
        match self.budget {
            Some(meter) => meter.charge(units),
            None => Ok(()),
        }
    }

    /// The cache geometry the profile was gathered for.
    pub fn cache(&self) -> CacheConfig {
        self.profile.cache
    }
}

/// A procedure-placement algorithm: consumes a program + profile, produces
/// a [`Layout`].
///
/// Implementations must be deterministic given the context (any randomness
/// must be seeded at construction), so that experiments are reproducible.
pub trait PlacementAlgorithm {
    /// Short identifier used in reports ("PH", "HKC", "GBSC", ...).
    fn name(&self) -> &str;

    /// Produces a layout covering every procedure of `ctx.program`,
    /// ignoring any attached budget.
    fn place(&self, ctx: &PlacementContext<'_>) -> Layout;

    /// Budget-aware placement: like [`place`](PlacementAlgorithm::place),
    /// but honours a meter attached via
    /// [`PlacementContext::with_budget`], stopping early with
    /// [`BudgetExhausted`] instead of overrunning.
    ///
    /// The default implementation runs [`place`](PlacementAlgorithm::place)
    /// to completion (correct for algorithms whose cost is trivially
    /// bounded, e.g. the baselines).
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the attached budget trips before
    /// placement finishes.
    fn try_place(&self, ctx: &PlacementContext<'_>) -> Result<Layout, BudgetExhausted> {
        Ok(self.place(ctx))
    }
}

impl<T: PlacementAlgorithm + ?Sized> PlacementAlgorithm for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Layout {
        (**self).place(ctx)
    }

    fn try_place(&self, ctx: &PlacementContext<'_>) -> Result<Layout, BudgetExhausted> {
        (**self).try_place(ctx)
    }
}

impl<T: PlacementAlgorithm + ?Sized> PlacementAlgorithm for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Layout {
        (**self).place(ctx)
    }

    fn try_place(&self, ctx: &PlacementContext<'_>) -> Result<Layout, BudgetExhausted> {
        (**self).try_place(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_cache::CacheConfig;
    use tempo_trace::Trace;
    use tempo_trg::Profiler;

    #[test]
    fn context_exposes_cache() {
        let program = Program::builder().procedure("a", 10).build().unwrap();
        let trace = Trace::new();
        let profile = Profiler::new(&program, CacheConfig::direct_mapped_8k()).profile(&trace);
        let ctx = PlacementContext::new(&program, &profile);
        assert_eq!(ctx.cache(), CacheConfig::direct_mapped_8k());
    }

    #[test]
    fn trait_objects_and_refs_work() {
        struct Dummy;
        impl PlacementAlgorithm for Dummy {
            fn name(&self) -> &str {
                "dummy"
            }
            fn place(&self, ctx: &PlacementContext<'_>) -> Layout {
                Layout::source_order(ctx.program)
            }
        }
        let program = Program::builder().procedure("a", 10).build().unwrap();
        let profile =
            Profiler::new(&program, CacheConfig::direct_mapped_8k()).profile(&Trace::new());
        let ctx = PlacementContext::new(&program, &profile);

        let boxed: Box<dyn PlacementAlgorithm> = Box::new(Dummy);
        assert_eq!(boxed.name(), "dummy");
        assert_eq!(boxed.place(&ctx).len(), 1);
        let by_ref = &Dummy;
        assert_eq!(by_ref.name(), "dummy");
    }
}
