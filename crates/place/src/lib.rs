//! Procedure-placement algorithms for the **tempo** toolkit.
//!
//! This crate implements the three algorithms compared in the paper's
//! evaluation (§5), plus baselines and the conflict metrics used in its
//! Figure 6 correlation study:
//!
//! * [`SourceOrder`] — the compiler-default layout (procedures in id
//!   order), the baseline every miss-rate table is measured against.
//! * [`RandomOrder`] — a seeded random permutation, useful as a sanity
//!   bound.
//! * [`PettisHansen`] (PH) — the classic greedy chain-merging algorithm
//!   driven by call-graph edge weights (§2).
//! * [`CacheColoring`] (HKC) — a Hashemi–Kaeli–Calder-style placement that
//!   extends PH with procedure sizes and cache geometry: it tracks the
//!   cache lines each placed procedure occupies and picks alignments that
//!   avoid overlap with call-graph neighbours, but uses no temporal
//!   information.
//! * [`Gbsc`] — the paper's contribution: greedy merging over the
//!   procedure-grain `TRG_select`, with cache-relative alignments chosen by
//!   scanning every offset against the chunk-grain `TRG_place`
//!   (the `merge_nodes` routine of Figure 4), followed by the smallest-
//!   positive-gap linearization of §4.3.
//! * [`GbscSetAssoc`] — the §6 extension for set-associative caches,
//!   costing alignments with the pair database `D(p, {r, s})`.
//! * [`metric`] — placement-wide conflict metrics (TRG- and WCG-based) for
//!   the Figure 6 correlation experiment.
//!
//! # Example
//!
//! ```
//! use tempo_program::Program;
//! use tempo_trace::Trace;
//! use tempo_cache::{CacheConfig, simulate};
//! use tempo_trg::{Profiler, PopularitySelector};
//! use tempo_place::{Gbsc, PlacementAlgorithm, PlacementContext};
//!
//! let program = Program::builder()
//!     .procedure("m", 4096)
//!     .procedure("x", 4096)
//!     .procedure("pad", 4096)
//!     .procedure("y", 4096)
//!     .build()?;
//! let ids: Vec<_> = program.ids().collect();
//! // m and y alternate heavily; under source order they conflict in 8 KB.
//! let mut refs = Vec::new();
//! for _ in 0..50 { refs.extend([ids[0], ids[3]]); }
//! let trace = Trace::from_full_records(&program, refs);
//!
//! let profile = Profiler::new(&program, CacheConfig::direct_mapped_8k())
//!     .popularity(PopularitySelector::all())
//!     .profile(&trace);
//! let ctx = PlacementContext::new(&program, &profile);
//! let layout = Gbsc::new().place(&ctx);
//!
//! let stats = simulate(&program, &layout, &trace, CacheConfig::direct_mapped_8k());
//! assert!(stats.miss_rate() < 0.05, "GBSC must separate m and y");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// In the test build, `unwrap` IS the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]
// Outside tests this crate must never panic on a Result: the workspace
// warns on `unwrap_used`; here it is a hard error.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod ablate;
mod baseline;
pub mod budget;
mod context;
pub mod exhaustive;
mod gbsc;
mod hkc;
mod linearize;
pub mod metric;
mod ph;
pub mod splitting;

pub use ablate::{TrgChains, WcgOffsets};
pub use baseline::{RandomOrder, SourceOrder};
pub use budget::{
    place_with_fallback, Budget, BudgetExhausted, BudgetMeter, Degradation, DegradationTier,
};
pub use context::{PlacementAlgorithm, PlacementContext};
pub use gbsc::{Gbsc, GbscSetAssoc, PlacementTuples};
pub use hkc::CacheColoring;
pub use linearize::linearize;
pub use ph::PettisHansen;
pub use splitting::{SplitPlan, SplitProgram};
