//! Ablation variants of GBSC, isolating the paper's two ingredients.
//!
//! §4 of the paper: "We have found however that extra temporal ordering
//! information alone is not sufficient to guarantee lower instruction
//! cache miss rates." The ingredients are separable:
//!
//! 1. **What drives selection** — WCG (PH) vs. `TRG_select` (GBSC).
//! 2. **How nodes combine** — byte-adjacent chains (PH) vs. the
//!    cache-relative offset scan over `TRG_place` (GBSC).
//!
//! [`TrgChains`] takes ingredient 1 without ingredient 2 (temporal
//! selection, chain placement): the configuration the paper warns about.
//! [`WcgOffsets`] takes ingredient 2 without ingredient 1 (call-graph
//! selection, offset-scan placement). Comparing `PH`, `TrgChains`,
//! `WcgOffsets`, and `Gbsc` quantifies each ingredient's contribution —
//! the `ablation_chains` binary in `tempo-bench` runs exactly that.

use tempo_program::{Layout, ProcId};
use tempo_trg::{ProfileData, WeightedGraph};

use crate::{PlacementAlgorithm, PlacementContext};

/// GBSC's selection (greedy `TRG_select` merging) with PH's placement
/// (chains combined to minimize the distance between the heaviest edge's
/// endpoints). The "temporal information alone" ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrgChains;

impl TrgChains {
    /// Creates the ablation algorithm.
    pub fn new() -> Self {
        TrgChains
    }
}

impl PlacementAlgorithm for TrgChains {
    fn name(&self) -> &str {
        "TRG+chains"
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Layout {
        // Chain-merge over TRG_select (popular procedures only), then
        // append every other procedure in id order.
        let order = chain_merge_order(ctx, &ctx.profile.trg_select);
        Layout::from_order(ctx.program, &order).expect("order is a permutation")
    }
}

/// PH's selection (greedy WCG merging, popular procedures only) with
/// GBSC's placement machinery (offset scan costed by `TRG_place`).
/// The "cache awareness alone" ablation — equivalent to running
/// [`Gbsc`](crate::Gbsc) with the WCG substituted for `TRG_select`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WcgOffsets;

impl WcgOffsets {
    /// Creates the ablation algorithm.
    pub fn new() -> Self {
        WcgOffsets
    }
}

impl PlacementAlgorithm for WcgOffsets {
    fn name(&self) -> &str {
        "WCG+offsets"
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Layout {
        // Build a popular-only WCG and hand it to GBSC's engine by
        // substituting it into a cloned profile.
        let mut wcg_popular = WeightedGraph::new();
        for e in ctx.profile.wcg.edges() {
            let (a, b) = (ProcId::new(e.a), ProcId::new(e.b));
            if ctx.profile.popular.is_popular(a) && ctx.profile.popular.is_popular(b) {
                wcg_popular.add_weight(e.a, e.b, e.w);
            }
        }
        let mut profile: ProfileData = ctx.profile.clone();
        profile.trg_select = wcg_popular;
        let sub = PlacementContext::new(ctx.program, &profile);
        crate::Gbsc::new().place(&sub)
    }
}

/// Greedy chain merge over an arbitrary selection graph, PH-style.
/// Returns a full procedure order (graph nodes first, grouped by chain
/// weight; procedures absent from the graph appended in id order).
#[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
fn chain_merge_order(ctx: &PlacementContext<'_>, selection: &WeightedGraph) -> Vec<ProcId> {
    use std::collections::HashMap;

    let program = ctx.program;
    let mut working = selection.clone();
    let mut node_of: Vec<u32> = (0..program.len() as u32).collect();
    let mut chains: HashMap<u32, Vec<ProcId>> =
        program.ids().map(|id| (id.index(), vec![id])).collect();

    while let Some(e) = working.heaviest_edge() {
        let (u, v) = (e.a, e.b);
        let a = chains.remove(&u).expect("u live");
        let b = chains.remove(&v).expect("v live");
        // Heaviest original cross edge decides the combination.
        let mut heavy: Option<(f64, ProcId, ProcId)> = None;
        for &p in &a {
            for q in selection.neighbors(p.index()) {
                if node_of[q as usize] != v {
                    continue;
                }
                let w = selection.weight(p.index(), q);
                if heavy.as_ref().is_none_or(|(hw, _, _)| w > *hw) {
                    heavy = Some((w, p, ProcId::new(q)));
                }
            }
        }
        let (_, hp, hq) = heavy.expect("cross edge exists");
        let combined = crate::ph::best_combination(program, &a, &b, hp, hq);
        for &pid in &b {
            node_of[pid.as_usize()] = u;
        }
        chains.insert(u, combined);
        working.merge_nodes(u, v);
    }

    let mut remaining: Vec<(u32, Vec<ProcId>)> = chains.into_iter().collect();
    remaining.sort_by_key(|(rep, chain)| {
        let count: u64 = chain
            .iter()
            .map(|id| ctx.profile.popular.count_of(*id))
            .sum();
        (std::cmp::Reverse(count), *rep)
    });
    remaining.into_iter().flat_map(|(_, c)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_cache::{simulate, CacheConfig};
    use tempo_program::Program;
    use tempo_trace::Trace;
    use tempo_trg::{PopularitySelector, Profiler};

    fn phased_setup() -> (Program, Trace, CacheConfig) {
        // M + four siblings in two phases; cache fits M + two siblings.
        let program = Program::builder()
            .procedure("M", 1024)
            .procedure("s1", 2048)
            .procedure("s2", 2048)
            .procedure("s3", 2048)
            .procedure("s4", 2048)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = program.ids().collect();
        let mut refs = Vec::new();
        for _ in 0..50 {
            refs.extend([ids[0], ids[1], ids[0], ids[2]]);
        }
        for _ in 0..50 {
            refs.extend([ids[0], ids[3], ids[0], ids[4]]);
        }
        let trace = Trace::from_full_records(&program, refs);
        (program, trace, CacheConfig::direct_mapped(4096).unwrap())
    }

    fn profile(program: &Program, trace: &Trace, cache: CacheConfig) -> tempo_trg::ProfileData {
        Profiler::new(program, cache)
            .popularity(PopularitySelector::all())
            .profile(trace)
    }

    #[test]
    fn ablations_produce_valid_layouts() {
        let (program, trace, cache) = phased_setup();
        let prof = profile(&program, &trace, cache);
        let ctx = PlacementContext::new(&program, &prof);
        for alg in [
            &TrgChains::new() as &dyn PlacementAlgorithm,
            &WcgOffsets::new(),
        ] {
            let layout = alg.place(&ctx);
            layout
                .validate(&program)
                .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        }
    }

    #[test]
    fn full_gbsc_at_least_matches_both_ablations() {
        let (program, trace, cache) = phased_setup();
        let prof = profile(&program, &trace, cache);
        let ctx = PlacementContext::new(&program, &prof);
        let gbsc = simulate(&program, &crate::Gbsc::new().place(&ctx), &trace, cache);
        let chains = simulate(&program, &TrgChains::new().place(&ctx), &trace, cache);
        let wcg = simulate(&program, &WcgOffsets::new().place(&ctx), &trace, cache);
        assert!(
            gbsc.misses <= chains.misses,
            "gbsc {} vs trg+chains {}",
            gbsc.misses,
            chains.misses
        );
        assert!(
            gbsc.misses <= wcg.misses,
            "gbsc {} vs wcg+offsets {}",
            gbsc.misses,
            wcg.misses
        );
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(TrgChains::new().name(), WcgOffsets::new().name());
    }
}
