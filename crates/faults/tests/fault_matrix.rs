//! The robustness matrix: every fault class × {strict, lossy} × seeds.
//!
//! Contract under test (DESIGN.md §8):
//!
//! * strict readers return `Ok` or a *structured* `TraceIoError` — never
//!   a panic;
//! * lossy readers are total: they always return a trace that fits the
//!   program, with `TraceWarnings` tallying what was repaired or dropped;
//! * the downstream pipeline (lossy profile → placement) stays
//!   panic-free on every recovered trace;
//! * a starved budget still yields an analyzer-clean identity layout and
//!   a `Degradation` record naming the tier.

#![allow(clippy::unwrap_used)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use tempo::prelude::*;
use tempo_faults::FaultClass;

const SEEDS: u64 = 8;

/// A program with mixed procedure sizes and a phase-structured trace,
/// serialized to the binary format the injectors corrupt.
fn fixture() -> (Program, Vec<u8>) {
    let mut builder = Program::builder();
    for (i, size) in [1024u32, 4096, 2048, 8192, 512, 4096, 1024, 2048]
        .into_iter()
        .enumerate()
    {
        builder.procedure(format!("p{i}"), size);
    }
    let program = builder.build().unwrap();
    let ids: Vec<ProcId> = program.ids().collect();
    let mut refs = Vec::new();
    for phase in 0..4 {
        for i in 0..200 {
            refs.push(ids[(phase + i) % ids.len()]);
            refs.push(ids[phase % ids.len()]);
        }
    }
    let trace = Trace::from_full_records(&program, refs);
    let mut bytes = Vec::new();
    tempo::trace::io::write_binary(&mut bytes, &trace).unwrap();
    (program, bytes)
}

#[test]
fn readers_never_panic_and_lossy_always_recovers() {
    let (program, bytes) = fixture();
    for class in FaultClass::ALL {
        for seed in 0..SEEDS {
            let corrupt = class.inject(&bytes, seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let strict = tempo::trace::io::read_binary(corrupt.as_slice());
                let lossy = tempo::trace::io::read_binary_lossy(corrupt.as_slice(), Some(&program));
                (strict, lossy)
            }));
            let (strict, lossy) =
                outcome.unwrap_or_else(|_| panic!("reader panicked: {class} seed {seed}"));

            // Lossy mode is total and its output always fits the program.
            let (trace, warnings) =
                lossy.unwrap_or_else(|e| panic!("lossy read failed: {class} seed {seed}: {e}"));
            assert!(
                trace.validate(&program).is_ok(),
                "lossy output does not fit the program: {class} seed {seed}"
            );

            // Class-specific expectations.
            match class {
                // Any cut below the full length loses header or record
                // bytes, which strict mode must report.
                FaultClass::Truncate => {
                    assert!(strict.is_err(), "truncate seed {seed} read strictly");
                }
                // A deleted record contradicts the declared count.
                FaultClass::StackUnbalance => {
                    assert!(
                        matches!(
                            strict,
                            Err(tempo::trace::io::TraceIoError::Truncated { .. })
                        ),
                        "unbalance seed {seed} not reported as truncation"
                    );
                    assert!(warnings.count_mismatch >= 1, "seed {seed}: {warnings}");
                }
                // Any header byte change is either a magic/version defect
                // or a count that disagrees with the records on disk.
                FaultClass::HeaderMangle => {
                    assert!(
                        warnings.header_mangled + warnings.count_mismatch >= 1,
                        "mangle seed {seed} left no warning: {warnings}"
                    );
                }
                // Remapped ids parse fine but name no known procedure:
                // strict output fails validation, lossy drops and counts.
                FaultClass::ProcIdRemap => {
                    let strict_trace = strict
                        .unwrap_or_else(|e| panic!("remap seed {seed} should parse strictly: {e}"));
                    assert!(strict_trace.validate(&program).is_err());
                    assert!(warnings.unknown_proc >= 1, "seed {seed}: {warnings}");
                }
                // Bit flips, splices, and mid-stream mangles can produce
                // any byte pattern, so the only universal guarantees are
                // the ones asserted above for every class.
                FaultClass::BitFlip | FaultClass::RecordSplice | FaultClass::FrameMangle => {}
            }
        }
    }
}

/// Re-frames the fixture trace into the v2 container with small frames so
/// every fault class has many frame headers and payloads to land in.
fn v2_fixture_bytes(v1: &[u8]) -> Vec<u8> {
    let trace = tempo::trace::io::read_binary(v1).unwrap();
    tempo::trace::testkit::v2_bytes(&trace, 100).unwrap()
}

#[test]
fn v2_streaming_readers_never_panic_and_lossy_always_recovers() {
    let (program, v1) = fixture();
    let bytes = v2_fixture_bytes(&v1);
    for class in FaultClass::ALL {
        for seed in 0..SEEDS {
            let corrupt = class.inject(&bytes, seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let strict = tempo::trace::v2::read_binary_v2(corrupt.as_slice());
                let lossy =
                    tempo::trace::v2::read_binary_v2_lossy(corrupt.as_slice(), Some(&program));
                (strict, lossy)
            }));
            let (strict, lossy) =
                outcome.unwrap_or_else(|_| panic!("v2 reader panicked: {class} seed {seed}"));

            // Lossy mode is total and its output always fits the program.
            let (trace, warnings) =
                lossy.unwrap_or_else(|e| panic!("v2 lossy read failed: {class} seed {seed}: {e}"));
            assert!(
                trace.validate(&program).is_ok(),
                "v2 lossy output does not fit the program: {class} seed {seed}"
            );

            match class {
                // One mangled byte past the preamble always breaks exactly
                // one frame: its CRC (or length/count prefix) no longer
                // matches, so strict mode rejects and lossy mode skips it.
                FaultClass::FrameMangle => {
                    assert!(strict.is_err(), "frame-mangle seed {seed} read strictly");
                    assert!(
                        warnings.bad_frames >= 1,
                        "frame-mangle seed {seed} left no bad-frame warning: {warnings}"
                    );
                }
                // The mangle targets the first 16 bytes, but the v2
                // preamble is only 8: the hit corrupts either the
                // magic/version or the first frame's header.
                FaultClass::HeaderMangle => {
                    assert!(strict.is_err(), "header-mangle seed {seed} read strictly");
                    assert!(
                        warnings.header_mangled + warnings.bad_frames >= 1,
                        "header-mangle seed {seed}: {warnings}"
                    );
                }
                // The remaining classes assume v1 offsets, so on the v2
                // container they degenerate to arbitrary edits (and a cut
                // at a frame boundary is a *valid* shorter v2 stream —
                // the format declares no total count); only the universal
                // guarantees above apply.
                FaultClass::Truncate
                | FaultClass::BitFlip
                | FaultClass::RecordSplice
                | FaultClass::StackUnbalance
                | FaultClass::ProcIdRemap => {}
            }
        }
    }
}

#[test]
fn v1_streaming_source_matches_materialized_reader_on_corrupt_input() {
    let (program, bytes) = fixture();
    for class in FaultClass::ALL {
        for seed in 0..SEEDS {
            let corrupt = class.inject(&bytes, seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut source =
                    tempo::trace::io::V1Source::new_lossy(corrupt.as_slice(), Some(&program))
                        .expect("lossy open is total");
                let mut sink = Trace::default();
                pump(&mut source, &mut sink).expect("lossy stream is total");
                (sink, source.warnings())
            }));
            let (streamed, stream_warnings) =
                outcome.unwrap_or_else(|_| panic!("v1 source panicked: {class} seed {seed}"));
            let (materialized, mat_warnings) =
                tempo::trace::io::read_binary_lossy(corrupt.as_slice(), Some(&program))
                    .expect("lossy reads are total");
            assert_eq!(
                streamed.records().len(),
                materialized.records().len(),
                "streamed and materialized lossy reads disagree: {class} seed {seed}"
            );
            assert_eq!(
                stream_warnings, mat_warnings,
                "warning tallies disagree: {class} seed {seed}"
            );
        }
    }
}

#[test]
fn lossy_pipeline_places_cleanly_on_every_corrupted_trace() {
    let (program, bytes) = fixture();
    for class in FaultClass::ALL {
        for seed in 0..SEEDS {
            let corrupt = class.inject(&bytes, seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let (trace, _) =
                    tempo::trace::io::read_binary_lossy(corrupt.as_slice(), Some(&program))
                        .expect("lossy reads are total");
                let (session, _) = Session::new(&program, CacheConfig::direct_mapped_8k())
                    .popularity(PopularitySelector::all())
                    .profile_lossy(&trace);
                session.place(&Gbsc::new())
            }));
            let layout =
                outcome.unwrap_or_else(|_| panic!("pipeline panicked: {class} seed {seed}"));
            layout
                .validate(&program)
                .unwrap_or_else(|e| panic!("invalid layout: {class} seed {seed}: {e}"));
        }
    }
}

/// Writes the fixture trace as a small-frame v2 file for sharded runs and
/// returns its path plus the sequential profile to compare against.
fn sharded_fixture(tag: &str) -> (Program, std::path::PathBuf, tempo::trg::ProfileData) {
    let (program, v1) = fixture();
    let bytes = v2_fixture_bytes(&v1);
    let path = std::env::temp_dir().join(format!(
        "tempo-fault-shards-{tag}-{}.tmp2",
        std::process::id()
    ));
    std::fs::write(&path, &bytes).unwrap();
    let sequential = {
        let (session, _) = Session::new(&program, CacheConfig::direct_mapped_8k())
            .popularity(PopularitySelector::all())
            .profile_with(|| {
                let f = std::fs::File::open(&path).map_err(tempo::trace::io::TraceIoError::from)?;
                tempo::trace::v2::V2Source::new(std::io::BufReader::new(f))
            })
            .unwrap();
        session.profile().clone()
    };
    (program, path, sequential)
}

fn shard_config() -> tempo::ShardConfig {
    tempo::ShardConfig {
        shards: 4,
        jobs: 2,
        max_retries: 2,
        retry_backoff: std::time::Duration::ZERO,
        ..tempo::ShardConfig::default()
    }
}

#[test]
fn supervisor_retries_injected_kills_across_seeds_without_escaping_panics() {
    use tempo_faults::{RuntimeFault, RuntimeFaultPlan};
    let (program, path, sequential) = sharded_fixture("kill");
    for seed in 0..4u64 {
        let config = shard_config();
        // A different shard dies on its first attempt each "seed".
        let victim = usize::try_from(seed).unwrap() % config.shards;
        let plan = RuntimeFaultPlan::new().fault(victim, 1, RuntimeFault::ShardKill);
        let hook = plan.hook();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            tempo::profile_sharded(
                &program,
                CacheConfig::direct_mapped_8k(),
                PopularitySelector::all(),
                false,
                &path,
                &config,
                Some(&hook),
            )
        }));
        let result = outcome.unwrap_or_else(|_| panic!("supervisor leaked a panic: seed {seed}"));
        let (profile, report) = result.unwrap_or_else(|e| panic!("run failed: seed {seed}: {e}"));
        assert_eq!(report.quarantined(), 0, "seed {seed}");
        assert!(report.retried >= 1, "seed {seed}: kill was never retried");
        assert_eq!(
            profile, sequential,
            "seed {seed}: retry changed the profile"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn persistent_kill_quarantines_with_a_record_and_honors_the_coverage_floor() {
    use tempo_faults::{RuntimeFault, RuntimeFaultPlan};
    let (program, path, sequential) = sharded_fixture("quarantine");
    // Fail shard 1 on every attempt.
    let plan = RuntimeFaultPlan::new().fault(1, u32::MAX, RuntimeFault::ShardKill);
    let hook = plan.hook();

    // Strict floor (the default 1.0): the run fails with a typed error.
    let err = tempo::profile_sharded(
        &program,
        CacheConfig::direct_mapped_8k(),
        PopularitySelector::all(),
        false,
        &path,
        &shard_config(),
        Some(&hook),
    )
    .unwrap_err();
    assert!(
        matches!(err, tempo::ShardError::CoverageFloor { quarantined: 1, .. }),
        "expected a coverage-floor failure, got: {err}"
    );

    // Relaxed floor: the run completes minus the quarantined shard, and
    // the outcome names the injected fault.
    let config = tempo::ShardConfig {
        coverage_floor: 0.5,
        ..shard_config()
    };
    let (profile, report) = tempo::profile_sharded(
        &program,
        CacheConfig::direct_mapped_8k(),
        PopularitySelector::all(),
        false,
        &path,
        &config,
        Some(&hook),
    )
    .unwrap();
    assert_eq!(report.quarantined(), 1);
    assert!(report.coverage() < 1.0 && report.coverage() >= 0.5);
    let q = &report.outcomes[1];
    match &q.status {
        tempo::ShardStatus::Quarantined { attempts, error } => {
            assert_eq!(*attempts, 3, "max_retries 2 means 3 attempts");
            assert!(error.contains("injected shard-kill"), "error: {error}");
        }
        other => panic!("shard 1 should be quarantined, was {other:?}"),
    }
    // Dropping a shard can only lose edge weight, never invent it.
    assert!(profile.wcg.total_weight() < sequential.wcg.total_weight());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn stalled_shard_trips_the_deadline_and_recovers_on_retry() {
    use tempo_faults::{RuntimeFault, RuntimeFaultPlan};
    let (program, path, sequential) = sharded_fixture("stall");
    // The deadline must sit well above real per-shard work (tens of
    // milliseconds in a debug build, but orders of magnitude more when
    // the whole workspace test suite saturates the machine) and well
    // below the injected stall — keep a wide gap on both sides.
    let config = tempo::ShardConfig {
        shard_deadline: Budget::millis(3000),
        ..shard_config()
    };
    let plan = RuntimeFaultPlan::new().fault(
        2,
        1,
        RuntimeFault::ShardStall(std::time::Duration::from_secs(10)),
    );
    let hook = plan.hook();
    let (profile, report) = tempo::profile_sharded(
        &program,
        CacheConfig::direct_mapped_8k(),
        PopularitySelector::all(),
        false,
        &path,
        &config,
        Some(&hook),
    )
    .unwrap();
    assert!(report.retried >= 1, "stall was never retried");
    assert_eq!(report.quarantined(), 0);
    assert_eq!(profile, sequential, "stall retry changed the profile");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn starved_budget_yields_analyzer_clean_identity_layout() {
    let (program, bytes) = fixture();
    let trace = tempo::trace::io::read_binary(bytes.as_slice()).unwrap();
    let session = Session::new(&program, CacheConfig::direct_mapped_8k())
        .popularity(PopularitySelector::all())
        .profile(&trace);
    let (layout, report, degradation) =
        session.place_checked_budgeted(&Gbsc::new(), Budget::work_units(1));
    assert_eq!(degradation.tier, DegradationTier::Identity);
    assert_eq!(degradation.ran, "default");
    assert!(degradation.is_degraded());
    assert!(!degradation.exhausted.is_empty());
    assert_eq!(layout, Layout::source_order(&program));
    assert_eq!(report.error_count(), 0, "{}", report.render_text(&program));
    layout.validate(&program).unwrap();
}

#[test]
fn budgeted_placement_never_panics_even_on_recovered_traces() {
    let (program, bytes) = fixture();
    // Corrupt, recover, then place under a sweep of budgets: the fallback
    // chain must stay panic-free and always produce a valid layout.
    for class in [FaultClass::BitFlip, FaultClass::RecordSplice] {
        let corrupt = class.inject(&bytes, 1);
        let (trace, _) = tempo::trace::io::read_binary_lossy(corrupt.as_slice(), Some(&program))
            .expect("lossy reads are total");
        let (session, _) = Session::new(&program, CacheConfig::direct_mapped_8k())
            .popularity(PopularitySelector::all())
            .profile_lossy(&trace);
        for budget in [
            Budget::work_units(1),
            Budget::work_units(50),
            Budget::unlimited(),
        ] {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                session.place_budgeted(&Gbsc::new(), budget)
            }));
            let (layout, _) =
                outcome.unwrap_or_else(|_| panic!("budgeted place panicked: {class} {budget:?}"));
            layout.validate(&program).unwrap();
        }
    }
}
