//! Deterministic fault injectors for the tempo binary trace format.
//!
//! Real profiling pipelines hand the layout tool traces that were cut off
//! by a crashing profiler, spliced together from shards, bit-rotted on
//! disk, or produced by an instrumentation pass whose call stack lost
//! track of itself. This crate synthesizes those defects *reproducibly*
//! so the robustness contract of `tempo-trace`'s readers — strict mode
//! returns a structured error, lossy mode recovers with `TraceWarnings`
//! counters, and nothing ever panics — can be asserted over a full fault
//! matrix (see `tests/fault_matrix.rs`).
//!
//! Each injector is a pure function of `(input bytes, seed)`: the same
//! seed always produces the same corruption, so a failing matrix cell can
//! be replayed in isolation.
//!
//! The injectors operate on serialized bytes, so they apply to both
//! trace containers. The v1 form documented in `tempo-trace::io` is a
//! 16-byte header (`TMPO` magic, version `u32` LE, record count `u64` LE)
//! followed by fixed 8-byte records (proc `u32` LE, bytes `u32` LE). The
//! v2 form documented in `tempo-trace::v2` is an 8-byte preamble (`TMP2`
//! magic, version `u32` LE) followed by CRC-framed chunks of varint
//! records; [`FaultClass::FrameMangle`] targets the region past that
//! preamble so v2 frame headers and payloads get corrupted too.

// In the test build, `unwrap` IS the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Serialized header length: magic (4) + version (4) + record count (8).
pub const HEADER_LEN: usize = 16;

/// Serialized record length: proc id (4) + byte extent (4).
pub const RECORD_LEN: usize = 8;

/// v2 container preamble length: magic (4) + version (4).
pub const HEADER_LEN_V2: usize = 8;

/// One class of trace corruption the injectors can synthesize.
///
/// Deliberately *not* `#[non_exhaustive]`: the fault matrix matches on
/// every class so that adding a new injector forces every matrix cell to
/// state its expectations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Cuts the byte stream short at a random point — a profiler that
    /// died mid-write. May land inside the header or mid-record.
    Truncate,
    /// Flips up to eight random bits anywhere in the stream — bit rot or
    /// a flaky transport.
    BitFlip,
    /// Splices 1–7 extra bytes between records, knocking every later
    /// record out of frame — shards concatenated at a non-record boundary.
    RecordSplice,
    /// XORs one byte within the 16-byte header — a corrupted magic,
    /// version, or declared record count.
    HeaderMangle,
    /// Deletes one interior record without updating the header count — an
    /// instrumentation pass whose call stack lost a return and emitted
    /// fewer transitions than it counted.
    StackUnbalance,
    /// Rewrites the proc-id field of up to four records to values no
    /// program defines — a stale symbol table or id-space mismatch.
    ProcIdRemap,
    /// XORs one byte past the 8-byte v2 preamble — lands in a frame
    /// header or varint payload, breaking exactly one frame's CRC (on
    /// the v1 container the same offsets cover the declared count and
    /// the record array).
    FrameMangle,
}

impl FaultClass {
    /// Every fault class, for matrix-style iteration.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::Truncate,
        FaultClass::BitFlip,
        FaultClass::RecordSplice,
        FaultClass::HeaderMangle,
        FaultClass::StackUnbalance,
        FaultClass::ProcIdRemap,
        FaultClass::FrameMangle,
    ];

    /// Stable lowercase name, used in test output and CI logs.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Truncate => "truncate",
            FaultClass::BitFlip => "bit-flip",
            FaultClass::RecordSplice => "record-splice",
            FaultClass::HeaderMangle => "header-mangle",
            FaultClass::StackUnbalance => "stack-unbalance",
            FaultClass::ProcIdRemap => "proc-id-remap",
            FaultClass::FrameMangle => "frame-mangle",
        }
    }

    /// Applies this corruption to a serialized trace.
    ///
    /// Deterministic in `(self, bytes, seed)`. Inputs too small to host
    /// the corruption (e.g. a record-level fault on a header-only stream)
    /// are returned unchanged rather than panicking — the injectors are
    /// total, like the readers they exercise.
    pub fn inject(self, bytes: &[u8], seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = bytes.to_vec();
        match self {
            FaultClass::Truncate => {
                if !out.is_empty() {
                    let cut = rng.gen_range(0..out.len());
                    out.truncate(cut);
                }
            }
            FaultClass::BitFlip => {
                if !out.is_empty() {
                    let flips: usize = rng.gen_range(1..=8);
                    for _ in 0..flips {
                        let i = rng.gen_range(0..out.len());
                        let bit: u32 = rng.gen_range(0..8);
                        out[i] ^= 1 << bit;
                    }
                }
            }
            FaultClass::RecordSplice => {
                let n: usize = rng.gen_range(1..RECORD_LEN);
                let at = if out.len() > HEADER_LEN {
                    rng.gen_range(HEADER_LEN..=out.len())
                } else {
                    out.len()
                };
                let chunk: Vec<u8> = (0..n).map(|_| rng.gen::<u8>()).collect();
                out.splice(at..at, chunk);
            }
            FaultClass::HeaderMangle => {
                if !out.is_empty() {
                    let span = out.len().min(HEADER_LEN);
                    let i = rng.gen_range(0..span);
                    let mask: u8 = rng.gen_range(1..=255);
                    out[i] ^= mask;
                }
            }
            FaultClass::StackUnbalance => {
                let records = complete_records(&out);
                if records > 0 {
                    let victim = rng.gen_range(0..records);
                    let start = HEADER_LEN + victim * RECORD_LEN;
                    out.drain(start..start + RECORD_LEN);
                }
            }
            FaultClass::ProcIdRemap => {
                let records = complete_records(&out);
                if records > 0 {
                    let hits = rng.gen_range(1..=records.min(4));
                    for _ in 0..hits {
                        let r = rng.gen_range(0..records);
                        let start = HEADER_LEN + r * RECORD_LEN;
                        // High-half ids: out of range for any realistic
                        // program, so the defect is detectable by readers
                        // that know the program.
                        let bogus: u32 = 0xFFFF_0000 | rng.gen_range(0..0xFFFF_u32);
                        out[start..start + 4].copy_from_slice(&bogus.to_le_bytes());
                    }
                }
            }
            FaultClass::FrameMangle => {
                if out.len() > HEADER_LEN_V2 {
                    let i = rng.gen_range(HEADER_LEN_V2..out.len());
                    let mask: u8 = rng.gen_range(1..=255);
                    out[i] ^= mask;
                }
            }
        }
        out
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of complete records in a serialized stream (ignoring any
/// trailing partial record).
fn complete_records(bytes: &[u8]) -> usize {
    bytes.len().saturating_sub(HEADER_LEN) / RECORD_LEN
}

/// One class of *runtime* fault injected into a sharded profiling run —
/// the worker-level counterpart of the byte-level [`FaultClass`]
/// injectors.
///
/// Where [`FaultClass`] corrupts the bytes a reader consumes, a
/// [`RuntimeFault`] sabotages the worker consuming them: a kill (panic)
/// exercises the supervisor's panic isolation and retry path, a stall
/// exercises its per-shard deadline. Deliberately not `#[non_exhaustive]`
/// for the same reason as `FaultClass`: the fault matrix matches on every
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeFault {
    /// Panic inside the shard job — a worker that crashed mid-shard.
    ShardKill,
    /// Sleep inside the shard job for the given duration — a worker
    /// wedged on slow I/O or a livelock, caught by the shard deadline.
    ShardStall(std::time::Duration),
}

impl RuntimeFault {
    /// Stable lowercase name, used in test output and CI logs.
    pub fn name(self) -> &'static str {
        match self {
            RuntimeFault::ShardKill => "shard-kill",
            RuntimeFault::ShardStall(_) => "shard-stall",
        }
    }
}

impl std::fmt::Display for RuntimeFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic plan of runtime faults: shard `shard` is sabotaged
/// with `fault` on every attempt strictly below `until_attempt`.
///
/// `until_attempt = 1` fails only the first try (the retry succeeds);
/// `until_attempt > max_retries` fails every try and forces quarantine.
#[derive(Debug, Clone)]
pub struct RuntimeFaultPlan {
    entries: Vec<(usize, u32, RuntimeFault)>,
}

impl RuntimeFaultPlan {
    /// An empty plan (no faults fire).
    pub fn new() -> Self {
        RuntimeFaultPlan {
            entries: Vec::new(),
        }
    }

    /// Adds a fault: `shard` fails attempts `0..until_attempt`.
    #[must_use]
    pub fn fault(mut self, shard: usize, until_attempt: u32, fault: RuntimeFault) -> Self {
        self.entries.push((shard, until_attempt, fault));
        self
    }

    /// The fault (if any) scheduled for `(shard, attempt)`.
    pub fn lookup(&self, shard: usize, attempt: u32) -> Option<RuntimeFault> {
        self.entries
            .iter()
            .find(|(s, until, _)| *s == shard && attempt < *until)
            .map(|(_, _, f)| *f)
    }

    /// Renders the plan as a supervisor hook: a `Fn(shard, attempt)`
    /// closure that panics or stalls according to the schedule. Pass the
    /// result to `tempo::profile_sharded`'s hook parameter.
    pub fn hook(&self) -> impl Fn(usize, u32) + Sync + '_ {
        move |shard, attempt| match self.lookup(shard, attempt) {
            Some(RuntimeFault::ShardKill) => {
                panic!("injected shard-kill: shard {shard} attempt {attempt}")
            }
            Some(RuntimeFault::ShardStall(d)) => std::thread::sleep(d),
            None => {}
        }
    }
}

impl Default for RuntimeFaultPlan {
    fn default() -> Self {
        RuntimeFaultPlan::new()
    }
}

/// One class of misbehaving *network client* — the connection-level
/// counterpart of [`FaultClass`] (bad bytes) and [`RuntimeFault`] (bad
/// workers), aimed at a server accepting framed trace streams (the
/// `tempod` daemon).
///
/// A client fault does not corrupt the bytes themselves; it corrupts the
/// *delivery*: the stream stops mid-message, or arrives in a pathological
/// trickle. The server contract under both is the same as the lossy
/// readers' — tally, stay up, keep serving everyone else. Deliberately
/// not `#[non_exhaustive]`: the fault matrix matches on every class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientFault {
    /// The connection drops partway through a message: only a prefix of
    /// the stream is ever delivered — a client killed mid-frame.
    DropMidMessage,
    /// The stream arrives in tiny bursts (1–7 bytes each) — a client on a
    /// congested link or deliberately starving the server's reader.
    SlowTrickle,
}

impl ClientFault {
    /// Every client fault class, for matrix-style iteration.
    pub const ALL: [ClientFault; 2] = [ClientFault::DropMidMessage, ClientFault::SlowTrickle];

    /// Stable lowercase name, used in test output and CI logs.
    pub fn name(self) -> &'static str {
        match self {
            ClientFault::DropMidMessage => "drop-mid-message",
            ClientFault::SlowTrickle => "slow-trickle",
        }
    }

    /// Plans the delivery of `stream` under this fault: the chunks a
    /// writer should send, in order, before closing the connection.
    ///
    /// Deterministic in `(self, stream, seed)`, like
    /// [`FaultClass::inject`]. For [`DropMidMessage`](Self::DropMidMessage)
    /// the plan is a single proper prefix (at least one byte short, cut at
    /// a random interior point) — the remainder is never sent. For
    /// [`SlowTrickle`](Self::SlowTrickle) the plan covers the whole stream
    /// in 1–7-byte slices.
    pub fn schedule(self, stream: &[u8], seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            ClientFault::DropMidMessage => {
                if stream.is_empty() {
                    return Vec::new();
                }
                let cut = rng.gen_range(0..stream.len());
                if cut == 0 {
                    return Vec::new();
                }
                vec![stream[..cut].to_vec()]
            }
            ClientFault::SlowTrickle => {
                let mut chunks = Vec::new();
                let mut at = 0usize;
                while at < stream.len() {
                    let n = rng.gen_range(1..RECORD_LEN).min(stream.len() - at);
                    chunks.push(stream[at..at + n].to_vec());
                    at += n;
                }
                chunks
            }
        }
    }
}

impl std::fmt::Display for ClientFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A well-formed serialized trace: header + `n` records.
    fn fixture(n: usize) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"TMPO");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&(n as u64).to_le_bytes());
        for i in 0..n {
            bytes.extend_from_slice(&(i as u32 % 7).to_le_bytes());
            bytes.extend_from_slice(&(64 + i as u32).to_le_bytes());
        }
        bytes
    }

    #[test]
    fn injectors_are_deterministic() {
        let input = fixture(20);
        for class in FaultClass::ALL {
            for seed in 0..5 {
                assert_eq!(
                    class.inject(&input, seed),
                    class.inject(&input, seed),
                    "{class} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn every_class_changes_a_nontrivial_stream() {
        let input = fixture(20);
        for class in FaultClass::ALL {
            assert_ne!(class.inject(&input, 3), input, "{class}");
        }
    }

    #[test]
    fn truncate_shortens() {
        let input = fixture(20);
        for seed in 0..10 {
            assert!(FaultClass::Truncate.inject(&input, seed).len() < input.len());
        }
    }

    #[test]
    fn splice_lengthens_by_a_misaligning_amount() {
        let input = fixture(20);
        for seed in 0..10 {
            let grown = FaultClass::RecordSplice.inject(&input, seed).len() - input.len();
            assert!((1..RECORD_LEN).contains(&grown), "grew by {grown}");
        }
    }

    #[test]
    fn unbalance_removes_exactly_one_record() {
        let input = fixture(20);
        let out = FaultClass::StackUnbalance.inject(&input, 1);
        assert_eq!(out.len(), input.len() - RECORD_LEN);
        // Header (and so the declared count) is untouched.
        assert_eq!(&out[..HEADER_LEN], &input[..HEADER_LEN]);
    }

    #[test]
    fn header_mangle_touches_only_the_header() {
        let input = fixture(20);
        for seed in 0..10 {
            let out = FaultClass::HeaderMangle.inject(&input, seed);
            assert_eq!(out.len(), input.len());
            assert_ne!(&out[..HEADER_LEN], &input[..HEADER_LEN]);
            assert_eq!(&out[HEADER_LEN..], &input[HEADER_LEN..]);
        }
    }

    #[test]
    fn remap_rewrites_only_proc_fields_to_out_of_range_ids() {
        let input = fixture(20);
        let out = FaultClass::ProcIdRemap.inject(&input, 2);
        assert_eq!(out.len(), input.len());
        let mut changed = 0;
        for r in 0..20 {
            let start = HEADER_LEN + r * RECORD_LEN;
            let proc = u32::from_le_bytes(out[start..start + 4].try_into().unwrap());
            let bytes = &out[start + 4..start + 8];
            assert_eq!(bytes, &input[start + 4..start + 8], "extent untouched");
            if proc != u32::from_le_bytes(input[start..start + 4].try_into().unwrap()) {
                assert!(proc >= 0xFFFF_0000, "remapped id is far out of range");
                changed += 1;
            }
        }
        assert!(changed >= 1);
    }

    #[test]
    fn injectors_are_total_on_degenerate_inputs() {
        for class in FaultClass::ALL {
            for input in [&[][..], &[0x54][..], &fixture(0)[..]] {
                for seed in 0..3 {
                    let _ = class.inject(input, seed); // must not panic
                }
            }
        }
    }

    #[test]
    fn client_fault_schedules_are_deterministic() {
        let stream = fixture(20);
        for fault in ClientFault::ALL {
            for seed in 0..5 {
                assert_eq!(
                    fault.schedule(&stream, seed),
                    fault.schedule(&stream, seed),
                    "{fault} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn drop_mid_message_delivers_a_proper_prefix() {
        let stream = fixture(20);
        for seed in 0..10 {
            let plan = ClientFault::DropMidMessage.schedule(&stream, seed);
            let sent: Vec<u8> = plan.concat();
            assert!(sent.len() < stream.len(), "must cut the stream short");
            assert_eq!(&stream[..sent.len()], &sent[..], "prefix is verbatim");
        }
    }

    #[test]
    fn slow_trickle_delivers_everything_in_small_chunks() {
        let stream = fixture(20);
        for seed in 0..10 {
            let plan = ClientFault::SlowTrickle.schedule(&stream, seed);
            assert_eq!(plan.concat(), stream, "trickle must cover the stream");
            assert!(plan.iter().all(|c| (1..RECORD_LEN).contains(&c.len())));
        }
    }

    #[test]
    fn client_fault_schedules_are_total_on_degenerate_streams() {
        for fault in ClientFault::ALL {
            for stream in [&[][..], &[0x54][..]] {
                for seed in 0..3 {
                    let _ = fault.schedule(stream, seed); // must not panic
                }
            }
        }
    }
}
