//! Instruction-cache modeling for the **tempo** toolkit.
//!
//! The paper evaluates procedure placements by simulating an instruction
//! cache over a program trace (an 8 KB direct-mapped cache with 32-byte
//! lines in §5.2, and 2-way set-associative caches in §6). This crate
//! provides:
//!
//! * [`CacheConfig`] — validated geometry (size, line size, associativity),
//! * [`InstructionCache`] — a line-accurate cache model with LRU replacement
//!   covering direct-mapped and N-way set-associative organizations,
//! * [`Simulator`] / [`simulate`] — trace-driven miss simulation of a
//!   [`Layout`](tempo_program::Layout), producing [`SimStats`].
//!
//! # Example
//!
//! ```
//! use tempo_program::{Program, Layout};
//! use tempo_trace::Trace;
//! use tempo_cache::{CacheConfig, simulate};
//!
//! let program = Program::builder()
//!     .procedure("a", 4096)
//!     .procedure("b", 4096)
//!     .procedure("c", 4096)
//!     .build()?;
//! let layout = Layout::source_order(&program);
//! let cache = CacheConfig::direct_mapped_8k();
//!
//! let ids: Vec<_> = program.ids().collect();
//! // Alternate a -> c -> a -> c ...; a and c conflict in an 8 KB cache
//! // under the source-order layout (both map to the same 4 KB half).
//! let trace = Trace::from_full_records(&program, (0..10).map(|i| ids[if i % 2 == 0 { 0 } else { 2 }]));
//! let stats = simulate(&program, &layout, &trace, cache);
//! assert_eq!(stats.line_miss_rate(), 1.0); // every line access conflicts
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// In the test build, `unwrap` IS the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

mod cache;
mod classify;
mod config;
mod sim;
pub mod sweep;

pub use cache::InstructionCache;
pub use classify::{classify, MissBreakdown};
pub use config::{CacheConfig, CacheConfigError};
pub use sim::{simulate, simulate_source, SimStats, Simulator, BLOCK_RECORDS};
pub use sweep::{
    simulate_configs, simulate_layouts, simulate_layouts_masked, simulate_layouts_streamed,
    SweepPanic,
};
