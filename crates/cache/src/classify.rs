//! The three-C miss classification (Hill's cold / capacity / conflict
//! taxonomy), used to show *which* misses a placement removes.
//!
//! Placement can only remove **conflict** misses — cold misses are
//! compulsory and capacity misses survive any address assignment. The
//! paper's whole premise is that the default layout leaves "it to chance
//! which code blocks will conflict in the cache"; the
//! [`classify`] decomposition makes that chance component visible.

use tempo_program::{Layout, Program};
use tempo_trace::Trace;

use crate::{CacheConfig, InstructionCache};

/// A simulation result decomposed into the three-C taxonomy.
///
/// * `cold` — first-ever reference to a line (compulsory).
/// * `capacity` — non-cold misses that a fully-associative LRU cache of
///   the same size would also take.
/// * `conflict` — the remainder: misses caused purely by the address
///   mapping, i.e. the misses placement can fight.
///
/// LRU set-associative caches are not strictly inclusive of
/// fully-associative LRU, so on rare access patterns the subtraction can
/// go negative; `conflict` is clamped at zero and the discrepancy folded
/// into `capacity`, the standard convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissBreakdown {
    /// Total line accesses.
    pub accesses: u64,
    /// Instruction fetches (bytes / 4).
    pub instructions: u64,
    /// Compulsory misses.
    pub cold: u64,
    /// Capacity misses (fully-associative LRU misses minus cold).
    pub capacity: u64,
    /// Conflict misses (total minus fully-associative misses).
    pub conflict: u64,
}

impl MissBreakdown {
    /// All misses.
    pub fn total_misses(&self) -> u64 {
        self.cold + self.capacity + self.conflict
    }

    /// Total miss rate per instruction (the paper's convention).
    pub fn miss_rate(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_misses() as f64 / self.instructions as f64
        }
    }

    /// Conflict misses as a fraction of all misses (0 if no misses).
    pub fn conflict_fraction(&self) -> f64 {
        let t = self.total_misses();
        if t == 0 {
            0.0
        } else {
            self.conflict as f64 / t as f64
        }
    }
}

/// Simulates `trace` against `layout` and classifies every miss.
///
/// Runs the target cache and a same-size fully-associative LRU cache in
/// lockstep; cold misses are detected with a first-touch set.
pub fn classify(
    program: &Program,
    layout: &Layout,
    trace: &Trace,
    config: CacheConfig,
) -> MissBreakdown {
    let mut target = InstructionCache::new(config);
    let fa_config = CacheConfig::new(config.size(), config.line_size(), config.lines())
        .expect("fully-associative geometry of a valid config is valid");
    let mut fully = InstructionCache::new(fa_config);
    let mut seen = std::collections::HashSet::new();

    let mut out = MissBreakdown::default();
    let mut target_misses = 0u64;
    let mut fa_misses = 0u64;
    for r in trace.iter() {
        let addr = layout.addr(r.proc);
        let bytes = r.bytes.min(program.size_of(r.proc));
        if bytes == 0 {
            continue;
        }
        out.instructions += u64::from(bytes.div_ceil(4));
        let first = config.line_of_addr(addr);
        let last = config.line_of_addr(addr + u64::from(bytes) - 1);
        for line in first..=last {
            out.accesses += 1;
            let target_hit = target.access_line(line);
            let fa_hit = fully.access_line(line);
            let is_cold = seen.insert(line);
            if !target_hit {
                target_misses += 1;
                if is_cold {
                    out.cold += 1;
                }
            }
            if !fa_hit {
                fa_misses += 1;
            }
            // A cold line always misses in both models by definition.
            debug_assert!(!is_cold || (!target_hit && !fa_hit));
        }
    }
    // Decompose the warm target misses: those the fully-associative model
    // also takes are capacity, the rest are conflict. Clamping keeps the
    // identity `cold + capacity + conflict == target misses` exact even on
    // the rare patterns where set-associative LRU beats fully-associative
    // LRU.
    let fa_warm = fa_misses.saturating_sub(out.cold);
    out.capacity = fa_warm.min(target_misses - out.cold);
    out.conflict = target_misses - out.cold - out.capacity;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_program::ProcId;

    fn prog() -> Program {
        Program::builder()
            .procedure("a", 4096)
            .procedure("b", 4096)
            .procedure("c", 4096)
            .build()
            .unwrap()
    }

    #[test]
    fn pure_cold_workload() {
        let p = prog();
        let l = Layout::source_order(&p);
        let t = Trace::from_full_records(&p, [ProcId::new(0)]);
        let b = classify(&p, &l, &t, CacheConfig::direct_mapped_8k());
        assert_eq!(b.cold, 128);
        assert_eq!(b.capacity, 0);
        assert_eq!(b.conflict, 0);
        assert_eq!(b.total_misses(), 128);
        assert_eq!(b.conflict_fraction(), 0.0);
    }

    #[test]
    fn pure_conflict_workload() {
        // a and c alternate; they fit a fully-associative 8 KB cache
        // together, so every non-cold miss is a conflict miss.
        let p = prog();
        let l = Layout::source_order(&p);
        let refs = [ProcId::new(0), ProcId::new(2)].repeat(5);
        let t = Trace::from_full_records(&p, refs);
        let b = classify(&p, &l, &t, CacheConfig::direct_mapped_8k());
        assert_eq!(b.cold, 256);
        assert_eq!(b.capacity, 0);
        assert_eq!(b.conflict, 8 * 128, "8 warm passes, all conflict");
    }

    #[test]
    fn pure_capacity_workload() {
        // All three procedures cycle: 12 KB working set in an 8 KB cache
        // misses even fully associatively.
        let p = prog();
        let l = Layout::source_order(&p);
        let refs = [ProcId::new(0), ProcId::new(1), ProcId::new(2)].repeat(4);
        let t = Trace::from_full_records(&p, refs);
        let b = classify(&p, &l, &t, CacheConfig::direct_mapped_8k());
        assert_eq!(b.cold, 384);
        assert!(b.capacity > 0, "LRU cycling a too-big set thrashes");
    }

    #[test]
    fn two_way_classification_identity() {
        let p = prog();
        let l = Layout::source_order(&p);
        let refs = [ProcId::new(0), ProcId::new(2), ProcId::new(1)].repeat(6);
        let t = Trace::from_full_records(&p, refs);
        let cfg = CacheConfig::two_way_8k();
        let b = classify(&p, &l, &t, cfg);
        let s = crate::simulate(&p, &l, &t, cfg);
        assert_eq!(b.total_misses(), s.misses);
        // The 12 KB cyclic working set in an 8 KB cache: capacity misses
        // dominate and survive associativity.
        assert!(b.capacity > 0);
    }

    #[test]
    fn identity_total_misses_matches_simulation() {
        let p = prog();
        let l = Layout::source_order(&p);
        let refs = [ProcId::new(0), ProcId::new(2), ProcId::new(1)].repeat(7);
        let t = Trace::from_full_records(&p, refs);
        let cfg = CacheConfig::direct_mapped_8k();
        let b = classify(&p, &l, &t, cfg);
        let s = crate::simulate(&p, &l, &t, cfg);
        assert_eq!(b.total_misses(), s.misses);
        assert_eq!(b.accesses, s.accesses);
        assert_eq!(b.instructions, s.instructions);
        assert!((b.miss_rate() - s.miss_rate()).abs() < 1e-12);
    }
}
