//! Parallel sweep evaluation: many simulations over one read-only trace.
//!
//! The evaluation matrix (benchmark × algorithm × cache config) hits the
//! simulator in two hot shapes: *several layouts on one cache* (comparing
//! algorithms) and *one layout on several caches* (geometry sweeps). Both
//! are embarrassingly parallel — every cell reads the same program, trace,
//! and layout data and owns its own [`InstructionCache`] — so these
//! helpers fan the cells out over a [`tempo_par::Pool`] while keeping the
//! result order equal to the input order, worker count notwithstanding.

use std::fmt;

use tempo_par::{JobPanic, Pool};
use tempo_program::{Layout, Program};
use tempo_trace::io::TraceIoError;
use tempo_trace::{Trace, TraceSource};

use crate::{simulate, CacheConfig, SimStats, Simulator};

/// A worker panic surfaced from a parallel sweep as a value: which cell
/// failed (submission order) and the stringified panic payload.
///
/// Sweep cells are pure simulations over validated inputs, so a panic here
/// means a layout/program mismatch upstream — but it is reported to the
/// caller instead of crossing the pool boundary, so one poisoned cell
/// cannot take down a whole evaluation matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPanic {
    /// Index of the failing cell among the submitted jobs (for masked
    /// sweeps, the index among the cells that were actually simulated).
    pub cell: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl fmt::Display for SweepPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep cell {} panicked: {}", self.cell, self.message)
    }
}

impl std::error::Error for SweepPanic {}

impl From<JobPanic> for SweepPanic {
    fn from(p: JobPanic) -> Self {
        SweepPanic {
            cell: p.index,
            message: p.message,
        }
    }
}

/// Simulates every layout in `layouts` against the same trace and cache
/// config, in parallel, returning stats in `layouts` order.
///
/// # Errors
///
/// Returns the first worker panic as a [`SweepPanic`] (the simulator
/// itself does not panic on validated inputs; a panic here means a
/// layout/program mismatch upstream).
pub fn simulate_layouts(
    program: &Program,
    layouts: &[Layout],
    trace: &Trace,
    config: CacheConfig,
    pool: &Pool,
) -> Result<Vec<SimStats>, SweepPanic> {
    let jobs: Vec<_> = layouts
        .iter()
        .map(|layout| move || simulate(program, layout, trace, config))
        .collect();
    collect(pool.run(jobs))
}

/// Simulates one layout against every cache config in `configs`, in
/// parallel, returning stats in `configs` order.
///
/// This is the §5.2-style geometry sweep: independent configs sharing one
/// read-only trace.
///
/// # Errors
///
/// Returns the first worker panic as a [`SweepPanic`] (see
/// [`simulate_layouts`]).
pub fn simulate_configs(
    program: &Program,
    layout: &Layout,
    trace: &Trace,
    configs: &[CacheConfig],
    pool: &Pool,
) -> Result<Vec<SimStats>, SweepPanic> {
    let jobs: Vec<_> = configs
        .iter()
        .map(|&config| move || simulate(program, layout, trace, config))
        .collect();
    collect(pool.run(jobs))
}

/// Simulates only the layouts whose mask slot is `true`, in parallel,
/// returning `Some(stats)` for simulated slots and `None` for masked-out
/// ones — the execution stage of a screened sweep (the mask typically
/// comes from `tempo_analyze::screen_layouts`, which this crate cannot
/// depend on; any prefilter works).
///
/// Increments the `analyze.simulated` counter once per simulated layout,
/// so observability can report the screened/simulated split.
///
/// # Errors
///
/// Returns the first worker panic as a [`SweepPanic`] (the cell index
/// counts simulated cells, not mask slots).
///
/// # Panics
///
/// Panics if `mask.len() != layouts.len()`.
pub fn simulate_layouts_masked(
    program: &Program,
    layouts: &[Layout],
    mask: &[bool],
    trace: &Trace,
    config: CacheConfig,
    pool: &Pool,
) -> Result<Vec<Option<SimStats>>, SweepPanic> {
    assert_eq!(mask.len(), layouts.len(), "one mask slot per layout");
    let jobs: Vec<_> = layouts
        .iter()
        .zip(mask)
        .filter(|(_, &keep)| keep)
        .map(|(layout, _)| move || simulate(program, layout, trace, config))
        .collect();
    tempo_obs::counter("analyze.simulated").add(jobs.len() as u64);
    let mut stats = collect(pool.run(jobs))?.into_iter();
    Ok(mask
        .iter()
        .map(|&keep| if keep { stats.next() } else { None })
        .collect())
}

/// Simulates every layout against one *shared* pass over a [`TraceSource`]:
/// records are pulled in [`RecordBlock`](tempo_trace::RecordBlock) batches
/// and each block is stepped through all `layouts.len()` simulators before
/// the next is decoded, so N layouts cost one trace read — and one varint
/// decode per block — instead of N materialized passes.
///
/// Results match [`simulate_layouts`] on the materialized trace exactly —
/// every simulator owns its cache, so interleaving per block cannot change
/// any cell's miss sequence, and the batched kernel is step-for-step
/// equivalent to the scalar one.
///
/// # Errors
///
/// Propagates the first error the source reports.
pub fn simulate_layouts_streamed<S: TraceSource>(
    program: &Program,
    layouts: &[Layout],
    mut source: S,
    config: CacheConfig,
) -> Result<Vec<SimStats>, TraceIoError> {
    let start = std::time::Instant::now();
    let mut sims: Vec<Simulator<'_>> = layouts
        .iter()
        .map(|layout| Simulator::new(program, layout, config))
        .collect();
    let mut pulled = 0u64;
    let mut block = tempo_trace::RecordBlock::with_capacity(crate::sim::BLOCK_RECORDS);
    while source.try_next_block(&mut block, crate::sim::BLOCK_RECORDS)? > 0 {
        for sim in &mut sims {
            sim.step_block(&block.procs, &block.bytes);
        }
        pulled += block.len() as u64;
    }
    tempo_trace::obs::note_read(pulled, &source.warnings());
    let all: Vec<SimStats> = sims.iter().map(Simulator::stats).collect();
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    for stats in &all {
        // One shared pass: attribute the wall time to each layout's pass so
        // `sim.layout_ms` stays comparable with per-layout simulation.
        crate::sim::note_sim(stats, elapsed_ms);
    }
    Ok(all)
}

fn collect(results: Vec<Result<SimStats, JobPanic>>) -> Result<Vec<SimStats>, SweepPanic> {
    results
        .into_iter()
        .map(|r| r.map_err(SweepPanic::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Program, Trace) {
        let program = Program::builder()
            .procedure("a", 4096)
            .procedure("b", 4096)
            .procedure("c", 4096)
            .build()
            .unwrap();
        let ids: Vec<_> = program.ids().collect();
        let refs: Vec<_> = (0..200)
            .map(|i| ids[if i % 2 == 0 { 0 } else { 2 }])
            .collect();
        let trace = Trace::from_full_records(&program, refs);
        (program, trace)
    }

    #[test]
    fn layouts_sweep_matches_serial_for_any_worker_count() {
        let (program, trace) = fixture();
        let config = CacheConfig::direct_mapped_8k();
        let layouts = vec![
            Layout::source_order(&program),
            Layout::from_addresses(vec![0, 8192, 4096]),
        ];
        let serial: Vec<SimStats> = layouts
            .iter()
            .map(|l| simulate(&program, l, &trace, config))
            .collect();
        for workers in [1, 2, 4, 8] {
            let par =
                simulate_layouts(&program, &layouts, &trace, config, &Pool::new(workers)).unwrap();
            assert_eq!(par, serial, "at {workers} workers");
        }
    }

    #[test]
    fn masked_sweep_skips_and_preserves_order() {
        let (program, trace) = fixture();
        let config = CacheConfig::direct_mapped_8k();
        let layouts = vec![
            Layout::source_order(&program),
            Layout::from_addresses(vec![0, 8192, 4096]),
            Layout::from_addresses(vec![0, 12288, 4096]),
        ];
        let mask = vec![true, false, true];
        let out = simulate_layouts_masked(&program, &layouts, &mask, &trace, config, &Pool::new(2))
            .unwrap();
        assert_eq!(out.len(), 3);
        assert!(out[1].is_none(), "masked-out slot is skipped");
        for (i, keep) in [(0usize, true), (2, true)] {
            assert_eq!(keep, out[i].is_some());
            assert_eq!(
                out[i].as_ref().unwrap(),
                &simulate(&program, &layouts[i], &trace, config),
                "slot {i} matches a direct simulation"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one mask slot per layout")]
    fn masked_sweep_rejects_length_mismatch() {
        let (program, trace) = fixture();
        let layouts = vec![Layout::source_order(&program)];
        let _ = simulate_layouts_masked(
            &program,
            &layouts,
            &[true, false],
            &trace,
            CacheConfig::direct_mapped_8k(),
            &Pool::new(1),
        );
    }

    #[test]
    fn streamed_sweep_matches_materialized_passes() {
        let (program, trace) = fixture();
        let config = CacheConfig::direct_mapped_8k();
        let layouts = vec![
            Layout::source_order(&program),
            Layout::from_addresses(vec![0, 8192, 4096]),
        ];
        let serial: Vec<SimStats> = layouts
            .iter()
            .map(|l| simulate(&program, l, &trace, config))
            .collect();
        let streamed = simulate_layouts_streamed(
            &program,
            &layouts,
            tempo_trace::MemorySource::new(&trace),
            config,
        )
        .unwrap();
        assert_eq!(streamed, serial);
    }

    #[test]
    fn configs_sweep_matches_serial_for_any_worker_count() {
        let (program, trace) = fixture();
        let layout = Layout::source_order(&program);
        let configs: Vec<CacheConfig> = [2048u32, 4096, 8192, 16384]
            .iter()
            .map(|&s| CacheConfig::direct_mapped(s).unwrap())
            .collect();
        let serial: Vec<SimStats> = configs
            .iter()
            .map(|&c| simulate(&program, &layout, &trace, c))
            .collect();
        for workers in [1, 3, 8] {
            let par =
                simulate_configs(&program, &layout, &trace, &configs, &Pool::new(workers)).unwrap();
            assert_eq!(par, serial, "at {workers} workers");
        }
    }

    #[test]
    fn worker_panic_surfaces_as_a_typed_error() {
        let (program, trace) = fixture();
        // A layout that does not fit the program trips the simulator's
        // input validation inside the worker.
        let bogus = Layout::from_addresses(vec![0]);
        let err = simulate_layouts(
            &program,
            &[Layout::source_order(&program), bogus],
            &trace,
            CacheConfig::direct_mapped_8k(),
            &Pool::new(2),
        )
        .unwrap_err();
        assert_eq!(err.cell, 1, "the failing cell is identified");
        assert!(!err.message.is_empty());
    }
}
