//! The line-accurate cache model.

use std::fmt;

use crate::CacheConfig;

/// A line-accurate instruction-cache model with true-LRU replacement.
///
/// One type covers the whole associativity range: associativity 1 is a
/// direct-mapped cache (the paper's primary target), higher associativities
/// implement the LRU policy assumed by the paper's §6 extension.
///
/// Accesses are made at *memory line* granularity via
/// [`access_line`](InstructionCache::access_line); address-to-line
/// conversion lives in [`CacheConfig`].
///
/// # Example
///
/// ```
/// use tempo_cache::{CacheConfig, InstructionCache};
/// let mut cache = InstructionCache::new(CacheConfig::direct_mapped_8k());
/// assert!(!cache.access_line(0));       // cold miss
/// assert!(cache.access_line(0));        // hit
/// assert!(!cache.access_line(256));     // maps to the same line: conflict
/// assert!(!cache.access_line(0));       // and back: conflict again
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct InstructionCache {
    config: CacheConfig,
    /// `ways[set * assoc .. (set+1) * assoc]` holds the resident memory
    /// lines of a set in MRU-first order; `EMPTY` marks an invalid way.
    ways: Vec<u64>,
}

const EMPTY: u64 = u64::MAX;

impl InstructionCache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let ways = vec![EMPTY; config.lines() as usize];
        InstructionCache { config, ways }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses a memory line; returns `true` on a hit.
    ///
    /// On a miss the line is filled, evicting the LRU way of its set.
    #[inline]
    pub fn access_line(&mut self, line: u64) -> bool {
        debug_assert_ne!(line, EMPTY, "line index reserved as invalid marker");
        let assoc = self.config.associativity() as usize;
        let set = self.config.set_of_line(line) as usize;
        let ways = &mut self.ways[set * assoc..(set + 1) * assoc];
        // MRU-first search; on hit rotate the line to the front.
        for i in 0..assoc {
            if ways[i] == line {
                ways[..=i].rotate_right(1);
                return true;
            }
        }
        // Miss: insert at MRU, dropping the LRU way.
        ways.rotate_right(1);
        ways[0] = line;
        false
    }

    /// Accesses every line touched by `bytes` bytes starting at `addr`,
    /// in address order; returns `(accesses, misses)`.
    pub fn access_range(&mut self, addr: u64, bytes: u32) -> (u64, u64) {
        if bytes == 0 {
            return (0, 0);
        }
        let first = self.config.line_of_addr(addr);
        let last = self.config.line_of_addr(addr + u64::from(bytes) - 1);
        let mut misses = 0;
        for line in first..=last {
            if !self.access_line(line) {
                misses += 1;
            }
        }
        (last - first + 1, misses)
    }

    /// Branchless bulk access for direct-mapped caches: every touched line
    /// costs one masked index, one compare-as-integer, and one
    /// unconditional store — no per-line branch, no MRU bookkeeping (an
    /// associativity-1 set has nothing to rotate). Produces exactly the
    /// counts [`access_range`](InstructionCache::access_range) would.
    ///
    /// # Panics
    ///
    /// Debug-asserts the cache is direct-mapped; callers dispatch on
    /// [`CacheConfig::is_direct_mapped`].
    #[inline]
    #[allow(clippy::cast_possible_truncation)] // masked index < sets
    pub fn access_range_direct(&mut self, addr: u64, bytes: u32) -> (u64, u64) {
        debug_assert!(self.config.is_direct_mapped());
        if bytes == 0 {
            return (0, 0);
        }
        let first = self.config.line_of_addr(addr);
        let last = self.config.line_of_addr(addr + u64::from(bytes) - 1);
        // Geometry is power-of-two by construction, so the set index is a
        // mask — the `%` in `set_of_line` is a hardware divide because the
        // divisor is only known at runtime.
        let mask = u64::from(self.config.sets()) - 1;
        let mut misses = 0u64;
        for line in first..=last {
            let slot = &mut self.ways[(line & mask) as usize];
            misses += u64::from(*slot != line);
            *slot = line;
        }
        (last - first + 1, misses)
    }

    /// Invalidates every line.
    pub fn flush(&mut self) {
        self.ways.fill(EMPTY);
    }

    /// Returns `true` if the memory line is currently resident.
    pub fn contains_line(&self, line: u64) -> bool {
        let assoc = self.config.associativity() as usize;
        let set = self.config.set_of_line(line) as usize;
        self.ways[set * assoc..(set + 1) * assoc].contains(&line)
    }

    /// Number of resident (valid) lines.
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|&&w| w != EMPTY).count()
    }
}

impl fmt::Debug for InstructionCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InstructionCache({}, {} resident)",
            self.config,
            self.resident_lines()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = InstructionCache::new(CacheConfig::direct_mapped_8k());
        assert!(!c.access_line(5));
        assert!(c.access_line(5));
        assert!(!c.access_line(5 + 256)); // same cache line
        assert!(!c.access_line(5)); // evicted
        assert!(!c.access_line(6)); // different line: cold miss only
        assert!(c.access_line(6));
    }

    #[test]
    fn two_way_keeps_two_conflicting_lines() {
        let mut c = InstructionCache::new(CacheConfig::two_way_8k());
        // Lines 0 and 128 share set 0 in a 128-set cache.
        assert!(!c.access_line(0));
        assert!(!c.access_line(128));
        assert!(c.access_line(0));
        assert!(c.access_line(128));
    }

    #[test]
    fn two_way_lru_evicts_least_recent() {
        let mut c = InstructionCache::new(CacheConfig::two_way_8k());
        c.access_line(0); // set 0: [0]
        c.access_line(128); // set 0: [128, 0]
        c.access_line(0); // set 0: [0, 128]
        assert!(!c.access_line(256)); // evicts 128 (LRU)
        assert!(c.access_line(0));
        assert!(!c.access_line(128)); // was evicted
    }

    #[test]
    fn fully_associative_lru() {
        let cfg = CacheConfig::new(128, 32, 4).unwrap(); // 4 lines, 1 set
        let mut c = InstructionCache::new(cfg);
        for l in 0..4 {
            assert!(!c.access_line(l));
        }
        assert_eq!(c.resident_lines(), 4);
        // Touch 0 to make 1 the LRU, then insert a 5th line.
        assert!(c.access_line(0));
        assert!(!c.access_line(100));
        assert!(!c.contains_line(1));
        assert!(c.contains_line(0));
        assert!(c.contains_line(2));
        assert!(c.contains_line(3));
    }

    #[test]
    fn access_range_counts_lines() {
        let mut c = InstructionCache::new(CacheConfig::direct_mapped_8k());
        let (acc, miss) = c.access_range(0, 100); // lines 0..=3
        assert_eq!(acc, 4);
        assert_eq!(miss, 4);
        let (acc, miss) = c.access_range(0, 100);
        assert_eq!(acc, 4);
        assert_eq!(miss, 0);
        let (acc, miss) = c.access_range(0, 0);
        assert_eq!((acc, miss), (0, 0));
        // Range straddling a line boundary.
        let (acc, _) = c.access_range(31, 2);
        assert_eq!(acc, 2);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = InstructionCache::new(CacheConfig::direct_mapped_8k());
        c.access_range(0, 8192);
        assert_eq!(c.resident_lines(), 256);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access_line(0));
    }

    #[test]
    fn wraparound_mapping() {
        let mut c = InstructionCache::new(CacheConfig::direct_mapped_8k());
        // Two addresses exactly one cache size apart conflict.
        c.access_line(7);
        assert!(!c.access_line(7 + 256));
        assert!(!c.access_line(7 + 512));
    }

    #[test]
    fn direct_mapped_whole_cache_fits() {
        let mut c = InstructionCache::new(CacheConfig::direct_mapped_8k());
        let (_, m1) = c.access_range(0, 8192);
        assert_eq!(m1, 256); // cold
        let (_, m2) = c.access_range(0, 8192);
        assert_eq!(m2, 0); // fully resident
    }
}
