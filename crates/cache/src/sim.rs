//! Trace-driven miss simulation of a layout.

use std::fmt;

use tempo_program::{Layout, ProcId, Program};
use tempo_trace::io::TraceIoError;
use tempo_trace::{RecordBlock, Trace, TraceRecord, TraceSink, TraceSource};

use crate::{CacheConfig, InstructionCache};

/// Aggregate results of a simulation run.
///
/// * `accesses` counts distinct cache-line touches (one per line per trace
///   record).
/// * `instructions` counts instruction fetches, assuming 4-byte
///   instructions (`executed bytes / 4`) — sequential fetches within a
///   resident line always hit, so misses are counted per line while the
///   denominator of [`miss_rate`](SimStats::miss_rate) is instructions.
///   This matches how the paper reports miss rates (its 2.6–6.3% Table 1
///   values are per instruction fetch, not per line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Trace records processed.
    pub records: u64,
    /// Cache-line accesses issued.
    pub accesses: u64,
    /// Cache-line misses.
    pub misses: u64,
    /// Instruction fetches (executed bytes / 4).
    pub instructions: u64,
}

impl SimStats {
    /// Miss rate per instruction fetch in `[0, 1]`; 0 for an empty run.
    /// This is the figure comparable to the paper's reported miss rates.
    pub fn miss_rate(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.misses as f64 / self.instructions as f64
        }
    }

    /// Miss rate per cache-line access in `[0, 1]`; 0 for an empty run.
    pub fn line_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Merges another run's counters into this one.
    pub fn merge(&mut self, other: SimStats) {
        self.records += other.records;
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.instructions += other.instructions;
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records, {} accesses, {} misses ({:.2}%)",
            self.records,
            self.accesses,
            self.misses,
            self.miss_rate() * 100.0
        )
    }
}

/// An incremental trace-driven simulator.
///
/// Feed it records one at a time ([`Simulator::step`]) or in bulk
/// ([`Simulator::run`]); read the running totals from
/// [`Simulator::stats`]. Use the [`simulate`] convenience function when the
/// whole trace is available up front.
#[derive(Debug, Clone)]
pub struct Simulator<'p> {
    program: &'p Program,
    layout: &'p Layout,
    cache: InstructionCache,
    stats: SimStats,
    /// Per-procedure layout address and size, gathered once so the batched
    /// kernel reads two dense arrays instead of chasing `Layout`/`Program`
    /// per record. Covers `min(program, layout)` procedures; records past
    /// that fall back to the scalar lookups (and their panics).
    addrs: Vec<u64>,
    sizes: Vec<u32>,
    /// Associativity-1 fast path: dispatches [`step_block`](Simulator::step_block)
    /// to the branchless kernel.
    direct: bool,
}

/// Records per [`RecordBlock`] the batched drivers pull at a time. Two
/// 16 KiB columns: big enough to amortize per-block dispatch, small enough
/// to stay L1/L2-resident alongside the cache model.
pub const BLOCK_RECORDS: usize = 4096;

impl<'p> Simulator<'p> {
    /// Creates a simulator with a cold cache.
    #[allow(clippy::cast_possible_truncation)] // proc indices are u32 by construction
    pub fn new(program: &'p Program, layout: &'p Layout, config: CacheConfig) -> Self {
        let covered = program.len().min(layout.len());
        let addrs = (0..covered)
            .map(|i| layout.addr(ProcId::new(i as u32)))
            .collect();
        let sizes = (0..covered)
            .map(|i| program.size_of(ProcId::new(i as u32)))
            .collect();
        Simulator {
            program,
            layout,
            cache: InstructionCache::new(config),
            stats: SimStats::default(),
            addrs,
            sizes,
            direct: config.is_direct_mapped(),
        }
    }

    /// Processes one trace record: touches every line of the executed extent
    /// of the record's procedure, starting at its layout address.
    pub fn step(&mut self, record: &TraceRecord) {
        let addr = self.layout.addr(record.proc);
        let bytes = record.bytes.min(self.program.size_of(record.proc));
        let (accesses, misses) = self.cache.access_range(addr, bytes);
        self.stats.records += 1;
        self.stats.accesses += accesses;
        self.stats.misses += misses;
        self.stats.instructions += u64::from(bytes.div_ceil(4));
    }

    /// Processes a batch of records in structure-of-arrays form —
    /// `procs[i]`/`bytes[i]` is one record. Exactly equivalent to calling
    /// [`step`](Simulator::step) per record (proptest-pinned), but
    /// direct-mapped caches take the branchless
    /// [`access_range_direct`](InstructionCache::access_range_direct)
    /// kernel over the precomputed address/size columns.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, or on the same out-of-program
    /// records the scalar path panics on.
    pub fn step_block(&mut self, procs: &[u32], bytes: &[u32]) {
        assert_eq!(procs.len(), bytes.len(), "SoA columns must be parallel");
        if !self.direct {
            for (&p, &b) in procs.iter().zip(bytes) {
                self.step(&TraceRecord::new(ProcId::new(p), b));
            }
            return;
        }
        let mut accesses = 0u64;
        let mut misses = 0u64;
        let mut instructions = 0u64;
        for (&p, &b) in procs.iter().zip(bytes) {
            let (addr, size) = if let (Some(&a), Some(&s)) =
                (self.addrs.get(p as usize), self.sizes.get(p as usize))
            {
                (a, s)
            } else {
                // Same lookups (and panics) as the scalar path.
                let id = ProcId::new(p);
                (self.layout.addr(id), self.program.size_of(id))
            };
            let b = b.min(size);
            let (a, m) = self.cache.access_range_direct(addr, b);
            accesses += a;
            misses += m;
            instructions += u64::from(b.div_ceil(4));
        }
        self.stats.records += procs.len() as u64;
        self.stats.accesses += accesses;
        self.stats.misses += misses;
        self.stats.instructions += instructions;
    }

    /// Processes a sequence of records.
    pub fn run<'a, I>(&mut self, records: I)
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        for r in records {
            self.step(r);
        }
    }

    /// Drains a [`TraceSource`], stepping the simulator on every record —
    /// the streaming counterpart of [`run`](Simulator::run), in constant
    /// memory.
    ///
    /// Pass `&mut source` to keep the source and inspect its warnings
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Propagates the first error the source reports.
    pub fn consume<S: TraceSource>(&mut self, mut source: S) -> Result<(), TraceIoError> {
        let mut block = RecordBlock::with_capacity(BLOCK_RECORDS);
        while source.try_next_block(&mut block, BLOCK_RECORDS)? > 0 {
            self.step_block(&block.procs, &block.bytes);
        }
        Ok(())
    }

    /// Running totals.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The cache model (e.g. to inspect residency mid-run).
    pub fn cache(&self) -> &InstructionCache {
        &self.cache
    }

    /// Flushes the cache and zeroes the statistics.
    pub fn reset(&mut self) {
        self.cache.flush();
        self.stats = SimStats::default();
    }
}

/// Simulates a full trace against a layout with a cold cache and returns the
/// statistics.
///
/// # Panics
///
/// Panics if the trace references procedures outside the program or the
/// layout does not cover the program (validate inputs first via
/// [`Trace::validate`] and [`Layout::validate`]).
pub fn simulate(
    program: &Program,
    layout: &Layout,
    trace: &Trace,
    config: CacheConfig,
) -> SimStats {
    let start = std::time::Instant::now();
    let mut sim = Simulator::new(program, layout, config);
    sim.run(trace.iter());
    let stats = sim.stats();
    note_sim(&stats, start.elapsed().as_secs_f64() * 1e3);
    stats
}

/// Reports one completed per-layout simulation pass to the global
/// [`tempo_obs`] registry: `sim.records` / `sim.accesses` / `sim.misses` /
/// `sim.instructions` counters, the per-layout wall time histogram
/// `sim.layout_ms`, and a `sim.records_per_sec` throughput gauge (kept at
/// its maximum across passes so parallel sweeps stay deterministic).
///
/// Purely additive: the returned [`SimStats`] are computed before this runs
/// and are identical to an uninstrumented simulation.
pub(crate) fn note_sim(stats: &SimStats, elapsed_ms: f64) {
    tempo_obs::counter("sim.records").add(stats.records);
    tempo_obs::counter("sim.accesses").add(stats.accesses);
    tempo_obs::counter("sim.misses").add(stats.misses);
    tempo_obs::counter("sim.instructions").add(stats.instructions);
    tempo_obs::histogram("sim.layout_ms").record(elapsed_ms);
    if elapsed_ms > 0.0 {
        let per_sec = stats.records as f64 / (elapsed_ms / 1e3);
        tempo_obs::gauge("sim.records_per_sec").set_max(per_sec);
    }
}

/// A simulator is a [`TraceSink`], so it can sit behind a `Tee` and share
/// one pass over a source with the profiler and other consumers.
impl TraceSink for Simulator<'_> {
    fn accept(&mut self, record: &TraceRecord) {
        self.step(record);
    }
}

/// Simulates a [`TraceSource`] against a layout with a cold cache — the
/// streaming counterpart of [`simulate`], in constant memory.
///
/// # Errors
///
/// Propagates the first error the source reports.
///
/// # Panics
///
/// Panics if the stream references procedures outside the program (use a
/// lossy source constructed with the program to repair such records first).
pub fn simulate_source<S: TraceSource>(
    program: &Program,
    layout: &Layout,
    source: S,
    config: CacheConfig,
) -> Result<SimStats, TraceIoError> {
    let start = std::time::Instant::now();
    let mut sim = Simulator::new(program, layout, config);
    let mut source = source;
    sim.consume(&mut source)?;
    let stats = sim.stats();
    tempo_trace::obs::note_read(stats.records, &source.warnings());
    note_sim(&stats, start.elapsed().as_secs_f64() * 1e3);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_program::ProcId;

    /// Program with three 4 KB procedures; in source order, a and c overlap
    /// in an 8 KB direct-mapped cache while a and b do not.
    fn prog() -> Program {
        Program::builder()
            .procedure("a", 4096)
            .procedure("b", 4096)
            .procedure("c", 4096)
            .build()
            .unwrap()
    }

    #[test]
    fn alternation_with_overlap_thrashes() {
        let p = prog();
        let l = Layout::source_order(&p);
        let a = ProcId::new(0);
        let c = ProcId::new(2);
        let t = Trace::from_full_records(&p, [a, c, a, c, a, c]);
        let stats = simulate(&p, &l, &t, CacheConfig::direct_mapped_8k());
        assert_eq!(stats.records, 6);
        assert_eq!(stats.accesses, 6 * 128);
        assert_eq!(stats.misses, 6 * 128); // total conflict
        assert_eq!(stats.line_miss_rate(), 1.0);
    }

    #[test]
    fn alternation_without_overlap_only_cold_misses() {
        let p = prog();
        let l = Layout::source_order(&p);
        let a = ProcId::new(0);
        let b = ProcId::new(1);
        let t = Trace::from_full_records(&p, [a, b, a, b, a, b]);
        let stats = simulate(&p, &l, &t, CacheConfig::direct_mapped_8k());
        assert_eq!(stats.misses, 2 * 128); // cold only
        assert!(stats.line_miss_rate() < 0.34);
    }

    #[test]
    fn layout_changes_conflicts() {
        let p = prog();
        let a = ProcId::new(0);
        let c = ProcId::new(2);
        let t = Trace::from_full_records(&p, [a, c, a, c, a, c]);
        // Move c to directly follow a: no overlap.
        let good =
            Layout::from_order(&p, &[ProcId::new(0), ProcId::new(2), ProcId::new(1)]).unwrap();
        let stats = simulate(&p, &good, &t, CacheConfig::direct_mapped_8k());
        assert_eq!(stats.misses, 2 * 128);
    }

    #[test]
    fn two_way_cache_absorbs_pairwise_conflict() {
        let p = prog();
        let l = Layout::source_order(&p);
        let a = ProcId::new(0);
        let c = ProcId::new(2);
        let t = Trace::from_full_records(&p, [a, c, a, c, a, c]);
        let stats = simulate(&p, &l, &t, CacheConfig::two_way_8k());
        // A 2-way 8 KB cache holds both 4 KB procedures.
        assert_eq!(stats.misses, 2 * 128);
    }

    #[test]
    fn partial_extents_touch_fewer_lines() {
        let p = prog();
        let l = Layout::source_order(&p);
        let t = Trace::from_records(vec![TraceRecord::new(ProcId::new(0), 64)]);
        let stats = simulate(&p, &l, &t, CacheConfig::direct_mapped_8k());
        assert_eq!(stats.accesses, 2);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn simulator_is_incremental() {
        let p = prog();
        let l = Layout::source_order(&p);
        let mut sim = Simulator::new(&p, &l, CacheConfig::direct_mapped_8k());
        let r = TraceRecord::new(ProcId::new(0), 4096);
        sim.step(&r);
        assert_eq!(sim.stats().misses, 128);
        sim.step(&r);
        assert_eq!(sim.stats().misses, 128); // warm
        assert_eq!(sim.cache().resident_lines(), 128);
        sim.reset();
        assert_eq!(sim.stats(), SimStats::default());
        assert_eq!(sim.cache().resident_lines(), 0);
    }

    #[test]
    fn stats_merge_and_display() {
        let mut a = SimStats {
            records: 1,
            accesses: 10,
            misses: 5,
            instructions: 80,
        };
        a.merge(SimStats {
            records: 1,
            accesses: 10,
            misses: 0,
            instructions: 80,
        });
        assert_eq!(a.accesses, 20);
        assert_eq!(a.instructions, 160);
        assert_eq!(a.line_miss_rate(), 0.25);
        assert_eq!(a.miss_rate(), 5.0 / 160.0);
        assert!(a.to_string().contains("3.12%"));
        assert_eq!(SimStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn empty_trace_is_fine() {
        let p = prog();
        let l = Layout::source_order(&p);
        let stats = simulate(&p, &l, &Trace::new(), CacheConfig::direct_mapped_8k());
        assert_eq!(stats, SimStats::default());
    }
}
