//! Validated cache geometry.

use std::error::Error;
use std::fmt;

/// Geometry of an instruction cache: total size, line size, and
/// associativity.
///
/// All three quantities are validated at construction: sizes must be
/// positive powers of two, the line size must divide the total size, and the
/// associativity must divide the line count.
///
/// The paper's evaluation cache is [`CacheConfig::direct_mapped_8k`]:
/// 8 KB, direct-mapped, 32-byte lines (§5.2).
///
/// # Example
///
/// ```
/// use tempo_cache::CacheConfig;
/// let c = CacheConfig::new(8 * 1024, 32, 1)?;
/// assert_eq!(c.lines(), 256);
/// assert_eq!(c.sets(), 256);
/// # Ok::<(), tempo_cache::CacheConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size: u32,
    line_size: u32,
    associativity: u32,
}

/// Errors rejected by [`CacheConfig::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheConfigError {
    /// Total size is zero or not a power of two.
    BadSize(u32),
    /// Line size is zero, not a power of two, or larger than the total size.
    BadLineSize(u32),
    /// Associativity is zero or does not divide the line count.
    BadAssociativity(u32),
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::BadSize(s) => {
                write!(f, "cache size {s} is not a positive power of two")
            }
            CacheConfigError::BadLineSize(s) => write!(
                f,
                "line size {s} is not a positive power of two dividing the cache size"
            ),
            CacheConfigError::BadAssociativity(a) => {
                write!(f, "associativity {a} does not evenly divide the line count")
            }
        }
    }
}

impl Error for CacheConfigError {}

impl CacheConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheConfigError`] naming the first offending parameter.
    pub fn new(size: u32, line_size: u32, associativity: u32) -> Result<Self, CacheConfigError> {
        if size == 0 || !size.is_power_of_two() {
            return Err(CacheConfigError::BadSize(size));
        }
        if line_size == 0 || !line_size.is_power_of_two() || line_size > size {
            return Err(CacheConfigError::BadLineSize(line_size));
        }
        let lines = size / line_size;
        if associativity == 0 || !lines.is_multiple_of(associativity) {
            return Err(CacheConfigError::BadAssociativity(associativity));
        }
        Ok(CacheConfig {
            size,
            line_size,
            associativity,
        })
    }

    /// The paper's evaluation cache: 8 KB direct-mapped, 32-byte lines.
    pub fn direct_mapped_8k() -> Self {
        CacheConfig::new(8 * 1024, 32, 1).expect("preset geometry is valid")
    }

    /// A direct-mapped cache of the given size with 32-byte lines.
    ///
    /// # Errors
    ///
    /// Returns an error if `size` is not a valid power-of-two size ≥ 32.
    pub fn direct_mapped(size: u32) -> Result<Self, CacheConfigError> {
        CacheConfig::new(size, 32, 1)
    }

    /// A 2-way set-associative 8 KB cache with 32-byte lines (§6 of the
    /// paper).
    pub fn two_way_8k() -> Self {
        CacheConfig::new(8 * 1024, 32, 2).expect("preset geometry is valid")
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u32 {
        self.line_size
    }

    /// Associativity (1 = direct-mapped).
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Number of cache lines (`size / line_size`).
    pub fn lines(&self) -> u32 {
        self.size / self.line_size
    }

    /// Number of sets (`lines / associativity`).
    pub fn sets(&self) -> u32 {
        self.lines() / self.associativity
    }

    /// Returns `true` for associativity 1.
    pub fn is_direct_mapped(&self) -> bool {
        self.associativity == 1
    }

    /// The memory line index of a byte address (`addr / line_size`).
    #[inline]
    pub fn line_of_addr(&self, addr: u64) -> u64 {
        addr / u64::from(self.line_size)
    }

    /// The cache line index a byte address maps to in a direct-mapped cache
    /// (`(addr / line_size) mod lines`) — the paper's mapping function in §3.
    #[inline]
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn cache_line_of_addr(&self, addr: u64) -> u32 {
        (self.line_of_addr(addr) % u64::from(self.lines())) as u32
    }

    /// The set index of a memory line.
    #[inline]
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    pub fn set_of_line(&self, line: u64) -> u32 {
        (line % u64::from(self.sets())) as u32
    }

    /// Number of cache lines a block of `bytes` starting at `addr` touches.
    pub fn lines_touched(&self, addr: u64, bytes: u32) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let first = self.line_of_addr(addr);
        let last = self.line_of_addr(addr + u64::from(bytes) - 1);
        last - first + 1
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB, {}-way, {}-byte lines",
            self.size / 1024,
            self.associativity,
            self.line_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_8k_dm() {
        let c = CacheConfig::direct_mapped_8k();
        assert_eq!(c.size(), 8192);
        assert_eq!(c.line_size(), 32);
        assert_eq!(c.associativity(), 1);
        assert_eq!(c.lines(), 256);
        assert_eq!(c.sets(), 256);
        assert!(c.is_direct_mapped());
        assert_eq!(c.to_string(), "8 KB, 1-way, 32-byte lines");
    }

    #[test]
    fn preset_two_way() {
        let c = CacheConfig::two_way_8k();
        assert_eq!(c.sets(), 128);
        assert!(!c.is_direct_mapped());
    }

    #[test]
    fn rejects_bad_geometry() {
        assert_eq!(
            CacheConfig::new(0, 32, 1).unwrap_err(),
            CacheConfigError::BadSize(0)
        );
        assert_eq!(
            CacheConfig::new(3000, 32, 1).unwrap_err(),
            CacheConfigError::BadSize(3000)
        );
        assert_eq!(
            CacheConfig::new(8192, 0, 1).unwrap_err(),
            CacheConfigError::BadLineSize(0)
        );
        assert_eq!(
            CacheConfig::new(8192, 48, 1).unwrap_err(),
            CacheConfigError::BadLineSize(48)
        );
        assert_eq!(
            CacheConfig::new(32, 64, 1).unwrap_err(),
            CacheConfigError::BadLineSize(64)
        );
        assert_eq!(
            CacheConfig::new(8192, 32, 0).unwrap_err(),
            CacheConfigError::BadAssociativity(0)
        );
        assert_eq!(
            CacheConfig::new(8192, 32, 3).unwrap_err(),
            CacheConfigError::BadAssociativity(3)
        );
    }

    #[test]
    fn fully_associative_is_allowed() {
        let c = CacheConfig::new(1024, 32, 32).unwrap();
        assert_eq!(c.sets(), 1);
    }

    #[test]
    fn address_mapping() {
        let c = CacheConfig::direct_mapped_8k();
        assert_eq!(c.line_of_addr(0), 0);
        assert_eq!(c.line_of_addr(31), 0);
        assert_eq!(c.line_of_addr(32), 1);
        assert_eq!(c.cache_line_of_addr(0), 0);
        assert_eq!(c.cache_line_of_addr(8192), 0); // wraps
        assert_eq!(c.cache_line_of_addr(8192 + 32), 1);
    }

    #[test]
    fn set_mapping_two_way() {
        let c = CacheConfig::two_way_8k();
        assert_eq!(c.set_of_line(0), 0);
        assert_eq!(c.set_of_line(128), 0); // wraps at 128 sets
        assert_eq!(c.set_of_line(129), 1);
    }

    #[test]
    fn lines_touched_counts_straddles() {
        let c = CacheConfig::direct_mapped_8k();
        assert_eq!(c.lines_touched(0, 0), 0);
        assert_eq!(c.lines_touched(0, 1), 1);
        assert_eq!(c.lines_touched(0, 32), 1);
        assert_eq!(c.lines_touched(0, 33), 2);
        assert_eq!(c.lines_touched(31, 2), 2); // straddles a boundary
        assert_eq!(c.lines_touched(32, 64), 2);
    }

    #[test]
    fn error_display() {
        assert!(CacheConfigError::BadSize(7).to_string().contains('7'));
        assert!(CacheConfigError::BadLineSize(9).to_string().contains('9'));
        assert!(CacheConfigError::BadAssociativity(5)
            .to_string()
            .contains('5'));
    }
}
