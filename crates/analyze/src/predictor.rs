//! The static conflict predictor: per-set pressure and the top conflicting
//! procedure pairs, estimated without running the cache simulator.
//!
//! This generalizes the placement-wide metric of
//! [`tempo_place::metric::trg_conflict_cost`]: the same chunk→line
//! occupancy underlies both, but the predictor keeps the intermediate
//! structure (which sets are over-subscribed, which procedure pairs are
//! responsible) instead of collapsing everything to one number.

use std::collections::HashMap;

use tempo_cache::{classify, simulate, CacheConfig};
use tempo_place::metric::chunk_occupancy_covered;
use tempo_program::{Layout, ProcId, Program};
use tempo_trace::Trace;
use tempo_trg::{ProfileData, WeightedGraph};

use crate::bounds::{miss_bounds, MissBounds};
use crate::diagnostics::{json_string, proc_names};

/// Occupancy pressure of one cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetPressure {
    /// The set index.
    pub set: u32,
    /// Number of chunk-line residencies mapping to the set.
    pub resident: u32,
    /// Residencies beyond the set's capacity
    /// (`resident - associativity`, floored at zero). A non-zero excess
    /// means the set cannot hold its static working set at once.
    pub excess: u32,
}

/// A procedure pair predicted to conflict.
#[derive(Debug, Clone, PartialEq)]
pub struct ConflictPair {
    /// First procedure (smaller id).
    pub a: ProcId,
    /// Second procedure.
    pub b: ProcId,
    /// Number of cache lines on which chunks of the two co-reside.
    pub shared_lines: u32,
    /// Summed `TRG_place` weight of the co-resident chunk pairs (zero when
    /// no graph was supplied).
    pub weight: f64,
    /// Estimated upper bound on the conflict misses this pair can cause:
    /// each unit of TRG weight is one temporal alternation, and one
    /// alternation on a shared line costs at most two misses (each block
    /// evicts and re-fetches the other once).
    pub miss_bound: f64,
}

/// The full predictor output.
#[derive(Debug, Clone, PartialEq)]
pub struct ConflictPrediction {
    /// Total predicted conflict cost. With a `TRG_place` graph this equals
    /// [`tempo_place::metric::trg_conflict_cost`] on direct-mapped caches;
    /// without one it falls back to counting co-resident chunk pairs.
    pub predicted_cost: f64,
    /// Number of sets in the analyzed cache.
    pub sets: u32,
    /// Number of sets whose static occupancy exceeds their capacity.
    pub pressured_sets: u32,
    /// The most over-subscribed sets, highest excess first (top-K).
    pub hot_sets: Vec<SetPressure>,
    /// The heaviest conflicting procedure pairs, heaviest first (top-K).
    pub top_pairs: Vec<ConflictPair>,
}

impl ConflictPrediction {
    pub(crate) fn render_text(&self, program: &Program) -> String {
        let mut out = format!(
            "conflict prediction: cost {:.1}, {}/{} sets over capacity\n",
            self.predicted_cost, self.pressured_sets, self.sets
        );
        for p in &self.top_pairs {
            let names = proc_names(program, &[p.a, p.b]);
            out.push_str(&format!(
                "  {} <-> {}: {} shared line(s), weight {:.1}, <= {:.0} misses\n",
                names[0], names[1], p.shared_lines, p.weight, p.miss_bound
            ));
        }
        out
    }

    pub(crate) fn render_json(&self, program: &Program) -> String {
        let pairs = self
            .top_pairs
            .iter()
            .map(|p| {
                let names = proc_names(program, &[p.a, p.b]);
                format!(
                    "{{\"a\":{},\"b\":{},\"shared_lines\":{},\"weight\":{},\"miss_bound\":{}}}",
                    json_string(&names[0]),
                    json_string(&names[1]),
                    p.shared_lines,
                    p.weight,
                    p.miss_bound
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let sets = self
            .hot_sets
            .iter()
            .map(|s| {
                format!(
                    "{{\"set\":{},\"resident\":{},\"excess\":{}}}",
                    s.set, s.resident, s.excess
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "\"prediction\":{{\"cost\":{},\"sets\":{},\"pressured_sets\":{},\"hot_sets\":[{}],\"pairs\":[{}]}}",
            self.predicted_cost, self.sets, self.pressured_sets, sets, pairs
        )
    }
}

/// Runs the static predictor over a layout.
///
/// `trg_place` is the chunk-grain temporal graph from profiling; without
/// it, pair weights and the cost degrade to pure occupancy counting.
/// `top_k` bounds the reported hot sets and pairs (the totals are always
/// exact). Layouts covering only a prefix of the procedure ids are
/// analyzed over the covered subset (uncovered procedures contribute no
/// occupancy).
#[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
pub fn predict(
    program: &Program,
    layout: &Layout,
    cache: CacheConfig,
    trg_place: Option<&WeightedGraph>,
    top_k: usize,
) -> ConflictPrediction {
    let occupancy = chunk_occupancy_covered(program, layout, cache);
    let sets = cache.sets();
    let assoc = cache.associativity();

    // Set pressure: fold cache lines onto sets (line l belongs to set
    // l mod sets, since sets divides the line count).
    let mut resident = vec![0u32; sets as usize];
    for (l, line) in occupancy.iter().enumerate() {
        resident[l % sets as usize] += line.len() as u32;
    }
    let mut pressure: Vec<SetPressure> = resident
        .iter()
        .enumerate()
        .map(|(s, &r)| SetPressure {
            set: s as u32,
            resident: r,
            excess: r.saturating_sub(assoc),
        })
        .filter(|p| p.excess > 0)
        .collect();
    let pressured_sets = pressure.len() as u32;
    pressure.sort_by_key(|p| (std::cmp::Reverse(p.excess), p.set));
    pressure.truncate(top_k);

    // Pairwise accumulation per line, aggregated to procedure pairs.
    let mut predicted_cost = 0.0;
    let mut pairs: HashMap<(u32, u32), (u32, f64)> = HashMap::new();
    for line in &occupancy {
        for i in 0..line.len() {
            for j in (i + 1)..line.len() {
                let (ci, cj) = (line[i], line[j]);
                let w = match trg_place {
                    Some(g) => g.weight(ci.chunk.index(), cj.chunk.index()),
                    None => 1.0,
                };
                predicted_cost += w;
                if ci.owner == cj.owner {
                    continue; // intra-procedure wrap, not a placement pair
                }
                let key = if ci.owner.index() <= cj.owner.index() {
                    (ci.owner.index(), cj.owner.index())
                } else {
                    (cj.owner.index(), ci.owner.index())
                };
                let e = pairs.entry(key).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += w;
            }
        }
    }
    let mut top_pairs: Vec<ConflictPair> = pairs
        .into_iter()
        .map(|((a, b), (shared_lines, weight))| ConflictPair {
            a: ProcId::new(a),
            b: ProcId::new(b),
            shared_lines,
            weight,
            miss_bound: 2.0 * weight,
        })
        .filter(|p| p.weight > 0.0)
        .collect();
    top_pairs.sort_by(|x, y| {
        y.weight
            .total_cmp(&x.weight)
            .then(y.shared_lines.cmp(&x.shared_lines))
            .then(x.a.index().cmp(&y.a.index()))
            .then(x.b.index().cmp(&y.b.index()))
    });
    top_pairs.truncate(top_k);

    ConflictPrediction {
        predicted_cost,
        sets,
        pressured_sets,
        hot_sets: pressure,
        top_pairs,
    }
}

/// The result of checking the predictor against the cache simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossValidation {
    /// Layout indices ordered best-first by predicted conflict cost.
    pub predicted_rank: Vec<usize>,
    /// Layout indices ordered best-first by simulated misses.
    pub simulated_rank: Vec<usize>,
}

impl CrossValidation {
    /// Returns `true` when the predictor orders the layouts exactly as the
    /// simulator does.
    pub fn agrees(&self) -> bool {
        self.predicted_rank == self.simulated_rank
    }
}

/// Ranks `layouts` by predicted cost and by simulated misses on `trace`,
/// for checking that the static predictor orders layouts the way a full
/// simulation would (the analyzer's self-test mode).
pub fn cross_validate(
    program: &Program,
    cache: CacheConfig,
    trg_place: &WeightedGraph,
    layouts: &[&Layout],
    trace: &Trace,
) -> CrossValidation {
    let costs: Vec<f64> = layouts
        .iter()
        .map(|l| predict(program, l, cache, Some(trg_place), 0).predicted_cost)
        .collect();
    let misses: Vec<u64> = layouts
        .iter()
        .map(|l| simulate(program, l, trace, cache).misses)
        .collect();
    let mut predicted_rank: Vec<usize> = (0..layouts.len()).collect();
    predicted_rank.sort_by(|&i, &j| costs[i].total_cmp(&costs[j]).then(i.cmp(&j)));
    let mut simulated_rank: Vec<usize> = (0..layouts.len()).collect();
    simulated_rank.sort_by(|&i, &j| misses[i].cmp(&misses[j]).then(i.cmp(&j)));
    CrossValidation {
        predicted_rank,
        simulated_rank,
    }
}

/// One layout's row in a bounds-vs-simulator soundness check.
#[derive(Debug, Clone)]
pub struct BoundsCheckRow {
    /// Index into the layout slice.
    pub index: usize,
    /// The static interval computed without the trace.
    pub bounds: MissBounds,
    /// Simulated conflict misses (3C classification).
    pub conflict: u64,
    /// Total simulated misses (cold + capacity + conflict).
    pub misses: u64,
    /// Figure-6 predicted conflict cost.
    pub predicted_cost: f64,
}

impl BoundsCheckRow {
    /// Whether the simulated conflict count falls inside the interval.
    pub fn sound(&self) -> bool {
        self.bounds.contains(self.conflict)
    }
}

/// The soundness harness output: per-layout interval checks plus the
/// predicted-vs-simulated ranking of [`cross_validate`].
#[derive(Debug, Clone)]
pub struct BoundsValidation {
    /// One row per input layout, in input order.
    pub rows: Vec<BoundsCheckRow>,
    /// Human-readable description of every interval violation (empty when
    /// the bounds are sound on this input).
    pub violations: Vec<String>,
    /// The layout ranking comparison.
    pub ranking: CrossValidation,
}

impl BoundsValidation {
    /// `true` when every simulated conflict count fell inside its interval.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Extends [`cross_validate`] into a soundness harness: replays the
/// simulator against the static [`MissBounds`] of every layout and
/// records each interval violation.
///
/// With `strict` set the harness **fails loudly** — it panics on the
/// first unsound input so CI cannot quietly ship a bound drift. Without
/// it, violations are returned for the caller to report.
///
/// # Panics
///
/// Panics when `strict` is set and any simulated conflict-miss count
/// falls outside its layout's interval.
pub fn cross_validate_bounds(
    program: &Program,
    profile: &ProfileData,
    layouts: &[&Layout],
    trace: &Trace,
    strict: bool,
) -> BoundsValidation {
    let cache = profile.cache;
    let mut rows = Vec::with_capacity(layouts.len());
    let mut violations = Vec::new();
    for (index, layout) in layouts.iter().enumerate() {
        let bounds = miss_bounds(
            program,
            layout,
            cache,
            &profile.popular,
            Some(&profile.trg_select),
        );
        let breakdown = classify(program, layout, trace, cache);
        let misses = breakdown.cold + breakdown.capacity + breakdown.conflict;
        let predicted_cost =
            predict(program, layout, cache, Some(&profile.trg_place), 0).predicted_cost;
        let row = BoundsCheckRow {
            index,
            bounds,
            conflict: breakdown.conflict,
            misses,
            predicted_cost,
        };
        if !row.sound() {
            violations.push(format!(
                "layout {index}: simulated {} conflict misses outside bound {}",
                row.conflict, row.bounds
            ));
        }
        rows.push(row);
    }
    assert!(
        !strict || violations.is_empty(),
        "miss-bound soundness violated:\n{}",
        violations.join("\n")
    );
    let mut predicted_rank: Vec<usize> = (0..rows.len()).collect();
    predicted_rank.sort_by(|&i, &j| {
        rows[i]
            .predicted_cost
            .total_cmp(&rows[j].predicted_cost)
            .then(i.cmp(&j))
    });
    let mut simulated_rank: Vec<usize> = (0..rows.len()).collect();
    simulated_rank.sort_by(|&i, &j| rows[i].misses.cmp(&rows[j].misses).then(i.cmp(&j)));
    BoundsValidation {
        rows,
        violations,
        ranking: CrossValidation {
            predicted_rank,
            simulated_rank,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_trg::{PopularitySelector, Profiler};

    /// Two hot 4 KB procedures that collide mod 8 KB under source order.
    fn setup() -> (Program, Trace) {
        let program = Program::builder()
            .procedure("a", 4096)
            .procedure("pad", 4096)
            .procedure("b", 4096)
            .build()
            .unwrap();
        let ids: Vec<ProcId> = program.ids().collect();
        let mut refs = Vec::new();
        for _ in 0..50 {
            refs.extend([ids[0], ids[2]]);
        }
        let trace = Trace::from_full_records(&program, refs);
        (program, trace)
    }

    #[test]
    fn hot_overlap_is_the_top_pair() {
        let (program, trace) = setup();
        let cache = CacheConfig::direct_mapped_8k();
        let profile = Profiler::new(&program, cache)
            .popularity(PopularitySelector::all())
            .profile(&trace);
        let layout = Layout::source_order(&program);
        let p = predict(&program, &layout, cache, Some(&profile.trg_place), 5);
        assert!(p.predicted_cost > 0.0);
        assert!(!p.top_pairs.is_empty());
        let top = &p.top_pairs[0];
        assert_eq!(
            (top.a, top.b),
            (ProcId::new(0), ProcId::new(2)),
            "a and b wrap onto the same lines"
        );
        assert!(top.shared_lines > 0);
        assert_eq!(top.miss_bound, 2.0 * top.weight);
    }

    #[test]
    fn predicted_cost_matches_metric_on_direct_mapped() {
        let (program, trace) = setup();
        let cache = CacheConfig::direct_mapped_8k();
        let profile = Profiler::new(&program, cache)
            .popularity(PopularitySelector::all())
            .profile(&trace);
        for layout in [
            Layout::source_order(&program),
            Layout::from_order(&program, &[ProcId::new(0), ProcId::new(2), ProcId::new(1)])
                .unwrap(),
        ] {
            let p = predict(&program, &layout, cache, Some(&profile.trg_place), 3);
            let metric = tempo_place::metric::trg_conflict_cost(
                &program,
                &layout,
                &profile.trg_place,
                cache,
            );
            assert_eq!(p.predicted_cost, metric);
        }
    }

    #[test]
    fn pressure_counts_oversubscribed_sets() {
        // 12 KB of code on an 8 KB direct-mapped cache: the last 4 KB wrap
        // onto the first 128 sets, putting exactly those over capacity.
        let (program, _) = setup();
        let cache = CacheConfig::direct_mapped_8k();
        let layout = Layout::source_order(&program);
        let p = predict(&program, &layout, cache, None, 4);
        assert_eq!(p.sets, 256);
        assert_eq!(p.pressured_sets, 128);
        assert_eq!(p.hot_sets.len(), 4, "top-k bound respected");
        assert_eq!(p.hot_sets[0].resident, 2);
        assert_eq!(p.hot_sets[0].excess, 1);
    }

    #[test]
    fn no_pressure_when_program_fits() {
        let program = Program::builder().procedure("tiny", 1024).build().unwrap();
        let cache = CacheConfig::direct_mapped_8k();
        let p = predict(&program, &Layout::source_order(&program), cache, None, 4);
        assert_eq!(p.pressured_sets, 0);
        assert!(p.hot_sets.is_empty());
        assert!(p.top_pairs.is_empty());
    }

    #[test]
    fn cross_validation_orders_good_before_bad() {
        let (program, trace) = setup();
        let cache = CacheConfig::direct_mapped_8k();
        let profile = Profiler::new(&program, cache)
            .popularity(PopularitySelector::all())
            .profile(&trace);
        let bad = Layout::source_order(&program);
        let good = Layout::from_order(&program, &[ProcId::new(0), ProcId::new(2), ProcId::new(1)])
            .unwrap();
        let cv = cross_validate(&program, cache, &profile.trg_place, &[&bad, &good], &trace);
        assert_eq!(cv.predicted_rank, vec![1, 0]);
        assert!(cv.agrees());
    }

    #[test]
    fn soundness_harness_accepts_real_bounds() {
        let (program, trace) = setup();
        let cache = CacheConfig::direct_mapped_8k();
        let profile = Profiler::new(&program, cache)
            .popularity(PopularitySelector::all())
            .profile(&trace);
        let bad = Layout::source_order(&program);
        let good = Layout::from_order(&program, &[ProcId::new(0), ProcId::new(2), ProcId::new(1)])
            .unwrap();
        let v = cross_validate_bounds(&program, &profile, &[&bad, &good], &trace, true);
        assert!(v.is_sound());
        assert_eq!(v.rows.len(), 2);
        assert!(v.rows.iter().all(BoundsCheckRow::sound));
        assert!(v.ranking.agrees());
        assert!(
            v.rows[0].bounds.hi >= v.rows[0].conflict,
            "interval covers the simulator"
        );
    }

    #[test]
    #[should_panic(expected = "miss-bound soundness violated")]
    fn soundness_harness_fails_loudly_on_a_violated_interval() {
        let (program, trace) = setup();
        let cache = CacheConfig::direct_mapped_8k();
        let mut profile = Profiler::new(&program, cache)
            .popularity(PopularitySelector::all())
            .profile(&trace);
        // Forge a profile that undercounts every reference: the upper
        // bound collapses below the simulator's conflict count.
        let zeros = vec![0u64; program.len()];
        profile.popular =
            tempo_trg::PopularSet::from_parts(program.ids().map(|_| true).collect(), zeros);
        let bad = Layout::source_order(&program);
        cross_validate_bounds(&program, &profile, &[&bad], &trace, true);
    }
}
