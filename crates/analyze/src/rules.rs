//! The structural lint rules and their registry.
//!
//! Every rule is a [`Rule`] implementation with a stable code (`L001`…)
//! and runs against one [`AnalysisInput`]. Rules never panic on corrupt
//! input — a layout that does not even cover the program trips `L001` and
//! makes the address-dependent rules skip themselves.

use tempo_program::{Chunks, Layout, ProcId};

use crate::bounds::miss_bounds;
use crate::diagnostics::{proc_names, AnalysisReport, Diagnostic, Severity};
use crate::{predictor, AnalysisInput};

/// A single lint rule.
pub trait Rule {
    /// The stable diagnostic code the rule emits under.
    fn code(&self) -> &'static str;
    /// A short human-readable rule name.
    fn name(&self) -> &'static str;
    /// Checks the input, appending any findings to `report`.
    fn check(&self, input: &AnalysisInput<'_>, report: &mut AnalysisReport);
}

/// All rules, in execution (and code) order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ProcedureCount),
        Box::new(Overlap),
        Box::new(ChunkIntegrity),
        Box::new(Alignment),
        Box::new(SplitInvariant),
        Box::new(PaddingBlowup),
        Box::new(UnalignedPopular),
        Box::new(CounterProductive),
        Box::new(DegenerateBounds),
    ]
}

/// Returns `true` when the layout covers exactly the program's procedures,
/// i.e. address-indexed rules can run without panicking.
fn addressable(input: &AnalysisInput<'_>) -> bool {
    input.layout.len() == input.program.len()
}

/// L001: the layout's address vector must cover exactly the program's
/// procedures.
struct ProcedureCount;

impl Rule for ProcedureCount {
    fn code(&self) -> &'static str {
        "L001"
    }
    fn name(&self) -> &'static str {
        "procedure-count"
    }
    fn check(&self, input: &AnalysisInput<'_>, report: &mut AnalysisReport) {
        if !addressable(input) {
            report.push(
                Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    format!(
                        "layout covers {} procedures but the program has {}",
                        input.layout.len(),
                        input.program.len()
                    ),
                )
                .with_suggestion("regenerate the layout from this program"),
            );
        }
    }
}

/// L002: no two procedures may overlap in memory.
struct Overlap;

impl Rule for Overlap {
    fn code(&self) -> &'static str {
        "L002"
    }
    fn name(&self) -> &'static str {
        "overlap"
    }
    fn check(&self, input: &AnalysisInput<'_>, report: &mut AnalysisReport) {
        if !addressable(input) {
            return;
        }
        let order = input.layout.order();
        for pair in order.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let end = input.layout.end_addr(a, input.program);
            let start = input.layout.addr(b);
            if end > start {
                let names = proc_names(input.program, &[a, b]);
                report.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Error,
                        format!(
                            "{} (ends at {end:#x}) overlaps {} (starts at {start:#x}) by {} bytes",
                            names[0],
                            names[1],
                            end - start
                        ),
                    )
                    .with_procs(vec![a, b])
                    .with_suggestion("re-linearize the placement; procedures must not share bytes"),
                );
            }
        }
    }
}

/// L003: the program's chunk table must tile each procedure exactly —
/// ordinal 0 at offset 0, contiguous offsets, lengths summing to the
/// procedure size, and no chunk extending past its owner.
struct ChunkIntegrity;

impl Rule for ChunkIntegrity {
    fn code(&self) -> &'static str {
        "L003"
    }
    fn name(&self) -> &'static str {
        "chunk-integrity"
    }
    fn check(&self, input: &AnalysisInput<'_>, report: &mut AnalysisReport) {
        let program = input.program;
        let mut next_offset = vec![0u32; program.len()];
        let mut next_ordinal = vec![0u32; program.len()];
        for info in Chunks::new(program) {
            let p = info.owner.as_usize();
            if info.ordinal != next_ordinal[p] || info.offset != next_offset[p] {
                report.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Error,
                        format!(
                            "chunk {} of {} is ordinal {} at offset {} (expected ordinal {} at offset {})",
                            info.id.index(),
                            proc_names(program, &[info.owner])[0],
                            info.ordinal,
                            info.offset,
                            next_ordinal[p],
                            next_offset[p],
                        ),
                    )
                    .with_procs(vec![info.owner]),
                );
                return; // the rest of the walk would cascade
            }
            next_ordinal[p] += 1;
            next_offset[p] += info.len;
            if info.len == 0 || next_offset[p] > program.size_of(info.owner) {
                report.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Error,
                        format!(
                            "chunk {} of {} has length {} extending to offset {} of a {}-byte procedure",
                            info.id.index(),
                            proc_names(program, &[info.owner])[0],
                            info.len,
                            next_offset[p],
                            program.size_of(info.owner),
                        ),
                    )
                    .with_procs(vec![info.owner]),
                );
                return;
            }
        }
        for id in program.ids() {
            let p = id.as_usize();
            if next_offset[p] != program.size_of(id) {
                report.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Error,
                        format!(
                            "chunks of {} cover {} of {} bytes",
                            proc_names(program, &[id])[0],
                            next_offset[p],
                            program.size_of(id),
                        ),
                    )
                    .with_procs(vec![id]),
                );
            }
        }
    }
}

/// L004: realized addresses must honor the placement's cache-relative
/// alignment decisions ([`tempo_place::PlacementTuples`]).
struct Alignment;

impl Rule for Alignment {
    fn code(&self) -> &'static str {
        "L004"
    }
    fn name(&self) -> &'static str {
        "alignment"
    }
    fn check(&self, input: &AnalysisInput<'_>, report: &mut AnalysisReport) {
        let Some(tuples) = input.tuples else {
            return;
        };
        if !addressable(input) {
            return;
        }
        if tuples.lines() != input.cache.lines() {
            report.push(
                Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    format!(
                        "placement tuples target a {}-line cache but the layout is checked against {} lines",
                        tuples.lines(),
                        input.cache.lines()
                    ),
                )
                .with_suggestion("analyze with the cache geometry the placement was computed for"),
            );
            return;
        }
        for (id, want) in tuples.aligned() {
            if id.as_usize() >= input.program.len() {
                continue;
            }
            let got = input.cache.cache_line_of_addr(input.layout.addr(id));
            if got != want {
                report.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Warning,
                        format!(
                            "{} was aligned to cache line {want} but lands on line {got}",
                            proc_names(input.program, &[id])[0],
                        ),
                    )
                    .with_procs(vec![id])
                    .with_suggestion(
                        "linearization moved this procedure; the placement's conflict \
                         estimates no longer hold",
                    ),
                );
            }
        }
    }
}

/// L005: in a split program, every cold part must be placed after its hot
/// part (the whole point of splitting is pushing cold bytes out of the
/// hot working set).
struct SplitInvariant;

impl Rule for SplitInvariant {
    fn code(&self) -> &'static str {
        "L005"
    }
    fn name(&self) -> &'static str {
        "split-invariant"
    }
    #[allow(clippy::cast_possible_truncation)] // bounded by construction (see expression)
    fn check(&self, input: &AnalysisInput<'_>, report: &mut AnalysisReport) {
        let Some(split) = input.split else {
            return;
        };
        if !addressable(input) {
            return;
        }
        for orig in 0..split.original_len() {
            let orig = ProcId::new(orig as u32);
            let Some(cold) = split.cold_part(orig) else {
                continue;
            };
            let hot = split.hot_part(orig);
            if hot.as_usize() >= input.program.len() || cold.as_usize() >= input.program.len() {
                continue; // L001 already reported the coverage problem
            }
            let (hot_addr, cold_addr) = (input.layout.addr(hot), input.layout.addr(cold));
            if cold_addr <= hot_addr {
                let names = proc_names(input.program, &[hot, cold]);
                report.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Error,
                        format!(
                            "cold part {} ({cold_addr:#x}) is placed before its hot part {} ({hot_addr:#x})",
                            names[1], names[0],
                        ),
                    )
                    .with_procs(vec![hot, cold])
                    .with_suggestion("sweep cold parts into the unpopular tail of the layout"),
                );
            }
        }
    }
}

/// L006: the layout's span should not dwarf the code it holds.
struct PaddingBlowup;

/// A layout spanning more than this multiple of the program's code size is
/// flagged (provided the padding also exceeds one full cache, so tiny
/// programs with a deliberate gap are not flagged).
const PADDING_FACTOR: f64 = 2.0;

impl Rule for PaddingBlowup {
    fn code(&self) -> &'static str {
        "L006"
    }
    fn name(&self) -> &'static str {
        "padding-blowup"
    }
    fn check(&self, input: &AnalysisInput<'_>, report: &mut AnalysisReport) {
        if !addressable(input) {
            return;
        }
        let span = input.layout.span(input.program);
        let code = input.program.total_size();
        let padding = input.layout.padding(input.program);
        if span as f64 > code as f64 * PADDING_FACTOR && padding > u64::from(input.cache.size()) {
            report.push(
                Diagnostic::new(
                    self.code(),
                    Severity::Warning,
                    format!(
                        "layout spans {span} bytes for {code} bytes of code ({padding} bytes of padding)"
                    ),
                )
                .with_suggestion(
                    "excessive padding wastes memory and TLB reach; check the \
                     linearization's gap-filling",
                ),
            );
        }
    }
}

/// L007: every popular procedure should have received a cache-relative
/// alignment; a popular procedure the placement never aligned is placed
/// arbitrarily exactly where it matters most.
struct UnalignedPopular;

impl Rule for UnalignedPopular {
    fn code(&self) -> &'static str {
        "L007"
    }
    fn name(&self) -> &'static str {
        "unaligned-popular"
    }
    fn check(&self, input: &AnalysisInput<'_>, report: &mut AnalysisReport) {
        let (Some(popular), Some(tuples)) = (input.popular, input.tuples) else {
            return;
        };
        let missing: Vec<ProcId> = popular
            .iter()
            .filter(|&id| tuples.offset(id).is_none())
            .collect();
        if !missing.is_empty() {
            let shown = proc_names(input.program, &missing).join(", ");
            report.push(
                Diagnostic::new(
                    self.code(),
                    Severity::Warning,
                    format!(
                        "{} popular procedure(s) never received a cache alignment: {shown}",
                        missing.len(),
                    ),
                )
                .with_procs(missing)
                .with_suggestion(
                    "popular procedures drive the miss rate; the placement should align \
                     all of them",
                ),
            );
        }
    }
}

/// L008: a placement whose static miss upper bound **and** predicted
/// conflict cost both exceed the identity (source-order) layout's is
/// counter-productive — the optimizer made the cache behavior worse than
/// doing nothing.
struct CounterProductive;

impl Rule for CounterProductive {
    fn code(&self) -> &'static str {
        "L008"
    }
    fn name(&self) -> &'static str {
        "counter-productive"
    }
    fn check(&self, input: &AnalysisInput<'_>, report: &mut AnalysisReport) {
        let Some(popular) = input.popular else {
            return;
        };
        if !addressable(input) {
            return;
        }
        let identity = Layout::source_order(input.program);
        let ours = miss_bounds(
            input.program,
            input.layout,
            input.cache,
            popular,
            input.trg_select,
        );
        let base = miss_bounds(
            input.program,
            &identity,
            input.cache,
            popular,
            input.trg_select,
        );
        if ours.hi <= base.hi {
            return;
        }
        // The interval comparison alone can fire on layouts that merely
        // *look* worse through the bound's over-approximation; require the
        // Figure-6 conflict metric to agree before flagging (when a
        // temporal graph is available to evaluate it).
        if input.trg_place.is_some() {
            let cost = |l: &Layout| {
                predictor::predict(input.program, l, input.cache, input.trg_place, 0).predicted_cost
            };
            if cost(input.layout) <= cost(&identity) {
                return;
            }
        }
        let provable = ours.lo > base.hi;
        report.push(
            Diagnostic::new(
                self.code(),
                Severity::Warning,
                format!(
                    "layout's conflict-miss upper bound {} exceeds the identity layout's {}{}",
                    ours.hi,
                    base.hi,
                    if provable {
                        " (provably counter-productive: its lower bound is above the identity's upper bound)"
                    } else {
                        ""
                    }
                ),
            )
            .with_suggestion(
                "this placement is predicted to behave worse than not placing at all; \
                 check the profile it was derived from",
            ),
        );
    }
}

/// L009: degenerate miss bounds — the analyzer derived `lo == hi == 0`
/// even though the popular set is non-empty and its code cannot fit the
/// cache, meaning the predictor saw no occupancy at all (typically a
/// profile whose reference counts were lost).
struct DegenerateBounds;

impl Rule for DegenerateBounds {
    fn code(&self) -> &'static str {
        "L009"
    }
    fn name(&self) -> &'static str {
        "degenerate-bounds"
    }
    fn check(&self, input: &AnalysisInput<'_>, report: &mut AnalysisReport) {
        let Some(popular) = input.popular else {
            return;
        };
        if !addressable(input) || popular.count() == 0 {
            return;
        }
        // A popular working set that fits the cache can honestly bound to
        // [0, 0]; only a set that *must* contend makes zero width suspect.
        if popular.popular_size(input.program) <= u64::from(input.cache.size()) {
            return;
        }
        let b = miss_bounds(
            input.program,
            input.layout,
            input.cache,
            popular,
            input.trg_select,
        );
        if b.lo == 0 && b.hi == 0 {
            report.push(
                Diagnostic::new(
                    self.code(),
                    Severity::Note,
                    format!(
                        "miss bounds are [0, 0] although {} popular procedure(s) exceed the \
                         {}-byte cache — the analyzer saw no line occupancy",
                        popular.count(),
                        input.cache.size()
                    ),
                )
                .with_suggestion(
                    "the profile's reference counts look empty; re-profile before trusting \
                     the bounds",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use tempo_cache::CacheConfig;
    use tempo_place::{PlacementTuples, SplitPlan, SplitProgram};
    use tempo_program::{Layout, Program};
    use tempo_trg::PopularSet;

    fn program() -> Program {
        Program::builder()
            .procedure("a", 100)
            .procedure("b", 50)
            .procedure("c", 200)
            .build()
            .unwrap()
    }

    fn codes(report: &AnalysisReport) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_source_order_has_no_findings() {
        let p = program();
        let layout = Layout::source_order(&p);
        let input = AnalysisInput::new(&p, &layout, CacheConfig::direct_mapped_8k());
        let report = Analyzer::new().analyze(&input);
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.warning_count(), 0);
        assert_eq!(report.exit_code(true), 0);
    }

    #[test]
    fn wrong_count_trips_l001_and_suppresses_address_rules() {
        let p = program();
        let layout = Layout::from_addresses(vec![0, 100]);
        let input = AnalysisInput::new(&p, &layout, CacheConfig::direct_mapped_8k());
        let report = Analyzer::new().analyze(&input);
        // Address rules stay silent; the predictor still runs on the
        // covered prefix and flags the partial coverage.
        assert_eq!(codes(&report), vec!["L001", "P001"]);
        assert_eq!(report.exit_code(false), 1);
        assert!(
            report.prediction().is_some(),
            "covered subset still gets pressure data"
        );
    }

    #[test]
    fn overlap_trips_l002_for_every_pair() {
        let p = program();
        // a[0,100) overlaps b[50,100); b overlaps c[60,260).
        let layout = Layout::from_addresses(vec![0, 50, 60]);
        let input = AnalysisInput::new(&p, &layout, CacheConfig::direct_mapped_8k());
        let report = Analyzer::new().analyze(&input);
        assert_eq!(codes(&report), vec!["L002", "L002"]);
        assert!(report.diagnostics()[0].message.contains("overlaps"));
    }

    #[test]
    fn misalignment_trips_l004_warning() {
        let p = program();
        let cache = CacheConfig::direct_mapped_8k();
        let layout = Layout::source_order(&p);
        let mut tuples = PlacementTuples::new(p.len(), cache.lines());
        // a really lands on line 0; claim line 7.
        tuples.set_offset(ProcId::new(0), 7);
        let input = AnalysisInput::new(&p, &layout, cache).with_tuples(&tuples);
        let report = Analyzer::new().analyze(&input);
        assert_eq!(codes(&report), vec!["L004"]);
        assert_eq!(report.diagnostics()[0].severity, Severity::Warning);
        assert_eq!(report.exit_code(false), 0, "warnings pass by default");
        assert_eq!(report.exit_code(true), 1, "but fail under deny-warnings");
    }

    #[test]
    fn honored_alignment_is_silent() {
        let p = program();
        let cache = CacheConfig::direct_mapped_8k();
        let layout = Layout::source_order(&p);
        let mut tuples = PlacementTuples::new(p.len(), cache.lines());
        for id in p.ids() {
            tuples.set_offset(id, cache.cache_line_of_addr(layout.addr(id)));
        }
        let input = AnalysisInput::new(&p, &layout, cache).with_tuples(&tuples);
        let report = Analyzer::new().analyze(&input);
        assert_eq!(report.warning_count(), 0);
    }

    #[test]
    fn tuple_geometry_mismatch_is_an_error() {
        let p = program();
        let layout = Layout::source_order(&p);
        let tuples = PlacementTuples::new(p.len(), 64); // 2 KB worth of lines
        let input =
            AnalysisInput::new(&p, &layout, CacheConfig::direct_mapped_8k()).with_tuples(&tuples);
        let report = Analyzer::new().analyze(&input);
        assert_eq!(codes(&report), vec!["L004"]);
        assert_eq!(report.diagnostics()[0].severity, Severity::Error);
    }

    #[test]
    fn cold_before_hot_trips_l005() {
        let p = Program::builder()
            .procedure("f", 4096)
            .procedure("g", 1024)
            .build()
            .unwrap();
        let mut plan = SplitPlan::new();
        plan.split_at(ProcId::new(0), 512);
        let sp = SplitProgram::split(&p, &plan).unwrap();
        let hot = sp.hot_part(ProcId::new(0));
        let cold = sp.cold_part(ProcId::new(0)).unwrap();
        // Place cold at 0, hot after it: inverted.
        let order = vec![cold, sp.hot_part(ProcId::new(1)), hot];
        let layout = Layout::from_order(sp.program(), &order).unwrap();
        let input = AnalysisInput::new(sp.program(), &layout, CacheConfig::direct_mapped_8k())
            .with_split(&sp);
        let report = Analyzer::new().analyze(&input);
        assert_eq!(codes(&report), vec!["L005"]);
        assert_eq!(report.error_count(), 1);

        // The proper order is silent.
        let good =
            Layout::from_order(sp.program(), &[hot, sp.hot_part(ProcId::new(1)), cold]).unwrap();
        let input = AnalysisInput::new(sp.program(), &good, CacheConfig::direct_mapped_8k())
            .with_split(&sp);
        assert_eq!(Analyzer::new().analyze(&input).error_count(), 0);
    }

    #[test]
    fn padding_blowup_trips_l006() {
        let p = program(); // 350 bytes of code
        let cache = CacheConfig::direct_mapped_8k();
        // Span 50 KB: > 2x code and > 8 KB of padding.
        let layout = Layout::from_addresses(vec![0, 25_000, 50_000]);
        let input = AnalysisInput::new(&p, &layout, cache);
        let report = Analyzer::new().analyze(&input);
        assert_eq!(codes(&report), vec!["L006"]);

        // A modest gap stays silent (padding below one cache).
        let layout = Layout::from_addresses(vec![0, 2000, 4000]);
        let input = AnalysisInput::new(&p, &layout, cache);
        assert_eq!(Analyzer::new().analyze(&input).warning_count(), 0);
    }

    #[test]
    fn unaligned_popular_trips_l007() {
        let p = program();
        let cache = CacheConfig::direct_mapped_8k();
        let layout = Layout::source_order(&p);
        let popular = PopularSet::from_parts(vec![true, false, true], vec![10, 0, 10]);
        let mut tuples = PlacementTuples::new(p.len(), cache.lines());
        tuples.set_offset(
            ProcId::new(0),
            cache.cache_line_of_addr(layout.addr(ProcId::new(0))),
        );
        // c is popular but never aligned.
        let input = AnalysisInput::new(&p, &layout, cache)
            .with_popular(&popular)
            .with_tuples(&tuples);
        let report = Analyzer::new().analyze(&input);
        assert_eq!(codes(&report), vec!["L007"]);
        assert_eq!(report.diagnostics()[0].procs, vec![ProcId::new(2)]);
    }

    #[test]
    fn counter_productive_layout_trips_l008() {
        let cache = CacheConfig::direct_mapped_8k();
        let p = Program::builder()
            .procedure("hot_a", 64)
            .procedure("hot_b", 64)
            .build()
            .unwrap();
        let popular = PopularSet::from_parts(vec![true, true], vec![100, 100]);
        // Chunk-grain graph: each procedure is a single chunk here, so
        // chunk ids coincide with procedure ids.
        let mut trg_place = tempo_trg::WeightedGraph::new();
        trg_place.add_weight(0, 1, 50.0);
        let mut trg_select = tempo_trg::WeightedGraph::new();
        trg_select.add_weight(0, 1, 100.0);

        // Identity keeps the pair on adjacent lines; the "optimized"
        // layout stacks them one cache-size apart, onto the same line.
        let stacked = Layout::from_addresses(vec![0, u64::from(cache.size())]);
        let input = AnalysisInput::new(&p, &stacked, cache)
            .with_popular(&popular)
            .with_trg_place(&trg_place)
            .with_trg_select(&trg_select);
        let report = Analyzer::new().analyze(&input);
        assert_eq!(codes(&report), vec!["L008"]);
        assert_eq!(report.diagnostics()[0].severity, Severity::Warning);
        assert!(
            report.diagnostics()[0].message.contains("provably"),
            "forced alternations put lo above the identity's hi: {}",
            report.diagnostics()[0].message
        );

        // Source order itself never trips the rule.
        let identity = Layout::source_order(&p);
        let input = AnalysisInput::new(&p, &identity, cache)
            .with_popular(&popular)
            .with_trg_place(&trg_place)
            .with_trg_select(&trg_select);
        assert_eq!(Analyzer::new().analyze(&input).warning_count(), 0);
    }

    #[test]
    fn degenerate_bounds_trip_l009() {
        // Popular code far beyond the cache, but every reference count is
        // zero: the bound collapses to [0, 0], which cannot be honest.
        let cache = CacheConfig::new(1024, 32, 1).unwrap();
        let p = Program::builder()
            .procedure("big_a", 5000)
            .procedure("big_b", 5000)
            .build()
            .unwrap();
        let popular = PopularSet::from_parts(vec![true, true], vec![0, 0]);
        let layout = Layout::source_order(&p);
        let input = AnalysisInput::new(&p, &layout, cache).with_popular(&popular);
        let report = Analyzer::new().analyze(&input);
        assert_eq!(codes(&report), vec!["L009"]);
        assert_eq!(report.diagnostics()[0].severity, Severity::Note);
        assert_eq!(report.exit_code(true), 0, "notes never affect exit codes");

        // Healthy counts on the same geometry stay silent.
        let popular = PopularSet::from_parts(vec![true, true], vec![100, 100]);
        let input = AnalysisInput::new(&p, &layout, cache).with_popular(&popular);
        let report = Analyzer::new().analyze(&input);
        assert!(!codes(&report).contains(&"L009"), "{:?}", codes(&report));
    }

    #[test]
    fn chunk_integrity_holds_for_builder_programs() {
        let p = Program::builder()
            .procedure("x", 300)
            .procedure("y", 256)
            .procedure("z", 1)
            .chunk_size(256)
            .build()
            .unwrap();
        let layout = Layout::source_order(&p);
        let input = AnalysisInput::new(&p, &layout, CacheConfig::direct_mapped_8k());
        let report = Analyzer::new().analyze(&input);
        assert_eq!(report.error_count(), 0);
    }
}
