//! # tempo-analyze — static layout linter and conflict-miss predictor
//!
//! This crate checks a finished [`Layout`] against the [`Program`] and
//! cache it targets **without running the simulator**, producing CI-grade
//! diagnostics in three layers:
//!
//! 1. **Diagnostics framework** — [`Diagnostic`] findings with stable
//!    codes, an [`AnalysisReport`] with severity counts, human-readable
//!    and JSON renderers, and an exit-code contract (`0` clean, `1`
//!    diagnostics failed; usage errors are the CLI's `2`).
//! 2. **Structural lints** ([`rules`]) — overlap, procedure-coverage,
//!    chunk-table integrity, alignment-vs-address agreement, split
//!    hot/cold invariants, padding blowup, and unaligned popular
//!    procedures.
//! 3. **Conflict predictor** ([`predictor`]) — a per-set pressure map and
//!    the top conflicting procedure pairs with estimated miss bounds,
//!    generalizing the `TRG_place` conflict metric of
//!    [`tempo_place::metric`]; [`predictor::cross_validate`] checks its
//!    layout ranking against the real simulator.
//!
//! # Example
//!
//! ```
//! use tempo_analyze::{AnalysisInput, Analyzer};
//! use tempo_cache::CacheConfig;
//! use tempo_program::{Layout, Program};
//!
//! let program = Program::builder()
//!     .procedure("a", 100)
//!     .procedure("b", 200)
//!     .build()?;
//! // b starts inside a: a structural error.
//! let layout = Layout::from_addresses(vec![0, 50]);
//! let input = AnalysisInput::new(&program, &layout, CacheConfig::direct_mapped_8k());
//! let report = Analyzer::new().analyze(&input);
//! assert_eq!(report.error_count(), 1);
//! assert_eq!(report.exit_code(false), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// In the test build, `unwrap` IS the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

pub mod bounds;
mod diagnostics;
pub mod predictor;
pub mod rules;

pub use bounds::{miss_bounds, screen_layouts, MissBounds, ScreenReport, ScreenedLayout};
pub use diagnostics::{AnalysisReport, Diagnostic, Severity};
pub use predictor::{
    BoundsCheckRow, BoundsValidation, ConflictPair, ConflictPrediction, CrossValidation,
    SetPressure,
};
pub use rules::Rule;

use tempo_cache::CacheConfig;
use tempo_place::{PlacementTuples, SplitProgram};
use tempo_program::{Layout, Program};
use tempo_trg::{PopularSet, ProfileData, WeightedGraph};

/// Everything one analysis run looks at: the mandatory program + layout +
/// cache triple, plus whatever optional profiling and placement artifacts
/// are available (each unlocks additional rules).
#[derive(Debug, Clone, Copy)]
pub struct AnalysisInput<'a> {
    /// The program the layout places.
    pub program: &'a Program,
    /// The layout under analysis.
    pub layout: &'a Layout,
    /// The cache geometry to check against.
    pub cache: CacheConfig,
    /// Chunk-grain temporal graph; enables weighted conflict prediction.
    pub trg_place: Option<&'a WeightedGraph>,
    /// Procedure-grain temporal graph; enables the miss-bound lower bound.
    pub trg_select: Option<&'a WeightedGraph>,
    /// Weighted call graph (currently informational only).
    pub wcg: Option<&'a WeightedGraph>,
    /// Popular-procedure set; enables the unaligned-popular rule.
    pub popular: Option<&'a PopularSet>,
    /// The placement's alignment decisions; enables the alignment rules.
    pub tuples: Option<&'a PlacementTuples>,
    /// Hot/cold split mapping; enables the split-invariant rule.
    pub split: Option<&'a SplitProgram>,
}

impl<'a> AnalysisInput<'a> {
    /// Creates an input with only the mandatory triple.
    pub fn new(program: &'a Program, layout: &'a Layout, cache: CacheConfig) -> Self {
        AnalysisInput {
            program,
            layout,
            cache,
            trg_place: None,
            trg_select: None,
            wcg: None,
            popular: None,
            tuples: None,
            split: None,
        }
    }

    /// Creates an input wired to a training profile (cache geometry,
    /// both TRGs, WCG, and popularity all come from `profile`).
    pub fn from_profile(
        program: &'a Program,
        layout: &'a Layout,
        profile: &'a ProfileData,
    ) -> Self {
        AnalysisInput::new(program, layout, profile.cache)
            .with_trg_place(&profile.trg_place)
            .with_trg_select(&profile.trg_select)
            .with_wcg(&profile.wcg)
            .with_popular(&profile.popular)
    }

    /// Supplies the chunk-grain temporal graph.
    #[must_use]
    pub fn with_trg_place(mut self, g: &'a WeightedGraph) -> Self {
        self.trg_place = Some(g);
        self
    }

    /// Supplies the procedure-grain temporal graph (`TRG_select`).
    #[must_use]
    pub fn with_trg_select(mut self, g: &'a WeightedGraph) -> Self {
        self.trg_select = Some(g);
        self
    }

    /// Supplies the weighted call graph.
    #[must_use]
    pub fn with_wcg(mut self, g: &'a WeightedGraph) -> Self {
        self.wcg = Some(g);
        self
    }

    /// Supplies the popular-procedure set.
    #[must_use]
    pub fn with_popular(mut self, p: &'a PopularSet) -> Self {
        self.popular = Some(p);
        self
    }

    /// Supplies the placement's alignment tuples.
    #[must_use]
    pub fn with_tuples(mut self, t: &'a PlacementTuples) -> Self {
        self.tuples = Some(t);
        self
    }

    /// Supplies the hot/cold split mapping.
    #[must_use]
    pub fn with_split(mut self, s: &'a SplitProgram) -> Self {
        self.split = Some(s);
        self
    }
}

/// The analysis driver: runs every registered rule, then the conflict
/// predictor, and aggregates an [`AnalysisReport`].
#[derive(Debug, Clone)]
pub struct Analyzer {
    top_k: usize,
    with_bounds: bool,
}

impl Analyzer {
    /// An analyzer reporting the top 8 hot sets and conflict pairs.
    pub fn new() -> Self {
        Analyzer {
            top_k: 8,
            with_bounds: false,
        }
    }

    /// Bounds the number of hot sets / conflict pairs in the prediction.
    #[must_use]
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// Also attaches the sound conflict-miss interval ([`MissBounds`]) to
    /// the report (requires a popular set on the input; `tempo analyze
    /// --bounds`).
    #[must_use]
    pub fn with_bounds(mut self, on: bool) -> Self {
        self.with_bounds = on;
        self
    }

    /// Analyzes one layout.
    pub fn analyze(&self, input: &AnalysisInput<'_>) -> AnalysisReport {
        let mut report = AnalysisReport::new();
        for rule in rules::registry() {
            rule.check(input, &mut report);
        }
        // The predictor analyzes whatever prefix of the procedure ids the
        // layout covers; a partial layout still yields pressure data for
        // the covered subset, flagged with a partial-coverage note.
        let covered = input.program.len().min(input.layout.len());
        if covered > 0 {
            report.set_prediction(predictor::predict(
                input.program,
                input.layout,
                input.cache,
                input.trg_place,
                self.top_k,
            ));
            if covered < input.program.len() {
                report.push(
                    Diagnostic::new(
                        "P001",
                        Severity::Note,
                        format!(
                            "prediction covers only {covered} of {} procedures \
                             (the layout has no address for the rest)",
                            input.program.len()
                        ),
                    )
                    .with_suggestion("pressure data below describes the covered subset only"),
                );
            }
        }
        if self.with_bounds && covered > 0 {
            if let Some(popular) = input.popular {
                report.set_bounds(bounds::miss_bounds(
                    input.program,
                    input.layout,
                    input.cache,
                    popular,
                    input.trg_select,
                ));
            }
        }
        report
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}
