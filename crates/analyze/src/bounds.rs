//! Two-sided static miss bounds and layout screening (ROADMAP item 5).
//!
//! Everything in this module is computed from `Program` + `Layout` +
//! profile summaries alone — no trace replay. The product is a sound
//! interval [`MissBounds`] around the *conflict* misses the simulator
//! would report for the same trace the profile was gathered from, plus a
//! screening pass ([`screen_layouts`]) that uses those intervals (and the
//! Figure-6 conflict metric) to mark candidate layouts the simulator need
//! not run on.
//!
//! # Upper bound: set-occupancy intervals
//!
//! For every memory line `L` we know an upper bound `A(L)` on how many
//! times the trace can touch it: each record of procedure `p` touches only
//! lines inside `p`'s placed extent, so `A(L) = Σ count(p)` over the
//! procedures whose extent covers `L` (reference counts come from the
//! [`PopularSet`], which stores counts for *all* procedures). A warm miss
//! on `L` requires `L` to have been evicted since its previous access,
//! and evicting a line from an `A`-way LRU set consumes at least `A`
//! accesses to *other* memory lines of the same set inside a time window
//! disjoint from every other eviction window of `L`. Hence per line
//!
//! ```text
//! warm(L) ≤ min( A(L) − 1,  Σ_{L' in set, L' ≠ L} A(L') / assoc )
//! ```
//!
//! and conflict misses ≤ warm misses ≤ Σ_L warm(L) = `hi`. The bound is
//! sound for any associativity and any trace consistent with the counts.
//!
//! # Lower bound: alternation-weighted forced misses
//!
//! `TRG_select` counts alternation events: weight `w(p, q)` is the number
//! of times a reference to one of the pair was interleaved between two
//! successive references to the other. Every record of `p` touches `p`'s
//! *first* placed line `w(p)` (its witness line), so on a direct-mapped
//! cache an event forces a miss at the closing reference whenever the two
//! witness lines are distinct memory lines sharing a cache line — unless
//! some other procedure whose extent covers the witness line re-fetched it
//! mid-event. Each such spoiler record can rescue at most one event
//! (event windows are disjoint), so an edge forces at least
//! `w(p,q) − spoil(p) − spoil(q)` misses, with `spoil(p) = A(w(p)) −
//! count(p)`. A greedy maximum-weight matching keeps every procedure in at
//! most one edge so no miss is claimed twice. The result counts toward
//! *conflict* misses only when the whole touchable footprint fits the
//! cache (`capacity_free`): then a same-size fully-associative cache never
//! evicts, the 3C split charges zero capacity misses, and every forced
//! warm miss is a conflict miss. Otherwise `lo = 0`.

use std::collections::BTreeMap;

use tempo_cache::CacheConfig;
use tempo_program::{Layout, ProcId, Program};
use tempo_trg::{PopularSet, WeightedGraph};

use crate::predictor;

/// A sound interval around the conflict misses of one layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissBounds {
    /// Conflict misses the layout provably causes (0 unless the cache is
    /// direct-mapped and the footprint is capacity-free).
    pub lo: u64,
    /// Conflict misses the layout provably cannot exceed.
    pub hi: u64,
    /// Matched alternation-forced misses before the capacity gate; equals
    /// `lo` when the gate passes, retained for diagnostics when it fails.
    pub forced: u64,
    /// Whether every touchable memory line fits the cache simultaneously
    /// (a same-size fully-associative cache never evicts).
    pub capacity_free: bool,
    /// Distinct memory lines the trace can touch under this layout.
    pub touched_lines: u64,
    /// Cache sets with more than one resident memory line.
    pub contested_sets: u32,
}

impl MissBounds {
    /// Interval width `hi − lo`.
    pub fn width(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }

    /// Whether a simulated conflict-miss count falls inside the interval.
    pub fn contains(&self, conflict: u64) -> bool {
        self.lo <= conflict && conflict <= self.hi
    }
}

impl std::fmt::Display for MissBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Per-memory-line access upper bounds for every procedure the layout
/// covers: `line → Σ count(p)` over procedures whose placed extent spans
/// the line. `BTreeMap` keeps iteration deterministic.
fn line_access_bounds(
    program: &Program,
    layout: &Layout,
    cache: CacheConfig,
    popular: &PopularSet,
) -> BTreeMap<u64, u64> {
    let mut acc: BTreeMap<u64, u64> = BTreeMap::new();
    for id in program.ids() {
        if id.as_usize() >= layout.len() {
            continue;
        }
        let count = popular.count_of(id);
        if count == 0 {
            continue;
        }
        let addr = layout.addr(id);
        let size = u64::from(program.size_of(id));
        if size == 0 {
            continue;
        }
        let first = cache.line_of_addr(addr);
        let last = cache.line_of_addr(addr + size - 1);
        for line in first..=last {
            *acc.entry(line).or_insert(0) += count;
        }
    }
    acc
}

/// Computes the sound conflict-miss interval for one layout.
///
/// `popular` supplies per-procedure reference counts (it stores counts
/// for every procedure, popular or not); `trg_select` supplies the
/// procedure-grain alternation weights the lower bound is built from
/// (pass `None` to get `lo = 0`). Procedures the layout does not cover
/// are ignored, so the bound degrades gracefully on partial layouts.
pub fn miss_bounds(
    program: &Program,
    layout: &Layout,
    cache: CacheConfig,
    popular: &PopularSet,
    trg_select: Option<&WeightedGraph>,
) -> MissBounds {
    let acc = line_access_bounds(program, layout, cache, popular);
    let touched_lines = acc.len() as u64;
    let capacity_free = touched_lines <= u64::from(cache.lines());
    let assoc = u64::from(cache.associativity());

    // Group resident memory lines by cache set and apply the per-line
    // occupancy interval bound.
    let mut sets: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for (&line, &a) in &acc {
        sets.entry(cache.set_of_line(line)).or_default().push(a);
    }
    let mut hi = 0u64;
    let mut contested_sets = 0u32;
    for lines in sets.values() {
        if lines.len() < 2 {
            continue;
        }
        contested_sets += 1;
        let total: u64 = lines.iter().sum();
        for &a in lines {
            hi += a.saturating_sub(1).min((total - a) / assoc);
        }
    }

    let forced = match trg_select {
        Some(trg) if cache.is_direct_mapped() => {
            forced_misses(program, layout, cache, popular, trg, &acc)
        }
        _ => 0,
    };
    // For honest inputs each side is independently sound, so lo ≤ hi
    // holds without clamping; a computed lo above hi means the input
    // counts were inconsistent with the graphs, and the soundness
    // harness will flag the interval rather than have it papered over.
    let lo = if capacity_free { forced } else { 0 };
    MissBounds {
        lo,
        hi,
        forced,
        capacity_free,
        touched_lines,
        contested_sets,
    }
}

/// Alternation-forced misses: greedy maximum-weight matching over
/// qualified `TRG_select` edges with per-endpoint spoilage subtracted.
/// Only meaningful on direct-mapped caches (the caller gates on that).
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // event counts are small integers
fn forced_misses(
    program: &Program,
    layout: &Layout,
    cache: CacheConfig,
    popular: &PopularSet,
    trg: &WeightedGraph,
    acc: &BTreeMap<u64, u64>,
) -> u64 {
    // Witness line of a covered procedure: the memory line of its first
    // byte, which every record of the procedure touches.
    let witness = |id: ProcId| -> Option<u64> {
        if id.as_usize() >= layout.len() || program.size_of(id) == 0 {
            return None;
        }
        Some(cache.line_of_addr(layout.addr(id)))
    };
    // Spoilage: references by other procedures whose extent covers the
    // witness line, each able to rescue at most one alternation event.
    let spoil = |id: ProcId, w: u64| -> u64 {
        acc.get(&w)
            .copied()
            .unwrap_or(0)
            .saturating_sub(popular.count_of(id))
    };

    let nprocs = program.len() as u32;
    let mut candidates: Vec<(u64, u32, u32)> = Vec::new();
    for e in trg.edges() {
        if e.a >= nprocs || e.b >= nprocs || e.w < 1.0 {
            continue;
        }
        let (pa, pb) = (ProcId::new(e.a), ProcId::new(e.b));
        let (Some(wa), Some(wb)) = (witness(pa), witness(pb)) else {
            continue;
        };
        // Distinct memory lines on the same cache set: a reference to one
        // witness evicts the other.
        if wa == wb || cache.set_of_line(wa) != cache.set_of_line(wb) {
            continue;
        }
        let events = e.w.floor() as u64;
        let value = events.saturating_sub(spoil(pa, wa) + spoil(pb, wb));
        if value > 0 {
            candidates.push((value, e.a, e.b));
        }
    }
    // Heaviest edges first; ties by endpoint ids for determinism.
    candidates.sort_by_key(|&(value, a, b)| (std::cmp::Reverse(value), a, b));
    let mut used = vec![false; nprocs as usize];
    let mut forced = 0u64;
    for (value, a, b) in candidates {
        if used[a as usize] || used[b as usize] {
            continue;
        }
        used[a as usize] = true;
        used[b as usize] = true;
        forced += value;
    }
    forced
}

// ---------------------------------------------------------------------
// Screening
// ---------------------------------------------------------------------

/// Model-dominance margin for screening: a candidate is skipped when its
/// Figure-6 predicted conflict cost exceeds the best candidate's by this
/// factor. Figure 6 shows the metric tracks simulated misses linearly
/// (within a small constant factor), so a 16× excess is empirically far
/// outside any observed prediction error; the margin is validated by the
/// CI prefilter smoke, which asserts screening never changes a winner.
pub const MODEL_DOMINANCE_MARGIN: f64 = 16.0;

/// One candidate layout's screening verdict.
#[derive(Debug, Clone)]
pub struct ScreenedLayout {
    /// Index into the candidate slice passed to [`screen_layouts`].
    pub index: usize,
    /// Sound conflict-miss interval for the candidate.
    pub bounds: MissBounds,
    /// Figure-6 TRG conflict metric (the model used for ranking).
    pub predicted_cost: f64,
    /// Whether the simulator should skip this candidate.
    pub skip: bool,
    /// `true` when the skip is interval-provable (`lo` above the best
    /// candidate's `hi`), `false` when it rests on the model margin.
    pub provable: bool,
}

/// The screening verdict for a candidate slate, in input order.
#[derive(Debug, Clone)]
pub struct ScreenReport {
    /// Per-candidate verdicts, indexed like the input slice.
    pub layouts: Vec<ScreenedLayout>,
}

impl ScreenReport {
    /// Number of candidates marked skip.
    pub fn screened(&self) -> usize {
        self.layouts.iter().filter(|s| s.skip).count()
    }

    /// Number of candidates the simulator still has to run.
    pub fn survivors(&self) -> usize {
        self.layouts.len() - self.screened()
    }

    /// Fraction of candidates screened out, in `[0, 1]`.
    #[allow(clippy::cast_precision_loss)] // candidate slates are tiny
    pub fn skip_fraction(&self) -> f64 {
        if self.layouts.is_empty() {
            return 0.0;
        }
        self.screened() as f64 / self.layouts.len() as f64
    }

    /// Candidate indices ranked by interval upper bound, then predicted
    /// cost, then input order — the order a budgeted sweep should
    /// simulate survivors in.
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.layouts.len()).collect();
        order.sort_by(|&i, &j| {
            let (a, b) = (&self.layouts[i], &self.layouts[j]);
            a.bounds
                .hi
                .cmp(&b.bounds.hi)
                .then(a.predicted_cost.total_cmp(&b.predicted_cost))
                .then(i.cmp(&j))
        });
        order
    }
}

/// Ranks candidate layouts by their static miss bounds and marks which
/// ones the simulator can skip.
///
/// Two tiers of screening, weakest sufficient reason recorded per
/// candidate:
///
/// 1. **Interval-provable**: the candidate's lower bound exceeds some
///    other candidate's upper bound, so it cannot win regardless of what
///    the simulator would say.
/// 2. **Model dominance**: the candidate's Figure-6 conflict metric
///    exceeds the slate's minimum by [`MODEL_DOMINANCE_MARGIN`]. This is
///    not interval-proof — it rests on the empirically-validated
///    linearity of the metric (DESIGN.md §12) — and is only applied when
///    the slate's best prediction is non-zero.
///
/// The candidate with the smallest upper bound and the candidate with the
/// smallest predicted cost are never skipped, so at least one survivor
/// always remains. Increments the `analyze.screened` counter per skipped
/// candidate and `analyze.bound_width` by each interval's width.
pub fn screen_layouts(
    program: &Program,
    cache: CacheConfig,
    popular: &PopularSet,
    trg_select: Option<&WeightedGraph>,
    trg_place: Option<&WeightedGraph>,
    layouts: &[&Layout],
) -> ScreenReport {
    let width_counter = tempo_obs::counter("analyze.bound_width");
    let screened_counter = tempo_obs::counter("analyze.screened");

    let mut verdicts: Vec<ScreenedLayout> = layouts
        .iter()
        .enumerate()
        .map(|(index, layout)| {
            let bounds = miss_bounds(program, layout, cache, popular, trg_select);
            width_counter.add(bounds.width());
            let predicted_cost =
                predictor::predict(program, layout, cache, trg_place, 0).predicted_cost;
            ScreenedLayout {
                index,
                bounds,
                predicted_cost,
                skip: false,
                provable: false,
            }
        })
        .collect();

    let min_hi = verdicts.iter().map(|s| s.bounds.hi).min().unwrap_or(0);
    let min_pred = verdicts
        .iter()
        .map(|s| s.predicted_cost)
        .fold(f64::INFINITY, f64::min);
    for s in &mut verdicts {
        if s.bounds.lo > min_hi {
            s.skip = true;
            s.provable = true;
        } else if min_pred > 0.0
            && min_pred.is_finite()
            && s.predicted_cost > MODEL_DOMINANCE_MARGIN * min_pred
            && s.bounds.hi > min_hi
        {
            // The `hi > min_hi` guard keeps the interval estimator's top
            // pick alive even when the Figure-6 model disagrees with it:
            // when the two estimators contradict each other, simulate.
            s.skip = true;
        }
        if s.skip {
            screened_counter.incr();
        }
    }
    ScreenReport { layouts: verdicts }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tempo_cache::classify;
    use tempo_trace::{Trace, TraceRecord};
    use tempo_trg::{PopularitySelector, Profiler};

    /// Two hot procedures plus one cold one, each smaller than a line.
    fn program() -> Program {
        Program::builder()
            .procedure("a", 64)
            .procedure("b", 64)
            .procedure("c", 64)
            .build()
            .unwrap()
    }

    /// Alternating a/b trace: every b reference evicts a's line and vice
    /// versa when the two share a cache set.
    fn ping_pong(program: &Program, n: usize) -> Trace {
        let mut refs = Vec::new();
        for _ in 0..n {
            refs.extend([ProcId::new(0), ProcId::new(1)]);
        }
        Trace::from_full_records(program, refs)
    }

    fn small_cache() -> CacheConfig {
        // 1 KB direct-mapped, 32-byte lines: 32 lines.
        CacheConfig::new(1024, 32, 1).unwrap()
    }

    fn profile(program: &Program, trace: &Trace, cache: CacheConfig) -> tempo_trg::ProfileData {
        Profiler::new(program, cache)
            .popularity(PopularitySelector::all())
            .profile(trace)
    }

    #[test]
    fn conflicting_layout_bounds_contain_simulated_conflicts() {
        let program = program();
        let cache = small_cache();
        let trace = ping_pong(&program, 50);
        let profile = profile(&program, &trace, cache);
        // a and b on the same cache set, distinct memory lines.
        let layout = Layout::from_addresses(vec![0, 1024, 2048]);
        let b = miss_bounds(
            &program,
            &layout,
            cache,
            &profile.popular,
            Some(&profile.trg_select),
        );
        let sim = classify(&program, &layout, &trace, cache);
        assert!(
            b.contains(sim.conflict),
            "conflict {} outside {}",
            sim.conflict,
            b
        );
        assert!(b.lo > 0, "alternation must force misses: {b}");
        assert!(b.capacity_free);
    }

    #[test]
    fn separated_layout_has_zero_interval() {
        let program = program();
        let cache = small_cache();
        let trace = ping_pong(&program, 50);
        let profile = profile(&program, &trace, cache);
        // Everyone on a distinct set: no set is contested.
        let layout = Layout::from_addresses(vec![0, 64, 128]);
        let b = miss_bounds(
            &program,
            &layout,
            cache,
            &profile.popular,
            Some(&profile.trg_select),
        );
        assert_eq!((b.lo, b.hi), (0, 0), "{b}");
        assert_eq!(b.contested_sets, 0);
        let sim = classify(&program, &layout, &trace, cache);
        assert_eq!(sim.conflict, 0);
    }

    #[test]
    fn spoilage_discounts_the_lower_bound() {
        let program = Program::builder()
            .procedure("a", 64)
            .procedure("b", 64)
            .procedure("spoiler", 64)
            .build()
            .unwrap();
        let cache = small_cache();
        let mut refs = Vec::new();
        for _ in 0..50 {
            // The spoiler re-fetches a's line inside every a..a window.
            refs.extend([ProcId::new(0), ProcId::new(1), ProcId::new(2)]);
        }
        let trace = Trace::from_full_records(&program, refs);
        let profile = profile(&program, &trace, cache);
        // The spoiler shares a's memory line (same 32-byte window is
        // impossible for 64-byte procs, so co-locate its extent): place
        // spoiler overlapping a's first line via an adjacent address in
        // the same line is not expressible with 64-byte procedures, so
        // instead verify the conservative fallback: a spoiler on the same
        // *set* but a different line still leaves the bound sound.
        let layout = Layout::from_addresses(vec![0, 1024, 2048]);
        let b = miss_bounds(
            &program,
            &layout,
            cache,
            &profile.popular,
            Some(&profile.trg_select),
        );
        let sim = classify(&program, &layout, &trace, cache);
        assert!(
            b.contains(sim.conflict),
            "conflict {} outside {}",
            sim.conflict,
            b
        );
    }

    #[test]
    fn capacity_pressure_zeroes_the_lower_bound() {
        // Footprint far beyond the cache: the FA twin evicts, so forced
        // misses may be capacity misses and lo must collapse to 0.
        let mut builder = Program::builder();
        for i in 0..128 {
            builder.procedure(format!("p{i}"), 64);
        }
        let program = builder.build().unwrap();
        let cache = small_cache(); // 32 lines << 128 procedures * 2 lines
        let refs: Vec<ProcId> = (0..2000).map(|i| ProcId::new(i % 128)).collect();
        let trace = Trace::from_full_records(&program, refs);
        let profile = profile(&program, &trace, cache);
        let layout = Layout::source_order(&program);
        let b = miss_bounds(
            &program,
            &layout,
            cache,
            &profile.popular,
            Some(&profile.trg_select),
        );
        assert!(!b.capacity_free);
        assert_eq!(b.lo, 0);
        let sim = classify(&program, &layout, &trace, cache);
        assert!(b.contains(sim.conflict), "{} vs {b}", sim.conflict);
    }

    #[test]
    fn partial_layouts_degrade_gracefully() {
        let program = program();
        let cache = small_cache();
        let trace = ping_pong(&program, 10);
        let profile = profile(&program, &trace, cache);
        let layout = Layout::from_addresses(vec![0, 1024]); // c uncovered
        let b = miss_bounds(
            &program,
            &layout,
            cache,
            &profile.popular,
            Some(&profile.trg_select),
        );
        assert!(b.hi > 0, "covered pair still bounds conflicts: {b}");
    }

    #[test]
    fn set_associative_upper_bound_still_holds() {
        let program = program();
        let cache = CacheConfig::new(1024, 32, 2).unwrap();
        let trace = ping_pong(&program, 50);
        let profile = profile(&program, &trace, cache);
        let layout = Layout::from_addresses(vec![0, 512, 4096]);
        let b = miss_bounds(
            &program,
            &layout,
            cache,
            &profile.popular,
            Some(&profile.trg_select),
        );
        assert_eq!(b.lo, 0, "lower bound is direct-mapped only");
        let sim = classify(&program, &layout, &trace, cache);
        assert!(b.contains(sim.conflict), "{} vs {b}", sim.conflict);
    }

    #[test]
    fn screening_skips_a_hopeless_candidate_and_keeps_the_best() {
        let program = program();
        let cache = small_cache();
        let trace = ping_pong(&program, 200);
        let profile = profile(&program, &trace, cache);
        let good = Layout::from_addresses(vec![0, 64, 128]);
        let bad = Layout::from_addresses(vec![0, 1024, 2048]);
        let report = screen_layouts(
            &program,
            cache,
            &profile.popular,
            Some(&profile.trg_select),
            Some(&profile.trg_place),
            &[&bad, &good],
        );
        assert_eq!(report.layouts.len(), 2);
        assert!(report.layouts[0].skip, "hopeless candidate screened");
        assert!(
            report.layouts[0].provable,
            "lo(bad) > hi(good) = 0 is interval-provable"
        );
        assert!(!report.layouts[1].skip, "best candidate survives");
        assert_eq!(report.screened(), 1);
        assert_eq!(report.survivors(), 1);
        assert_eq!(report.ranked()[0], 1);
    }

    #[test]
    fn screening_never_skips_everything() {
        let program = program();
        let cache = small_cache();
        let trace = ping_pong(&program, 50);
        let profile = profile(&program, &trace, cache);
        let layout = Layout::from_addresses(vec![0, 1024, 2048]);
        let report = screen_layouts(
            &program,
            cache,
            &profile.popular,
            Some(&profile.trg_select),
            Some(&profile.trg_place),
            &[&layout, &layout, &layout],
        );
        assert!(report.survivors() >= 1);
    }

    #[test]
    fn zero_extent_records_do_not_break_soundness() {
        let program = program();
        let cache = small_cache();
        let mut trace = ping_pong(&program, 20);
        trace.push(TraceRecord::new(ProcId::new(2), 0));
        let profile = profile(&program, &trace, cache);
        let layout = Layout::from_addresses(vec![0, 1024, 2048]);
        let b = miss_bounds(
            &program,
            &layout,
            cache,
            &profile.popular,
            Some(&profile.trg_select),
        );
        let sim = classify(&program, &layout, &trace, cache);
        assert!(b.contains(sim.conflict), "{} vs {b}", sim.conflict);
    }
}
