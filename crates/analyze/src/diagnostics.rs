//! The diagnostic data model, report aggregation, and renderers.

use std::fmt;

use tempo_program::{ProcId, Program};

use crate::bounds::MissBounds;
use crate::predictor::ConflictPrediction;

/// How serious a diagnostic is.
///
/// Severities order naturally: `Note < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never affects the exit code.
    Note,
    /// Suspicious but not structurally invalid; fails the run only under
    /// `deny_warnings`.
    Warning,
    /// A structural invariant violation; always fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding produced by a lint rule or the conflict predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule code (`L001`..`L007`, `P001`..), documented in DESIGN.md.
    pub code: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
    /// The procedures involved, if any.
    pub procs: Vec<ProcId>,
    /// An actionable remediation hint, if one exists.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no procedures or suggestion attached.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            procs: Vec::new(),
            suggestion: None,
        }
    }

    /// Attaches the procedures the finding is about.
    #[must_use]
    pub fn with_procs(mut self, procs: Vec<ProcId>) -> Self {
        self.procs = procs;
        self
    }

    /// Attaches a remediation hint.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

/// The aggregated result of one analysis run: every diagnostic plus the
/// optional conflict prediction and miss-bound interval.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
    prediction: Option<ConflictPrediction>,
    bounds: Option<MissBounds>,
}

impl AnalysisReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        AnalysisReport::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Attaches the predictor output.
    pub fn set_prediction(&mut self, p: ConflictPrediction) {
        self.prediction = Some(p);
    }

    /// Attaches the sound conflict-miss interval.
    pub fn set_bounds(&mut self, b: MissBounds) {
        self.bounds = Some(b);
    }

    /// The miss-bound interval, when the analysis computed one.
    pub fn bounds(&self) -> Option<&MissBounds> {
        self.bounds.as_ref()
    }

    /// All diagnostics, in rule-registry order, errors not sorted first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The conflict prediction, when the analysis computed one.
    pub fn prediction(&self) -> Option<&ConflictPrediction> {
        self.prediction.as_ref()
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-severity diagnostics.
    pub fn note_count(&self) -> usize {
        self.count(Severity::Note)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Returns `true` if the report passes: no errors, and no warnings
    /// when `deny_warnings` is set.
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.error_count() == 0 && !(deny_warnings && self.warning_count() > 0)
    }

    /// The process exit code under the CI contract: `0` clean, `1` failed.
    ///
    /// (Exit code `2` — usage error — is owned by the CLI layer; the
    /// analysis itself can only pass or fail.)
    pub fn exit_code(&self, deny_warnings: bool) -> u8 {
        u8::from(!self.is_clean(deny_warnings))
    }

    /// Renders the report as human-readable text, resolving procedure
    /// names through `program`.
    pub fn render_text(&self, program: &Program) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
            if !d.procs.is_empty() {
                out.push_str(&format!(
                    "  procedures: {}\n",
                    proc_names(program, &d.procs).join(", ")
                ));
            }
            if let Some(s) = &d.suggestion {
                out.push_str(&format!("  suggestion: {s}\n"));
            }
        }
        if let Some(p) = &self.prediction {
            out.push_str(&p.render_text(program));
        }
        if let Some(b) = &self.bounds {
            out.push_str(&format!(
                "miss bounds: conflict misses in {} (width {}{}{})\n",
                b,
                b.width(),
                if b.capacity_free {
                    ", capacity-free"
                } else {
                    ""
                },
                if b.lo == 0 && b.forced > 0 {
                    ", lower bound suppressed by capacity pressure"
                } else {
                    ""
                },
            ));
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s)\n",
            self.error_count(),
            self.warning_count(),
            self.note_count()
        ));
        out
    }

    /// Renders the report as a single JSON object (machine-readable CI
    /// output; schema documented in DESIGN.md).
    pub fn render_json(&self, program: &Program) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"notes\":{},",
            self.error_count(),
            self.warning_count(),
            self.note_count()
        ));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"message\":{},\"procedures\":[{}],\"suggestion\":{}}}",
                json_string(d.code),
                json_string(&d.severity.to_string()),
                json_string(&d.message),
                proc_names(program, &d.procs)
                    .iter()
                    .map(|n| json_string(n))
                    .collect::<Vec<_>>()
                    .join(","),
                match &d.suggestion {
                    Some(s) => json_string(s),
                    None => "null".to_string(),
                }
            ));
        }
        out.push(']');
        if let Some(p) = &self.prediction {
            out.push(',');
            out.push_str(&p.render_json(program));
        }
        if let Some(b) = &self.bounds {
            out.push_str(&format!(
                ",\"bounds\":{{\"lo\":{},\"hi\":{},\"forced\":{},\"capacity_free\":{},\
                 \"touched_lines\":{},\"contested_sets\":{}}}",
                b.lo, b.hi, b.forced, b.capacity_free, b.touched_lines, b.contested_sets
            ));
        }
        out.push('}');
        out
    }
}

/// Resolves procedure ids to names, falling back to `#<id>` for ids the
/// program does not cover (possible when linting a corrupt layout).
pub(crate) fn proc_names(program: &Program, procs: &[ProcId]) -> Vec<String> {
    procs
        .iter()
        .map(|&id| {
            if id.as_usize() < program.len() {
                program.proc(id).name().to_string()
            } else {
                format!("#{}", id.index())
            }
        })
        .collect()
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        Program::builder()
            .procedure("alpha", 64)
            .procedure("beta", 64)
            .build()
            .unwrap()
    }

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn counts_and_exit_codes() {
        let mut r = AnalysisReport::new();
        assert!(r.is_clean(true));
        assert_eq!(r.exit_code(false), 0);
        r.push(Diagnostic::new("L006", Severity::Warning, "padding"));
        assert_eq!(r.warning_count(), 1);
        assert!(r.is_clean(false));
        assert!(!r.is_clean(true));
        assert_eq!(r.exit_code(true), 1);
        r.push(Diagnostic::new("L002", Severity::Error, "overlap"));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.exit_code(false), 1);
    }

    #[test]
    fn text_render_names_procedures() {
        let p = program();
        let mut r = AnalysisReport::new();
        r.push(
            Diagnostic::new("L002", Severity::Error, "alpha overlaps beta")
                .with_procs(vec![ProcId::new(0), ProcId::new(1)])
                .with_suggestion("re-run linearization"),
        );
        let text = r.render_text(&p);
        assert!(text.contains("error[L002]"));
        assert!(text.contains("alpha, beta"));
        assert!(text.contains("re-run linearization"));
        assert!(text.contains("1 error(s)"));
    }

    #[test]
    fn json_render_is_well_formed() {
        let p = program();
        let mut r = AnalysisReport::new();
        r.push(
            Diagnostic::new("L004", Severity::Warning, "say \"hi\"\n")
                .with_procs(vec![ProcId::new(0)]),
        );
        let json = r.render_json(&p);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"warnings\":1"));
        assert!(json.contains("\\\"hi\\\"\\n"));
        assert!(json.contains("\"procedures\":[\"alpha\"]"));
        assert!(json.contains("\"suggestion\":null"));
    }

    #[test]
    fn bounds_render_in_text_and_json() {
        let p = program();
        let mut r = AnalysisReport::new();
        r.set_bounds(MissBounds {
            lo: 2,
            hi: 10,
            forced: 2,
            capacity_free: true,
            touched_lines: 4,
            contested_sets: 1,
        });
        let text = r.render_text(&p);
        assert!(text.contains("miss bounds: conflict misses in [2, 10]"));
        assert!(text.contains("capacity-free"));
        let json = r.render_json(&p);
        assert!(json.contains("\"bounds\":{\"lo\":2,\"hi\":10"));
        assert!(json.contains("\"capacity_free\":true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_string("t\tn\n"), "\"t\\tn\\n\"");
    }

    #[test]
    fn out_of_range_proc_ids_render_as_hash_ids() {
        let p = program();
        let names = proc_names(&p, &[ProcId::new(0), ProcId::new(9)]);
        assert_eq!(names, vec!["alpha".to_string(), "#9".to_string()]);
    }
}
