//! `tempo-cli` entry point: parse, dispatch, report.
//!
//! Exit-code contract (kept stable for CI callers):
//! `0` success, `1` pipeline failure or failing diagnostics, `2` usage
//! error.

// A panic would exit 101 and break the contract above.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::error::Error as _;
use std::process::ExitCode;

use tempo_cli::CliError;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match tempo_cli::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tempo-cli: {e}");
            let mut cause = e.source();
            while let Some(c) = cause {
                eprintln!("  caused by: {c}");
                cause = c.source();
            }
            match e {
                CliError::Usage(_) => ExitCode::from(2),
                _ => ExitCode::FAILURE,
            }
        }
    }
}
