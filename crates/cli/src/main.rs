//! `tempo-cli` entry point: parse, dispatch, report.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match tempo_cli::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tempo-cli: {e}");
            ExitCode::FAILURE
        }
    }
}
