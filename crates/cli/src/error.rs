//! The CLI error type: one wrapper over every pipeline failure.

use std::error::Error;
use std::fmt;

/// Anything that can go wrong while executing a CLI command.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line; the message includes usage guidance.
    Usage(String),
    /// Filesystem or stream failure.
    Io(std::io::Error),
    /// A named input file failed to parse; the cause is preserved for
    /// error-chain printing.
    Parse {
        /// What was being read.
        what: &'static str,
        /// The underlying error.
        source: Box<dyn Error + Send + Sync + 'static>,
    },
    /// Inputs are mutually inconsistent (e.g. trace references procedures
    /// the program does not define).
    Inconsistent(String),
    /// `analyze` found failing diagnostics; the report was already
    /// printed, this only carries the counts for the exit status.
    Diagnostics {
        /// Error-severity findings.
        errors: usize,
        /// Warning-severity findings (failing only under `--deny warnings`).
        warnings: usize,
    },
}

impl CliError {
    /// Wraps a parse failure for `what`, preserving `source` for
    /// error-chain printing.
    pub fn parse<E>(what: &'static str, source: E) -> Self
    where
        E: Error + Send + Sync + 'static,
    {
        CliError::Parse {
            what,
            source: Box::new(source),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            // The cause is deliberately not repeated here: the binary
            // prints the `source()` chain as indented `caused by:` lines.
            CliError::Parse { what, .. } => write!(f, "failed to read {what}"),
            CliError::Inconsistent(msg) => write!(f, "inconsistent inputs: {msg}"),
            CliError::Diagnostics { errors, warnings } => write!(
                f,
                "analysis failed: {errors} error(s), {warnings} warning(s)"
            ),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            CliError::Parse { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CliError::Usage("x".into()).to_string().contains("usage"));
        let parse = CliError::parse(
            "layout",
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad"),
        );
        assert!(parse.to_string().contains("layout"));
        assert!(CliError::Inconsistent("y".into()).to_string().contains('y'));
    }

    #[test]
    fn sources_survive_wrapping() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "cut short");
        let parse = CliError::parse("trace", io);
        let chain = parse.source().expect("parse keeps its cause");
        assert!(chain.to_string().contains("cut short"));
        let io2 = std::io::Error::other("disk fell off");
        let wrapped = CliError::from(io2);
        assert!(wrapped.source().is_some());
        assert!(CliError::Usage("x".into()).source().is_none());
    }
}
