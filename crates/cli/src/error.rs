//! The CLI error type: one wrapper over every pipeline failure.

use std::error::Error;
use std::fmt;

/// Anything that can go wrong while executing a CLI command.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line; the message includes usage guidance.
    Usage(String),
    /// Filesystem or stream failure.
    Io(std::io::Error),
    /// A named input file failed to parse, with context.
    Parse {
        /// What was being read.
        what: &'static str,
        /// The underlying message.
        message: String,
    },
    /// Inputs are mutually inconsistent (e.g. trace references procedures
    /// the program does not define).
    Inconsistent(String),
    /// `analyze` found failing diagnostics; the report was already
    /// printed, this only carries the counts for the exit status.
    Diagnostics {
        /// Error-severity findings.
        errors: usize,
        /// Warning-severity findings (failing only under `--deny warnings`).
        warnings: usize,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Parse { what, message } => write!(f, "failed to read {what}: {message}"),
            CliError::Inconsistent(msg) => write!(f, "inconsistent inputs: {msg}"),
            CliError::Diagnostics { errors, warnings } => write!(
                f,
                "analysis failed: {errors} error(s), {warnings} warning(s)"
            ),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CliError::Usage("x".into()).to_string().contains("usage"));
        assert!(CliError::Parse {
            what: "layout",
            message: "bad".into()
        }
        .to_string()
        .contains("layout"));
        assert!(CliError::Inconsistent("y".into()).to_string().contains('y'));
    }
}
